"""Setup shim for environments without the `wheel` package.

The project metadata lives here (rather than only in pyproject.toml) so that
`pip install -e .` can use the legacy editable-install path, which works
offline without PEP-660 wheel building.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Locality-aware mapping of nested parallel patterns on GPUs "
        "(MICRO 2014 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
