"""Global configuration defaults shared across the analysis and simulator.

The values mirror the constants the paper states explicitly:

* ``WARP_SIZE`` — 32 threads on NVIDIA GPUs (Section II).
* ``MAX_BLOCK_SIZE`` — 1024 threads per block (Section IV-B).
* ``MIN_BLOCK_SIZE`` — 64, the global soft constraint floor (Table II).
* ``DEFAULT_SIZE_HINT`` — 1000, assumed when a pattern size is not a
  compile-time constant (Section IV-C).
* ``MIN_DOP`` / ``MAX_DOP`` are device-derived (Section IV-D): for the
  Tesla K20c, ``MIN_DOP = 13 SMs * 2048 threads`` and
  ``MAX_DOP = 100 * MIN_DOP``; they live on the device description and the
  constants here are only used when no device is supplied.
"""

from __future__ import annotations

WARP_SIZE = 32
MAX_BLOCK_SIZE = 1024
MIN_BLOCK_SIZE = 64
DEFAULT_SIZE_HINT = 1000

# Fallback DOP window (Tesla K20c values; see repro.gpusim.device).
DEFAULT_MIN_DOP = 13 * 2048
DEFAULT_MAX_DOP = 100 * DEFAULT_MIN_DOP

# Candidate block sizes considered by the mapping search (Algorithm 1).
BLOCK_SIZE_CANDIDATES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

# Deterministic seed for the paper's "pick randomly" tie-break, so that
# experiment tables are reproducible run to run.
TIE_BREAK_SEED = 0x5EED

# Mapping-search engine selection (``search_mapping``).  "auto" picks the
# cheapest engine for the enumerated candidate count: below
# SEARCH_SMALL_SPACE_CANDIDATES the plain exhaustive loop wins (the staged
# machinery's fixed costs exceed the walk at depth 1); above it the
# NumPy batch engine evaluates the whole candidate matrix at once,
# falling back to the branch-and-bound walk for constraint sets without
# a batch predicate.  Override per process with the environment variable
# below or per call with ``search_mapping(engine=...)``.
SEARCH_ENGINE_ENV = "REPRO_SEARCH_ENGINE"
SEARCH_ENGINES = ("auto", "exhaustive", "pruned", "vectorized")
SEARCH_SMALL_SPACE_CANDIDATES = 64

# Reserved keys in Program.size_hints:
#   DEFAULT_HINT_KEY overrides the 1000-default for dynamically sized
#   inner domains (e.g. the average degree of a graph workload);
#   SKEW_HINT_KEY is the warp-max/mean ratio of dynamic inner domains,
#   modeling the load imbalance that per-thread sequential execution of a
#   skewed loop suffers (the motivation for warp-based mappings).
DEFAULT_HINT_KEY = "__default__"
SKEW_HINT_KEY = "__skew__"

# Compile-service defaults (``repro serve`` / ``repro submit``).  The
# admission queue is bounded so an overloaded server sheds load with a
# typed error (HTTP 503 / exit 75) instead of queueing unboundedly; the
# per-request budget bounds mapping-search work so one pathological
# program degrades itself to the conservative fallback instead of
# stalling every worker behind it.
DEFAULT_SERVICE_HOST = "127.0.0.1"
DEFAULT_SERVICE_PORT = 8077
DEFAULT_SERVICE_WORKERS = 4
DEFAULT_SERVICE_QUEUE_LIMIT = 64
DEFAULT_SERVICE_CACHE_DIR = ".repro-cache"
DEFAULT_REQUEST_DEADLINE_S = 30.0

# Compile-fleet defaults (``repro fleet``).  The router shards requests
# across backends by consistent hashing over the compile digest, keeps a
# hot in-memory LRU of artifact payloads over the shared disk store, and
# retries a request on the next ring node (jittered backoff) when a
# backend is dead or shedding load.
DEFAULT_FLEET_BACKENDS = 3
DEFAULT_FLEET_LRU_CAPACITY = 256
DEFAULT_FLEET_RETRIES = 3
DEFAULT_FLEET_DISPATCHERS = 8
DEFAULT_FLEET_QUEUE_LIMIT = 4096

# Fleet self-healing defaults.  A background prober health-checks every
# backend each interval and feeds per-backend circuit breakers: a breaker
# opens after BREAKER_FAILURE_THRESHOLD consecutive failures, waits
# BREAKER_RESET_TIMEOUT_S, then admits one half-open probe whose success
# readmits the backend (two-way membership, unlike the old one-way
# mark_dead).  Hedging re-issues a still-pending warm-cache request to
# the next ring node after the hedge delay; HEDGE_MIN_SAMPLES observed
# latencies are required before a p99-derived delay is trusted.
DEFAULT_FLEET_PROBE_INTERVAL_S = 1.0
DEFAULT_FLEET_PROBE_TIMEOUT_S = 5.0
DEFAULT_BREAKER_FAILURE_THRESHOLD = 3
DEFAULT_BREAKER_RESET_TIMEOUT_S = 2.0
DEFAULT_HEDGE_MIN_DELAY_S = 0.01
DEFAULT_HEDGE_MIN_SAMPLES = 50
DEFAULT_HEDGE_TRACKING_CAPACITY = 4096
#: Grace added on top of a request's deadline when bounding the blocking
#: wait for its ticket: the worker-side shed normally answers first, the
#: timed wait is only the backstop against a wedged backend.
DEADLINE_WAIT_GRACE_S = 2.0

# Fleet observability defaults.  The structured event log is a bounded
# ring (control-plane transitions only — breaker flips, reroutes, hedges,
# sheds, quarantines — so it is always on); ``repro fleet top`` polls
# /v1/stats + /v1/metrics at the refresh interval, and ``repro fleet
# events --follow`` polls /v1/events at the poll interval.
DEFAULT_EVENT_LOG_CAPACITY = 2048
DEFAULT_FLEET_TOP_INTERVAL_S = 2.0
DEFAULT_EVENT_FOLLOW_INTERVAL_S = 1.0

# L2-size proxy used to discount coalescing constraints for arrays small
# enough to live in cache after first touch (K20c: 1.25 MB).  The analysis
# layer must not depend on a concrete device, so this is a standalone
# constant; the simulator uses the real per-device value.
ANALYSIS_CACHE_BYTES = 1_310_720

# Intrinsic soft-constraint weights (Section IV-C).  Memory coalescing gets
# the highest intrinsic weight because pattern workloads are typically
# bandwidth-bound; the remaining weights express the relative importance the
# paper describes qualitatively.
INTRINSIC_WEIGHT_COALESCE = 10.0
INTRINSIC_WEIGHT_BLOCK_FLOOR = 2.0
INTRINSIC_WEIGHT_NO_DIVERGENCE = 1.0
INTRINSIC_WEIGHT_PARALLELISM = 1.0
