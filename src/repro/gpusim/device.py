"""GPU device descriptions for the analytic performance model.

The paper evaluates on an NVIDIA Tesla K20c (13 SMs, 2048 threads/SM) with
CUDA 5.0; the C2050 (14 SMs) appears in its background section.  Since this
reproduction has no physical GPU, these records parameterize the simulator
in :mod:`repro.gpusim.cost`.  Microarchitectural constants (latencies,
overheads) are first-order figures from public Kepler/Fermi
microbenchmarking literature; the evaluation depends on their *ratios*, not
their absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.dop import DopWindow


@dataclass(frozen=True)
class GpuDevice:
    """An analytic GPU model."""

    name: str
    num_sms: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    warp_size: int
    max_threads_per_block: int
    shared_mem_per_sm_bytes: int
    l2_cache_bytes: int
    clock_ghz: float
    cores_per_sm: int
    #: Achievable global-memory bandwidth (GB/s); below the marketing peak.
    mem_bandwidth_gbs: float
    #: DRAM transaction granularity (coalescing segment size).
    mem_transaction_bytes: int
    #: Average global-memory load latency, in cycles.
    mem_latency_cycles: float
    #: Memory-level parallelism: outstanding loads sustainable per warp.
    mem_parallelism: float
    #: Warps per device needed to saturate DRAM bandwidth.
    warps_for_peak_bw: int
    #: Warps per device needed to saturate arithmetic throughput with
    #: dependent instruction chains (ILP ~ 1): roughly
    #: cores_per_sm / warp_size * pipeline_latency warps per SM.
    warps_for_peak_compute: int
    #: Fixed cost of launching one kernel (microseconds).
    kernel_launch_us: float
    #: Scheduling cost per thread block beyond the resident set (ns).
    block_sched_ns: float
    #: Serialized cost of one device-side malloc (us).  CUDA's device heap
    #: allocator takes a global lock, so concurrent allocations from
    #: thousands of threads effectively serialize — the overhead the
    #: preallocation optimization removes (Section V-A).
    malloc_us: float
    #: Cost of one shared-memory access (cycles) and one atomic (ns).
    shared_mem_cycles: float
    atomic_ns: float
    #: Host-device transfer: PCIe bandwidth (GB/s) and per-call latency.
    pcie_bandwidth_gbs: float
    pcie_latency_us: float

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    @property
    def max_resident_warps(self) -> int:
        return self.num_sms * self.max_warps_per_sm

    @property
    def max_resident_blocks(self) -> int:
        return self.num_sms * self.max_blocks_per_sm

    @property
    def peak_flops(self) -> float:
        """Peak single-issue arithmetic throughput (ops/second)."""
        return self.num_sms * self.cores_per_sm * self.clock_ghz * 1e9

    @property
    def min_dop(self) -> int:
        """Section IV-D: threads needed to fill every SM."""
        return self.num_sms * self.max_threads_per_sm

    @property
    def max_dop(self) -> int:
        """Section IV-D: 100x the minimum bounds the block count."""
        return 100 * self.min_dop

    def dop_window(self) -> DopWindow:
        return DopWindow(min_dop=self.min_dop, max_dop=self.max_dop)


#: The paper's evaluation GPU.
TESLA_K20C = GpuDevice(
    name="Tesla K20c",
    num_sms=13,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    warp_size=32,
    max_threads_per_block=1024,
    shared_mem_per_sm_bytes=48 * 1024,
    l2_cache_bytes=1280 * 1024,
    clock_ghz=0.706,
    cores_per_sm=192,
    mem_bandwidth_gbs=150.0,
    mem_transaction_bytes=128,
    mem_latency_cycles=440.0,
    mem_parallelism=4.0,
    warps_for_peak_bw=13 * 28,
    warps_for_peak_compute=13 * 30,
    kernel_launch_us=6.0,
    block_sched_ns=250.0,
    malloc_us=25.0,
    shared_mem_cycles=28.0,
    atomic_ns=80.0,
    pcie_bandwidth_gbs=6.0,
    pcie_latency_us=10.0,
)

#: The background section's Fermi-generation device.
TESLA_C2050 = GpuDevice(
    name="Tesla C2050",
    num_sms=14,
    max_threads_per_sm=1536,
    max_blocks_per_sm=8,
    warp_size=32,
    max_threads_per_block=1024,
    shared_mem_per_sm_bytes=48 * 1024,
    l2_cache_bytes=768 * 1024,
    clock_ghz=1.15,
    cores_per_sm=32,
    mem_bandwidth_gbs=105.0,
    mem_transaction_bytes=128,
    mem_latency_cycles=520.0,
    mem_parallelism=4.0,
    warps_for_peak_bw=14 * 24,
    warps_for_peak_compute=14 * 10,
    kernel_launch_us=7.0,
    block_sched_ns=300.0,
    malloc_us=30.0,
    shared_mem_cycles=32.0,
    atomic_ns=120.0,
    pcie_bandwidth_gbs=5.5,
    pcie_latency_us=10.0,
)

DEVICES = {d.name: d for d in (TESLA_K20C, TESLA_C2050)}


def default_device() -> GpuDevice:
    """The device all experiments use unless overridden (paper's K20c)."""
    return TESLA_K20C
