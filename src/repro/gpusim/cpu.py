"""Analytic multi-core CPU reference model.

Figure 14 compares GPU mappings against hand-optimized multi-core CPU
implementations (two quad-core Xeon 2.67 GHz, the paper's host machine).
With no testbed available, this roofline-style model stands in: time is the
maximum of the compute term (cores x SIMD x clock, derated by an efficiency
factor for how well-tuned the reference code is) and the memory term
(footprint over socket bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.analyzer import KernelAnalysis
from ..analysis.shapes import SizeEnv
from .cost import count_ops


@dataclass(frozen=True)
class CpuDevice:
    """An analytic multi-core CPU model."""

    name: str
    cores: int
    clock_ghz: float
    #: Double-precision lanes per core (SSE3: 2).
    simd_width: int
    mem_bandwidth_gbs: float
    #: Fraction of peak a tuned implementation achieves.
    efficiency: float = 0.6

    @property
    def peak_flops(self) -> float:
        return self.cores * self.simd_width * self.clock_ghz * 1e9


#: The paper's host: Dell Precision T7500n, two quad-core Xeon 2.67 GHz.
XEON_X5550_DUAL = CpuDevice(
    name="2x quad-core Xeon 2.67GHz",
    cores=8,
    clock_ghz=2.67,
    simd_width=2,
    mem_bandwidth_gbs=20.0,
    efficiency=0.6,
)


def estimate_cpu_time_us(
    analysis: KernelAnalysis,
    env: SizeEnv = None,
    cpu: CpuDevice = XEON_X5550_DUAL,
    efficiency: float = None,
) -> float:
    """Roofline estimate for one kernel's work on the CPU."""
    if env is None:
        env = analysis.env
    eff = cpu.efficiency if efficiency is None else efficiency
    ops = count_ops(analysis.root, env)
    bytes_touched = sum(
        site.footprint_bytes(env) for site in analysis.accesses.sites
    )
    compute_s = ops / (cpu.peak_flops * eff)
    memory_s = bytes_touched / (cpu.mem_bandwidth_gbs * 1e9)
    return max(compute_s, memory_s) * 1e6
