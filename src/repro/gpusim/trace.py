"""Thread-level trace validation of the analytic memory model.

The cost model predicts per-warp transaction counts and warp-issue counts
analytically from affine access descriptors.  This module *executes* the
same launch geometry thread by thread for small problem sizes: it assigns
concrete index values to every (block, thread, iteration) combination using
exactly the index computations the code generator emits, evaluates the
access's real index expressions, groups lanes into warps, and counts
128-byte segments with a plain set.

Tests cross-check the brute-force totals against the analytic prediction —
the strongest evidence that a mapping the constraint system calls
"coalesced" genuinely issues fewer transactions.

Only affine accesses to arrays with known shapes are traceable (gathers
would need input data); sizes should stay small (the enumeration is
exhaustive by design).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.access import AccessSite
from ..analysis.analyzer import KernelAnalysis
from ..analysis.mapping import Dim, LevelMapping, Mapping, Seq, Span, SpanAll, Split
from ..analysis.shapes import SizeEnv
from ..errors import SimulationError
from ..interp.env import Env
from ..interp.evaluator import Evaluator
from ..ir.patterns import Program
from .device import GpuDevice


@dataclass(frozen=True)
class TraceStats:
    """Brute-force totals for one access site over a whole kernel run."""

    total_transactions: int
    total_warp_issues: int

    @property
    def transactions_per_issue(self) -> float:
        if self.total_warp_issues == 0:
            return 0.0
        return self.total_transactions / self.total_warp_issues


def _level_index_values(
    lm: LevelMapping, size: int
) -> List[List[Tuple[int, int, int]]]:
    """Per level: a list of blocks, each a list of (thread_coord,
    iteration, index_value) triples.

    The index computations mirror the code generator's templates exactly.
    """
    blocks: List[List[Tuple[int, int, int]]] = []
    if isinstance(lm.span, Seq):
        blocks.append([(0, it, it) for it in range(size)])
        return blocks
    b = lm.block_size
    if isinstance(lm.span, Span):
        n = lm.span.n
        num_blocks = max(1, math.ceil(size / (b * n)))
        for bi in range(num_blocks):
            entries = []
            for s in range(n):
                for t in range(b):
                    idx = bi * b * n + s * b + t
                    if idx < size:
                        entries.append((t, s, idx))
            blocks.append(entries)
        return blocks
    if isinstance(lm.span, SpanAll):
        entries = []
        iters = max(1, math.ceil(size / b))
        for k in range(iters):
            for t in range(b):
                idx = t + k * b
                if idx < size:
                    entries.append((t, k, idx))
        blocks.append(entries)
        return blocks
    if isinstance(lm.span, Split):
        k_split = lm.span.k
        region = math.ceil(size / k_split)
        for bi in range(k_split):
            start, end = bi * region, min(size, (bi + 1) * region)
            entries = []
            iters = max(1, math.ceil(region / b))
            for it in range(iters):
                for t in range(b):
                    idx = start + t + it * b
                    if idx < end:
                        entries.append((t, it, idx))
            blocks.append(entries)
        return blocks
    raise SimulationError(f"unknown span {lm.span}")  # pragma: no cover


def _traceable(site: AccessSite) -> bool:
    if site.index_exprs is None:
        return False
    for form in site.axis_forms:
        if form.has_random or form.opaque_deps:
            return False
    return True


def trace_site(
    site: AccessSite,
    mapping: Mapping,
    sizes: Sequence[int],
    device: GpuDevice,
    env: SizeEnv,
    program: Optional[Program] = None,
    strides: Optional[Sequence[int]] = None,
) -> TraceStats:
    """Exhaustively count warp issues and transactions for one site.

    ``sizes`` are the runtime domain sizes per level (keep them small: the
    enumeration is the full cross product).  The access executes once per
    index combination of levels at or above the site's level; deeper
    levels still contribute *threads* (which redundantly re-issue reads,
    or are masked out for guarded writes — matching the cost model's
    assumptions and the generated code).
    """
    if not _traceable(site):
        raise SimulationError(
            f"site {site.array_key!r} is not traceable (non-affine)"
        )
    if strides is None:
        strides = site.row_major_strides()

    from ..ir.expr import Const

    evaluator = Evaluator(
        program if program is not None else Program("trace", (), Const(0))
    )

    level_count = mapping.num_levels
    per_level = [
        _level_index_values(mapping.level(level), sizes[level])
        for level in range(level_count)
    ]

    # Warp linearization: x fastest.  Precompute each level's dim stride
    # within the block's linear thread id.
    block_shape = mapping.block_shape()
    dims_sorted = sorted(block_shape)
    dim_strides: Dict[Dim, int] = {}
    acc = 1
    for dim in dims_sorted:
        dim_strides[dim] = acc
        acc *= block_shape[dim]

    seg = device.mem_transaction_bytes

    # Enumerate the cross product of per-level (block, entry) choices.
    transactions = 0
    issues = 0
    level_choices = []
    for level in range(level_count):
        choices = []
        for block_id, entries in enumerate(per_level[level]):
            for thread_coord, iteration, index_value in entries:
                choices.append((block_id, thread_coord, iteration, index_value))
        level_choices.append(choices)

    # Group executions into warp instructions: a warp instruction is
    # identified by (block ids, iteration vector of levels <= L, warp id,
    # and index values of levels > L are irrelevant for the access but
    # define which threads participate).  We enumerate all thread/iter
    # combos and bucket addresses.
    L = site.level
    buckets: Dict[Tuple, set] = {}
    for combo in itertools.product(*level_choices):
        block_key = tuple(c[0] for c in combo)
        iter_key = tuple(c[2] for c in combo[: L + 1])
        lin_tid = 0
        for level, (block_id, thread_coord, iteration, index_value) in enumerate(
            combo
        ):
            lm = mapping.level(level)
            if lm.parallel:
                lin_tid += thread_coord * dim_strides[lm.dim]
        warp_id = lin_tid // device.warp_size

        scope = Env()
        for name, value in env.values.items():
            scope.bind(name, value)
        for level, (block_id, thread_coord, iteration, index_value) in enumerate(
            combo
        ):
            scope.bind(site.pattern_stack[level].index.name, index_value)

        offset = 0
        for idx_expr, stride in zip(site.index_exprs, strides):
            offset += int(evaluator.eval_expr(idx_expr, scope)) * stride
        address = offset * site.elem_bytes

        key = (block_key, iter_key, warp_id)
        buckets.setdefault(key, set()).add(address // seg)

    for segments in buckets.values():
        transactions += len(segments)
        issues += 1

    return TraceStats(
        total_transactions=transactions, total_warp_issues=issues
    )


def trace_kernel(
    analysis: KernelAnalysis,
    mapping: Mapping,
    sizes: Sequence[int],
    device: GpuDevice,
    env: Optional[SizeEnv] = None,
    program: Optional[Program] = None,
) -> Dict[int, TraceStats]:
    """Trace every traceable access site of a kernel; keyed by site index."""
    if env is None:
        env = analysis.env
    results: Dict[int, TraceStats] = {}
    for index, site in enumerate(analysis.accesses.sites):
        if _traceable(site):
            results[index] = trace_site(
                site, mapping, sizes, device, env, program
            )
    return results
