"""Warp-level memory-coalescing model.

The memory controller merges the 32 per-lane requests of a warp into
128-byte segment transactions (Section II).  Given a mapping and an access
site's affine descriptor, this module computes exactly how many segments one
warp instruction touches by enumerating the 32 lane coordinates:

* lanes are consecutive linear thread IDs; CUDA linearizes x fastest;
* each parallel nest level contributes ``stride_coefficient * lane_coord``
  along its assigned dimension;
* opaque (non-affine) index components group lanes: lanes that agree on
  every opaque-dependent coordinate share an unknown-but-common base, and
  segments are counted per group;
* random components defeat coalescing entirely (one segment per distinct
  lane address pattern).

This is the same machinery real hardware applies, so a mapping that the
constraint system calls "coalesced" genuinely produces fewer transactions
here — the analysis and the simulator cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.access import AccessSite
from ..analysis.mapping import Dim, Mapping
from .device import GpuDevice


@dataclass(frozen=True)
class WarpAccessProfile:
    """Transactions one warp instruction issues for one access site."""

    transactions: int
    #: Bytes actually requested by the lanes (useful-traffic accounting).
    useful_bytes: int
    #: True when every lane hit the same minimal segment count possible.
    fully_coalesced: bool


def lane_coordinates(
    block_shape: Dict[Dim, int], warp_size: int
) -> List[Dict[Dim, int]]:
    """Per-lane multidimensional coordinates of the first warp of a block.

    CUDA linearizes thread IDs with x fastest, then y, then z; warps take
    consecutive linear IDs (Figure 4b of the paper).
    """
    dims = sorted(block_shape.keys())
    coords: List[Dict[Dim, int]] = []
    for lane in range(warp_size):
        remaining = lane
        coord: Dict[Dim, int] = {}
        for dim in dims:
            extent = max(1, block_shape[dim])
            coord[dim] = remaining % extent
            remaining //= extent
        coords.append(coord)
    return coords


def distinct_warp_combos(
    site: AccessSite, mapping: Mapping, device: GpuDevice
) -> int:
    """Distinct index combinations of the site's levels within one warp.

    Writes are guarded so only one thread per combination executes them
    (Section V-B's "guard" discussion); the number of *distinct*
    combinations a warp covers therefore determines how many warps a
    guarded statement needs.
    """
    block_shape = mapping.block_shape()
    active_lanes = min(device.warp_size, max(1, mapping.threads_per_block()))
    coords = lane_coordinates(block_shape, device.warp_size)[:active_lanes]
    relevant_dims = []
    for level in range(min(site.level + 1, mapping.num_levels)):
        lm = mapping.level(level)
        if lm.parallel:
            relevant_dims.append(lm.dim)
    combos = {
        tuple(coord.get(dim, 0) for dim in relevant_dims) for coord in coords
    }
    return max(1, len(combos))


def warp_transactions(
    site: AccessSite,
    mapping: Mapping,
    device: GpuDevice,
    strides: Optional[Sequence[int]] = None,
) -> WarpAccessProfile:
    """Count the 128-byte segments one warp touches for this access."""
    offset = site.offset_form(strides)
    block_shape = mapping.block_shape()
    active_lanes = min(device.warp_size, max(1, mapping.threads_per_block()))
    coords = lane_coordinates(block_shape, device.warp_size)[:active_lanes]

    # Map each enclosing pattern index to the dimension it rides on.
    level_dims: Dict[str, Optional[Dim]] = {}
    for level, name in enumerate(site.index_names):
        if level < mapping.num_levels and mapping.level(level).parallel:
            level_dims[name] = mapping.level(level).dim
        else:
            level_dims[name] = None  # sequential: constant within a warp

    seg = device.mem_transaction_bytes

    # Group lanes by the coordinates of opaque-dependent dimensions; lanes
    # in different groups have unrelated base addresses.
    def opaque_group(coord: Dict[Dim, int]) -> Tuple:
        key: List[int] = []
        for name in offset.opaque_deps:
            dim = level_dims.get(name)
            if dim is not None and dim in coord:
                key.append(coord[dim])
        return tuple(key)

    # Randomness is already folded into opaque_deps (a fresh draw per
    # enclosing iteration), so grouping by opaque coordinates handles it:
    # lanes sharing every opaque coordinate share the same arbitrary base.
    groups: Dict[Tuple, List[int]] = {}
    for lane, coord in enumerate(coords):
        byte_offset = 0.0
        for name, coeff in offset.coeffs:
            dim = level_dims.get(name)
            if dim is not None and dim in coord:
                byte_offset += coeff * coord[dim] * site.elem_bytes
        groups.setdefault(opaque_group(coord), []).append(int(byte_offset))

    transactions = 0
    for offsets in groups.values():
        segments = {off // seg for off in offsets}
        transactions += len(segments)

    useful = active_lanes * site.elem_bytes
    fully = len(groups) == 1 and transactions <= max(1, -(-useful // seg))
    return WarpAccessProfile(
        transactions=max(1, transactions),
        useful_bytes=useful,
        fully_coalesced=fully,
    )
