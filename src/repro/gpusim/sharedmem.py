"""Shared-memory bank-conflict model.

Shared memory is divided into 32 banks (4-byte words on Fermi, 8-byte mode
on Kepler); when lanes of a warp hit distinct addresses in the same bank
the accesses serialize.  The paper's Figure 9 template indexes scratch as
``smem[threadIdx.y][threadIdx.x]``, whose conflict behaviour depends on the
row pitch — exactly what this model prices for the tree-reduction and
prefetch costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .device import GpuDevice

#: Banks on all modeled devices.
NUM_BANKS = 32


@dataclass(frozen=True)
class BankConflictProfile:
    """Serialization of one warp-wide shared-memory access."""

    #: Maximum lanes hitting distinct words of one bank (1 = conflict-free).
    serialization: int
    #: True when every lane mapped to a different bank (or broadcast).
    conflict_free: bool


def bank_conflicts(
    lane_word_offsets: List[int], banks: int = NUM_BANKS
) -> BankConflictProfile:
    """Conflict profile for explicit per-lane word offsets.

    Lanes accessing the *same* word broadcast (no conflict); lanes
    accessing different words in the same bank serialize.
    """
    per_bank: Dict[int, set] = {}
    for offset in lane_word_offsets:
        per_bank.setdefault(offset % banks, set()).add(offset)
    serialization = max(
        (len(words) for words in per_bank.values()), default=1
    )
    return BankConflictProfile(
        serialization=max(1, serialization),
        conflict_free=serialization <= 1,
    )


def strided_access_conflicts(
    stride_words: int, active_lanes: int = 32, banks: int = NUM_BANKS
) -> BankConflictProfile:
    """Conflict profile for the common strided pattern
    ``smem[lane * stride]``.

    Power-of-two strides are the classic worst case: stride 2 gives 2-way
    conflicts, stride 32 gives 32-way.
    """
    offsets = [lane * stride_words for lane in range(active_lanes)]
    return bank_conflicts(offsets, banks)


def tree_reduce_conflict_factor(
    dim_stride_words: int, block_size: int, device: GpuDevice
) -> float:
    """Average serialization of the Figure 9 tree reduction.

    Each step accesses ``smem[lin]`` and ``smem[lin + off * stride]``; the
    lane-to-word stride equals the reduce dimension's linear stride.  The
    factor multiplies the shared-memory time term.
    """
    profile = strided_access_conflicts(
        max(1, dim_stride_words), min(device.warp_size, block_size)
    )
    return float(profile.serialization)
