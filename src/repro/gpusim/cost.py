"""Analytic kernel cost model.

Given a kernel's analysis facts, a mapping decision, and runtime sizes, the
model estimates execution time from first-order GPU behaviour:

* **memory traffic** — per-access warp transactions from the exact
  coalescing model, with an L2 reuse correction, divided by the bandwidth
  achievable at the launch's occupancy;
* **memory latency** — total warp-level load issues over the outstanding-
  request capacity of the resident warps (dominates at low occupancy);
* **compute** — arithmetic operation counts over peak throughput;
* **overheads** — kernel launch, block scheduling, device-side malloc
  (serialized), shared-memory reduction trees, atomics, and Split(k)
  combiner kernels.

Every effect the paper's evaluation narrative relies on is an explicit
term, so mapping comparisons (who wins, where the crossover is) are
meaningful even though absolute times are synthetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..analysis.access import AccessSite
from ..analysis.analyzer import KernelAnalysis
from ..analysis.mapping import Mapping, Span, SpanAll, Split
from ..analysis.nesting import Nest
from ..analysis.shapes import SizeEnv, eval_size
from ..errors import SimulationError
from ..ir.expr import (
    ArrayRead,
    BinOp,
    Call,
    Cmp,
    If,
    Node,
    Select,
    Store,
    UnOp,
)
from ..ir.functions import FnCall
from ..ir.patterns import Filter, GroupBy, PatternExpr, Reduce
from .coalescing import distinct_warp_combos, warp_transactions
from .device import GpuDevice
from .occupancy import compute_occupancy
from .stats import AccessCost, KernelCost

#: Cost in op-equivalents of a transcendental intrinsic.
TRANSCENDENTAL_OPS = 6.0
#: Index-arithmetic op-equivalents charged per array access.
INDEX_OPS_PER_ACCESS = 2.0
#: Cost of one __syncthreads() in nanoseconds.
SYNC_NS = 20.0


@dataclass(frozen=True)
class LaunchPlan:
    """Optimization decisions that affect the cost of a launch.

    Produced by :mod:`repro.optim`; a default-constructed plan means
    "no optimizations applied" (dynamic mallocs stay, canonical row-major
    layouts, no shared-memory prefetch).
    """

    #: Inner allocations preallocated outside the kernel (Section V-A).
    prealloc: bool = False
    #: Physical element strides per flexible-layout array key; absent keys
    #: use canonical row-major.
    layout_strides: Tuple[Tuple[str, Tuple[int, ...]], ...] = ()
    #: Array keys whose outer-level accesses are staged through shared
    #: memory (Section V-B).
    smem_prefetch: FrozenSet[str] = frozenset()
    #: Extra shared memory per block requested by the plan (bytes).
    extra_shared_bytes: int = 0

    def strides_for(self, key: str) -> Optional[Tuple[int, ...]]:
        for k, strides in self.layout_strides:
            if k == key:
                return strides
        return None


def runtime_level_sizes(nest: Nest, env: SizeEnv) -> List[int]:
    """Per-level domain sizes under runtime bindings."""
    sizes = []
    for level in nest.levels:
        sizes.append(
            max(
                max(1, int(eval_size(p.pattern.size, env)))
                for p in level.patterns
            )
        )
    return sizes


def count_ops(
    root: PatternExpr,
    env: SizeEnv,
    mapping: Optional[Mapping] = None,
    index_levels: Optional[dict] = None,
) -> float:
    """Total arithmetic op-equivalents executed by one kernel run.

    With a ``mapping`` and an index-name->level map, branch costs become
    mapping-dependent: a condition on a warp-varying index makes the warp
    execute *both* paths (thread divergence), so such branches bill the
    sum of their branch costs instead of the probability-weighted
    expectation.
    """
    total = [0.0]

    def branch_weights(cond: Node, prob: float) -> Tuple[float, float]:
        if mapping is not None and index_levels:
            from ..analysis.access import index_vars_in

            deps = index_vars_in(cond, frozenset(index_levels))
            diverged = any(
                index_levels[name] < mapping.num_levels
                and mapping.varies_within_warp(index_levels[name])
                for name in deps
                if name in index_levels
            )
            if diverged:
                return (1.0, 1.0)
        return (prob, 1.0 - prob)

    def visit(node: Node, multiplier: float) -> None:
        if isinstance(node, PatternExpr):
            size = max(1, int(eval_size(node.size, env)))
            inner = multiplier * size
            for child in node.body_nodes():
                visit(child, inner)
            if isinstance(node, Reduce):
                total[0] += inner  # the combine operation itself
                if node.combine is not None:
                    visit(node.combine[2], inner)
            return
        if isinstance(node, (BinOp, Cmp, UnOp)):
            total[0] += multiplier
        elif isinstance(node, Select):
            total[0] += multiplier
            w_true, w_false = branch_weights(node.cond, node.prob)
            visit(node.cond, multiplier)
            visit(node.if_true, multiplier * w_true)
            visit(node.if_false, multiplier * w_false)
            return
        elif isinstance(node, If):
            w_true, w_false = branch_weights(node.cond, node.prob)
            visit(node.cond, multiplier)
            for stmt in node.then:
                visit(stmt, multiplier * w_true)
            for stmt in node.otherwise:
                visit(stmt, multiplier * w_false)
            return
        elif isinstance(node, Call):
            total[0] += multiplier * TRANSCENDENTAL_OPS
        elif isinstance(node, FnCall):
            total[0] += multiplier * node.fn.flops
        elif isinstance(node, (ArrayRead, Store)):
            total[0] += multiplier * INDEX_OPS_PER_ACCESS
        for child in node.children():
            visit(child, multiplier)

    visit(root, 1.0)
    return total[0]


def _site_issues(
    site: AccessSite,
    mapping: Mapping,
    sizes: Sequence[int],
    total_warps: float,
    device: GpuDevice,
    env: SizeEnv,
) -> float:
    """Warp-level instruction issues for one access site.

    Reads: each warp executes the access once per iteration of every
    enclosing level at or above the site's level (threads redundantly load
    outer-level values they need); deeper levels' iterations do not
    re-execute it, since the statement is hoisted outside inner loops.

    Writes: generated code guards outer-level stores so exactly one thread
    per index combination performs them, so issues are the semantic
    execution count divided by the distinct combinations per warp.
    """
    if site.kind == "write":
        combos = distinct_warp_combos(site, mapping, device)
        return site.exec_count(env) / combos
    iters = 1.0
    for level in range(min(site.level + 1, mapping.num_levels)):
        iters *= mapping.thread_iterations(level, sizes[level])
    return total_warps * iters * site.branch_prob


def _estimate_shared_bytes(
    analysis: KernelAnalysis, mapping: Mapping, plan: LaunchPlan
) -> int:
    """Shared memory per block the generated kernel would request."""
    smem = plan.extra_shared_bytes
    for level_info in analysis.nest.levels:
        lm = (
            mapping.level(level_info.level)
            if level_info.level < mapping.num_levels
            else None
        )
        if lm is None or not lm.parallel:
            continue
        if isinstance(lm.span, (SpanAll, Split)) and any(
            p.needs_sync for p in level_info.patterns
        ):
            # Block-wide reduction scratch: one slot per thread.
            smem += mapping.threads_per_block() * 8
            break
    return smem


def estimate_kernel_cost(
    analysis: KernelAnalysis,
    mapping: Mapping,
    device: GpuDevice,
    env: Optional[SizeEnv] = None,
    plan: Optional[LaunchPlan] = None,
) -> KernelCost:
    """Estimate the execution time of one kernel under a mapping."""
    from ..observability import get_metrics, get_tracer

    with get_tracer().span("simulate", mapping=str(mapping)) as span:
        cost = _estimate_kernel_cost(analysis, mapping, device, env, plan)
        total = cost.total_us
        # A poisoned estimate (fault injection) must not leak NaN into the
        # trace JSON or the monotone counters.
        span.set(total_us=round(total, 3) if math.isfinite(total) else str(total))
    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter("simulate.kernels").inc()
        for name, us in cost.components().items():
            if math.isfinite(us):
                metrics.counter(f"cost.{name}").inc(us)
    return cost


def _estimate_kernel_cost(
    analysis: KernelAnalysis,
    mapping: Mapping,
    device: GpuDevice,
    env: Optional[SizeEnv] = None,
    plan: Optional[LaunchPlan] = None,
) -> KernelCost:
    from ..resilience.faults import maybe_inject

    fault = maybe_inject("simulator")
    if env is None:
        env = analysis.env
    if plan is None:
        plan = LaunchPlan()
    nest = analysis.nest
    if mapping.num_levels != nest.depth:
        raise SimulationError(
            f"mapping has {mapping.num_levels} levels, nest has {nest.depth}"
        )

    sizes = runtime_level_sizes(nest, env)
    # Load imbalance: a dynamically sized level executed as a per-thread
    # sequential loop makes each warp wait for its slowest lane, inflating
    # per-thread iterations by the workload's skew ratio.  Parallelized
    # dynamic levels (Span(all): one block per outer iteration) are
    # balanced by the hardware block scheduler instead — the very reason
    # warp/block-based mappings win on skewed graphs.
    iter_sizes = list(sizes)
    imbalanced = False
    for level_info in nest.levels:
        level = level_info.level
        if level >= mapping.num_levels:
            continue
        dynamic = any(p.launch_dynamic for p in level_info.patterns)
        if dynamic and not mapping.level(level).parallel and env.skew > 1.0:
            iter_sizes[level] = int(sizes[level] * env.skew)
            imbalanced = True
    total_blocks = mapping.total_blocks(sizes)
    tpb = mapping.threads_per_block()
    shared_bytes = _estimate_shared_bytes(analysis, mapping, plan)
    occ = compute_occupancy(device, total_blocks, tpb, shared_bytes)

    cost = KernelCost(occupancy=occ)
    cost.launch_us = device.kernel_launch_us
    cost.block_sched_us = (
        total_blocks * device.block_sched_ns / 1e3 / device.num_sms
    )

    # -- dynamic allocations -------------------------------------------
    if not plan.prealloc:
        malloc_calls = sum(a.alloc_count(env) for a in analysis.accesses.allocs)
        cost.malloc_us = malloc_calls * device.malloc_us

    # -- memory ----------------------------------------------------------
    total_warps = total_blocks * occ.warps_per_block
    seg = device.mem_transaction_bytes
    resident_line_bytes = max(
        seg, occ.resident_warps * device.warp_size * seg
    )

    issues_total = 0.0
    traffic_total = 0.0
    smem_extra_ops = 0.0

    for site in analysis.accesses.sites:
        prefetched = site.array_key in plan.smem_prefetch and site.level < (
            nest.depth - 1
        )
        footprint = site.footprint_bytes(env)
        if prefetched:
            # The chunk is loaded once, coalesced, by dim-x threads; later
            # uses hit shared memory (Section V-B).
            effective = footprint
            issues = footprint / seg
            transactions = 1
            smem_extra_ops += site.exec_count(env)
        else:
            profile = warp_transactions(
                site, mapping, device, plan.strides_for(site.array_key)
            )
            issues = _site_issues(
                site, mapping, iter_sizes, total_warps, device, env
            )
            transactions = profile.transactions
            issued = issues * transactions * seg
            if issued <= footprint:
                effective = issued
            else:
                # Redundant fetches are absorbed by L2 when the live line
                # set fits.  Lines are shared across threads touching the
                # same data, so the live set is bounded both by one line
                # per resident thread and by the access's own footprint.
                ws_bytes = max(seg, min(resident_line_bytes, footprint))
                hit_rate = min(1.0, device.l2_cache_bytes / ws_bytes)
                effective = footprint + (issued - footprint) * (1.0 - hit_rate)
        issues_total += issues
        traffic_total += effective
        cost.accesses.append(
            AccessCost(
                array_key=site.array_key,
                kind=site.kind,
                level=site.level,
                issues=issues,
                transactions_per_issue=transactions,
                issued_bytes=issues * transactions * seg,
                footprint_bytes=footprint,
                effective_bytes=effective,
                smem_prefetched=prefetched,
            )
        )

    bw = device.mem_bandwidth_gbs * 1e9 * max(1e-6, occ.bandwidth_fraction)
    cost.traffic_bytes = traffic_total
    cost.mem_bandwidth_us = traffic_total / bw * 1e6

    latency_s = device.mem_latency_cycles / (device.clock_ghz * 1e9)
    concurrency = max(1.0, occ.resident_warps * device.mem_parallelism)
    cost.mem_latency_us = issues_total * latency_s / concurrency * 1e6

    # -- compute ---------------------------------------------------------
    index_levels = {
        info.pattern.index.name: info.level
        for info in nest.info_by_pattern.values()
    }
    ops = count_ops(analysis.root, env, mapping, index_levels)
    compute_util = min(
        1.0, occ.resident_warps / device.warps_for_peak_compute
    )
    if occ.resident_blocks < device.num_sms:
        # Blocks pin to SMs; fewer blocks than SMs leaves whole SMs idle
        # no matter how many warps the busy ones hold.
        compute_util = min(
            compute_util, occ.resident_blocks / device.num_sms
        )
    cost.compute_us = ops / (device.peak_flops * max(1e-6, compute_util)) * 1e6
    if imbalanced:
        # Idle lanes during the skewed sequential loop waste issue slots.
        cost.compute_us *= env.skew

    # -- shared memory / synchronization ---------------------------------
    smem_ops = smem_extra_ops
    sync_count = 0.0
    for level_info in nest.levels:
        if level_info.level >= mapping.num_levels:
            continue
        lm = mapping.level(level_info.level)
        if not lm.parallel or not isinstance(lm.span, (SpanAll, Split)):
            continue
        if any(p.needs_sync for p in level_info.patterns):
            # Tree reduction per block: each thread writes once, then a
            # log-depth combine; syncs per step.  The scratch is indexed
            # by the *linear* thread id, so a warp's lanes always touch
            # consecutive words — bank-conflict-free regardless of which
            # logical dim is reduced (see repro.gpusim.sharedmem for the
            # general conflict model used by other access shapes).
            steps = max(1, int(math.log2(max(2, lm.block_size))))
            smem_ops += total_blocks * tpb * 2
            sync_count += total_blocks * steps
    # Shared-memory throughput: one access per lane per cycle per SM,
    # derated by the per-access pipeline latency amortized over 8 warps.
    smem_throughput = device.num_sms * device.warp_size * device.clock_ghz * 1e9
    cost.shared_mem_us = (
        smem_ops / smem_throughput * device.shared_mem_cycles / 8 * 1e6
    )
    cost.shared_mem_us += sync_count * SYNC_NS / 1e3 / device.num_sms

    # -- atomics (Filter / GroupBy compaction) ----------------------------
    atomic_count = 0.0
    for level_info in nest.levels:
        for pinfo in level_info.patterns:
            if isinstance(pinfo.pattern, (Filter, GroupBy)):
                count = 1.0
                for p in (*pinfo.enclosing, pinfo.pattern):
                    count *= max(1, int(eval_size(p.size, env)))
                atomic_count += count
    # Warp-aggregated atomics: ~one hardware atomic per warp of elements.
    cost.atomic_us = atomic_count / device.warp_size * device.atomic_ns / 1e3

    # -- combiner kernel for Split(k) -------------------------------------
    if mapping.needs_combiner():
        split_k = 1
        for lm in mapping.levels:
            if isinstance(lm.span, Split):
                split_k *= lm.span.k
        out_bytes = next(
            (
                s.footprint_bytes(env)
                for s in analysis.accesses.sites
                if s.array_key == "__out__"
            ),
            8.0,
        )
        partial_bytes = (split_k + 1) * out_bytes
        cost.combiner_us = (
            device.kernel_launch_us
            + partial_bytes / (device.mem_bandwidth_gbs * 1e9) * 1e6
        )

    if fault is not None and fault.kind in ("nan", "inf"):
        # Injected cost-model poisoning: consumers must reject this via
        # check_finite()/isfinite filtering, never act on it.
        cost.compute_us = float(fault.kind)

    return cost
