"""Simulator facade: program + strategy -> estimated execution time.

This is the low-level entry point the runtime session and the benchmark
harness build on.  A *strategy* is either the name of a fixed baseline
("1d", "thread-block/thread", "warp-based"), the string "multidim" (run the
paper's search per kernel), or an explicit :class:`Mapping` applied to every
kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..analysis.analyzer import KernelAnalysis, analyze_program
from ..analysis.mapping import Mapping
from ..analysis.search import SearchResult
from ..analysis.shapes import SizeEnv
from ..ir.patterns import Program
from .cost import LaunchPlan, estimate_kernel_cost
from .device import GpuDevice, default_device
from .stats import KernelCost, ProgramCost

Strategy = Union[str, Mapping]


@dataclass
class KernelDecision:
    """The mapping (and plan) chosen for one kernel under a strategy."""

    analysis: KernelAnalysis
    mapping: Mapping
    plan: LaunchPlan
    score: Optional[float] = None
    #: Search telemetry when the "multidim" strategy ran the search.
    search: Optional[SearchResult] = None
    #: The :class:`~repro.optim.passes.recipe.KernelRecipe` recording the
    #: pass pipeline that built ``plan`` (None when the plan was
    #: substituted rather than built — degraded compiles, bare plans).
    recipe: Optional[object] = None

    def cost(self, device: GpuDevice, env: Optional[SizeEnv] = None) -> KernelCost:
        return estimate_kernel_cost(
            self.analysis, self.mapping, device, env, self.plan
        )


def decide_mapping(
    analysis: KernelAnalysis,
    strategy: Strategy,
    device: GpuDevice,
    optimize: bool = True,
    budget=None,
    engine: Optional[str] = None,
    flags=None,
) -> KernelDecision:
    """Resolve a strategy to a concrete mapping for one kernel.

    With ``optimize=True`` (the default, matching the paper's "all results
    utilized the optimizations where applicable") the Section-V pipeline
    builds the launch plan; otherwise a bare plan with preallocation only.
    ``budget`` bounds the MultiDim search (ignored by fixed strategies,
    which decide in constant time); ``engine`` forces a search engine for
    the MultiDim strategy; ``flags`` selects which optimization passes
    the pipeline applies (default: all).
    """
    score: Optional[float] = None
    search: Optional[SearchResult] = None
    if isinstance(strategy, Mapping):
        mapping = strategy
    elif strategy == "multidim":
        search = analysis.select_mapping(
            window=device.dop_window(), budget=budget, engine=engine
        )
        mapping, score = search.mapping, search.score
    else:
        mapping = analysis.strategy_mapping(strategy)
    recipe = None
    if optimize:
        from ..optim.pipeline import build_plan_with_recipe

        plan, recipe = build_plan_with_recipe(
            analysis, mapping, device, flags
        )
    else:
        plan = LaunchPlan(prealloc=True)
    return KernelDecision(analysis, mapping, plan, score, search, recipe)


def simulate_program(
    program: Program,
    strategy: Strategy = "multidim",
    device: Optional[GpuDevice] = None,
    plan: Optional[LaunchPlan] = None,
    input_bytes: float = 0.0,
    include_transfer: bool = False,
    **sizes: int,
) -> ProgramCost:
    """Estimate a whole program's execution time under a strategy.

    ``sizes`` override the program's size hints (the benchmark harness
    sweeps shapes this way).  ``input_bytes``/``include_transfer`` model
    the host-to-device copy the paper includes only in Section VI-E.
    """
    from ..observability import instrumented_stage

    with instrumented_stage(
        "simulate_program",
        inject=False,
        program=program.name,
        strategy=str(strategy),
    ) as span:
        if device is None:
            device = default_device()
        pa = analyze_program(program, **sizes)
        result = ProgramCost()
        for ka in pa.kernels:
            decision = decide_mapping(ka, strategy, device)
            if plan is not None:
                decision.plan = plan
            result.kernels.append(decision.cost(device, pa.env))
        if include_transfer and input_bytes > 0:
            result.transfer_us = (
                device.pcie_latency_us
                + input_bytes / (device.pcie_bandwidth_gbs * 1e9) * 1e6
            )
        span.set(kernels=len(result.kernels), total_us=round(result.total_us, 3))
        return result
