"""Result records produced by the GPU cost model."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from .occupancy import Occupancy


@dataclass
class AccessCost:
    """Per-access-site memory accounting (diagnostics)."""

    array_key: str
    kind: str
    level: int
    issues: float
    transactions_per_issue: int
    issued_bytes: float
    footprint_bytes: float
    effective_bytes: float
    smem_prefetched: bool = False


@dataclass
class KernelCost:
    """Time breakdown for one kernel launch, in microseconds.

    ``total_us`` is the model's estimate of wall-clock execution time; the
    components are reported so experiments can explain *why* a mapping wins
    (bandwidth-bound vs latency-bound vs overhead-bound).
    """

    launch_us: float = 0.0
    block_sched_us: float = 0.0
    malloc_us: float = 0.0
    mem_bandwidth_us: float = 0.0
    mem_latency_us: float = 0.0
    compute_us: float = 0.0
    shared_mem_us: float = 0.0
    atomic_us: float = 0.0
    combiner_us: float = 0.0
    occupancy: Optional[Occupancy] = None
    traffic_bytes: float = 0.0
    accesses: List[AccessCost] = field(default_factory=list)

    @property
    def memory_us(self) -> float:
        """The memory-system time: bandwidth and latency terms overlap, so
        the binding one dominates."""
        return max(self.mem_bandwidth_us, self.mem_latency_us)

    @property
    def total_us(self) -> float:
        return (
            self.launch_us
            + self.block_sched_us
            + self.malloc_us
            + max(self.memory_us, self.compute_us)
            + self.shared_mem_us
            + self.atomic_us
            + self.combiner_us
        )

    #: The per-component fields, in :meth:`describe` order.  ``total_us``
    #: is NOT their plain sum: bandwidth/latency overlap (``memory_us``
    #: takes their max) and memory overlaps compute the same way.
    COMPONENT_FIELDS = (
        "launch_us",
        "block_sched_us",
        "malloc_us",
        "mem_bandwidth_us",
        "mem_latency_us",
        "compute_us",
        "shared_mem_us",
        "atomic_us",
        "combiner_us",
    )

    def components(self) -> dict:
        """Component name -> microseconds, for metrics and provenance."""
        return {name: getattr(self, name) for name in self.COMPONENT_FIELDS}

    def check_finite(self) -> List[str]:
        """Return the names of any components that are not finite and
        non-negative — the cost model must never emit NaN/inf/negative time.
        """
        bad = []
        for name in self.COMPONENT_FIELDS + ("traffic_bytes",):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0:
                bad.append(f"{name}={value!r}")
        return bad

    def describe(self) -> str:
        occ = self.occupancy
        lines = [
            f"total        {self.total_us:12.1f} us",
            f"  launch     {self.launch_us:12.1f}",
            f"  blocks     {self.block_sched_us:12.1f}",
            f"  malloc     {self.malloc_us:12.1f}",
            f"  mem (bw)   {self.mem_bandwidth_us:12.1f}",
            f"  mem (lat)  {self.mem_latency_us:12.1f}",
            f"  compute    {self.compute_us:12.1f}",
            f"  smem       {self.shared_mem_us:12.1f}",
            f"  atomic     {self.atomic_us:12.1f}",
            f"  combiner   {self.combiner_us:12.1f}",
            f"  traffic    {self.traffic_bytes / 1e6:12.1f} MB",
        ]
        if occ is not None:
            lines.append(
                f"  occupancy  {occ.occupancy:12.2%} "
                f"({occ.resident_warps} warps, {occ.total_blocks} blocks)"
            )
        return "\n".join(lines)


@dataclass
class ProgramCost:
    """Cost of a whole program: per-kernel costs plus transfer time."""

    kernels: List[KernelCost] = field(default_factory=list)
    transfer_us: float = 0.0

    @property
    def kernels_us(self) -> float:
        return sum(k.total_us for k in self.kernels)

    @property
    def total_us(self) -> float:
        return self.kernels_us + self.transfer_us

    def check_finite(self) -> List[str]:
        """Flatten per-kernel :meth:`KernelCost.check_finite` diagnostics."""
        bad = []
        for i, kernel in enumerate(self.kernels):
            bad.extend(f"kernel[{i}].{item}" for item in kernel.check_finite())
        if not math.isfinite(self.transfer_us) or self.transfer_us < 0:
            bad.append(f"transfer_us={self.transfer_us!r}")
        return bad
