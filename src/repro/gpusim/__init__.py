"""Analytic GPU simulator substrate.

Replaces the paper's Tesla K20c testbed (see DESIGN.md, Substitutions):
exact warp-level coalescing, occupancy-derated bandwidth/latency, and the
overhead terms (launch, block scheduling, device malloc, shared memory,
atomics, combiner kernels) that drive every evaluation figure.
"""

from .coalescing import WarpAccessProfile, lane_coordinates, warp_transactions  # noqa: F401
from .cost import (  # noqa: F401
    LaunchPlan,
    count_ops,
    estimate_kernel_cost,
    runtime_level_sizes,
)
from .cpu import CpuDevice, XEON_X5550_DUAL, estimate_cpu_time_us  # noqa: F401
from .device import DEVICES, GpuDevice, TESLA_C2050, TESLA_K20C, default_device  # noqa: F401
from .occupancy import Occupancy, compute_occupancy  # noqa: F401
from .simulator import KernelDecision, decide_mapping, simulate_program  # noqa: F401
from .stats import AccessCost, KernelCost, ProgramCost  # noqa: F401
