"""Occupancy model: how much of the device a launch actually uses.

Underutilization is one of the paper's two recurring failure modes (the
other is uncoalesced access): a 1D mapping of a 1K-wide outer pattern
launches 1K threads on a device that wants 26K+ resident threads, so memory
latency cannot be hidden.  This module turns a launch geometry into the
resident-warp counts the cost model scales its latency and bandwidth terms
by.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .device import GpuDevice


@dataclass(frozen=True)
class Occupancy:
    """Resident-set summary for one kernel launch."""

    total_blocks: int
    threads_per_block: int
    warps_per_block: int
    total_warps: int
    #: Warps simultaneously resident across the device.
    resident_warps: int
    #: Blocks simultaneously resident across the device.
    resident_blocks: int
    #: Fraction of the device's warp slots occupied, in [0, 1].
    occupancy: float
    #: How many "waves" of blocks the grid needs.
    waves: float
    #: Fraction of peak DRAM bandwidth achievable at this residency.
    bandwidth_fraction: float


def compute_occupancy(
    device: GpuDevice,
    total_blocks: int,
    threads_per_block: int,
    shared_mem_per_block: int = 0,
) -> Occupancy:
    """Derive the resident set for a launch on ``device``.

    Residency per SM is limited by threads, blocks, and shared memory; the
    grid is then spread over the SMs.
    """
    threads_per_block = max(1, threads_per_block)
    warps_per_block = math.ceil(threads_per_block / device.warp_size)

    blocks_by_threads = device.max_threads_per_sm // threads_per_block
    blocks_by_slots = device.max_blocks_per_sm
    if shared_mem_per_block > 0:
        blocks_by_smem = device.shared_mem_per_sm_bytes // max(
            1, shared_mem_per_block
        )
    else:
        blocks_by_smem = blocks_by_slots
    blocks_per_sm = max(0, min(blocks_by_threads, blocks_by_slots, blocks_by_smem))
    if blocks_per_sm == 0:
        # The block does not fit (too much shared memory requested); the
        # driver would fail the launch, but the model degrades to one block
        # per SM so experiments can still report a (terrible) time.
        blocks_per_sm = 1

    resident_blocks = min(total_blocks, blocks_per_sm * device.num_sms)
    resident_warps = min(
        resident_blocks * warps_per_block, device.max_resident_warps
    )
    total_warps = total_blocks * warps_per_block
    occupancy = resident_warps / device.max_resident_warps
    waves = total_blocks / max(1, blocks_per_sm * device.num_sms)

    # DRAM efficiency degrades superlinearly at low residency: besides
    # having fewer requests in flight, sparse access streams underutilize
    # channel/bank parallelism and row buffers.  The 1.3 exponent is an
    # empirical derating consistent with published microbenchmarks.
    bw_ratio = min(1.0, resident_warps / device.warps_for_peak_bw)
    return Occupancy(
        total_blocks=total_blocks,
        threads_per_block=threads_per_block,
        warps_per_block=warps_per_block,
        total_warps=total_warps,
        resident_warps=resident_warps,
        resident_blocks=resident_blocks,
        occupancy=occupancy,
        waves=waves,
        bandwidth_fraction=bw_ratio ** 1.3,
    )
