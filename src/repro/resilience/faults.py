"""Deterministic fault injection for the compilation pipeline.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries, each naming
a pipeline *stage* and a fault *kind*.  Stages call
:func:`maybe_inject` at their entry (or around a vulnerable operation);
when no plan is installed the call is a single ``None`` check, so
production runs pay nothing.

Determinism is the point: a spec fires on the *n*-th matching invocation
of its stage (per-plan counters), so re-installing the same plan and
re-running the same pipeline reproduces the same fault at the same place.
Failure reports serialize the active plan
(:meth:`FaultPlan.to_dict`), which is what makes injected failures
replayable by ``repro replay-failure``.

Fault kinds
-----------

========== ============================= ===========================
kind        applicable stages             effect at the call site
========== ============================= ===========================
exception   every stage                   raises ``InjectedFaultError``
corrupt     memo                          memo hit replaced by garbage
stale       memo                          memo hit from a different key
nan         simulator                     cost model returns NaN
inf         simulator                     cost model returns +inf
deadline    search                        search budget expires now
kill        fleet                         backend dead until restarted
hang        fleet                         request stalls, then fails
slow        fleet                         response delayed, then served
partition   fleet                         transport error for a window
========== ============================= ===========================

``exception`` is raised directly by :func:`maybe_inject`; the data-shaped
kinds are *returned* to the call site, which applies the corruption it
models (the cache corrupts its hit, the cost model poisons its result).
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import InjectedFaultError

__all__ = [
    "STAGES",
    "PIPELINE_STAGES",
    "KINDS",
    "FAULT_MATRIX",
    "FLEET_FAULT_KINDS",
    "FLEET_FAULT_MATRIX",
    "FaultSpec",
    "FaultPlan",
    "inject_faults",
    "active_plan",
    "maybe_inject",
]

#: Compilation-pipeline stages with an injection point.
PIPELINE_STAGES = (
    "analysis",
    "search",
    "memo",
    "optimizer",
    "codegen",
    "simulator",
    "interpreter",
)

#: All stages, including the fleet transport layer.  "fleet" faults fire
#: inside a :class:`~repro.resilience.fleet_chaos.ChaosBackend` wrapping
#: one fleet backend, not inside the pipeline.
STAGES = PIPELINE_STAGES + ("fleet",)

#: Transport-shaped fault kinds for the fleet stage: a backend killed
#: until explicitly restarted, a request that hangs before failing, a
#: slow-but-correct response, and a bounded network partition.
FLEET_FAULT_KINDS = ("kill", "hang", "slow", "partition")

#: All fault kinds.
KINDS = (
    "exception", "corrupt", "stale", "nan", "inf", "deadline",
) + FLEET_FAULT_KINDS

#: Which kinds make sense per stage ("exception" everywhere).
_KINDS_FOR_STAGE: Dict[str, Tuple[str, ...]] = {
    "analysis": ("exception",),
    "search": ("exception", "deadline"),
    "memo": ("exception", "corrupt", "stale"),
    "optimizer": ("exception",),
    "codegen": ("exception",),
    "simulator": ("exception", "nan", "inf"),
    "interpreter": ("exception",),
    "fleet": ("exception",) + FLEET_FAULT_KINDS,
}

#: Every valid (stage, kind) pair of the *pipeline* chaos matrix.  The
#: fleet tier has its own matrix below — its cells need a running fleet,
#: not a bare pipeline, so ``repro chaos`` and ``repro fleet chaos``
#: iterate disjoint matrices.
FAULT_MATRIX: Tuple[Tuple[str, str], ...] = tuple(
    (stage, kind)
    for stage in PIPELINE_STAGES
    for kind in _KINDS_FOR_STAGE[stage]
)

#: The fleet chaos matrix (``repro fleet chaos``).
FLEET_FAULT_MATRIX: Tuple[Tuple[str, str], ...] = tuple(
    ("fleet", kind) for kind in FLEET_FAULT_KINDS
)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: fire ``times`` times starting at the ``at``-th
    matching invocation of ``stage`` (1-based).  ``times=0`` means every
    invocation from ``at`` on."""

    stage: str
    kind: str = "exception"
    at: int = 1
    times: int = 1

    def __post_init__(self) -> None:
        if self.stage not in STAGES:
            raise ValueError(
                f"unknown stage {self.stage!r}; known: {', '.join(STAGES)}"
            )
        if self.kind not in _KINDS_FOR_STAGE[self.stage]:
            raise ValueError(
                f"kind {self.kind!r} does not apply to stage "
                f"{self.stage!r} (valid: "
                f"{', '.join(_KINDS_FOR_STAGE[self.stage])})"
            )
        if self.at < 1:
            raise ValueError(f"at must be >= 1, got {self.at}")
        if self.times < 0:
            raise ValueError(f"times must be >= 0, got {self.times}")

    def fires_at(self, invocation: int) -> bool:
        if invocation < self.at:
            return False
        return self.times == 0 or invocation < self.at + self.times

    def to_dict(self) -> Dict:
        return {
            "stage": self.stage,
            "kind": self.kind,
            "at": self.at,
            "times": self.times,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultSpec":
        return cls(
            stage=data["stage"],
            kind=data.get("kind", "exception"),
            at=data.get("at", 1),
            times=data.get("times", 1),
        )


class FaultPlan:
    """A set of fault specs plus per-stage invocation counters.

    Counters belong to the plan, not the process: installing a fresh plan
    (or calling :meth:`reset`) restarts the deterministic schedule, which
    is what replay relies on.
    """

    def __init__(
        self, specs: Sequence[FaultSpec] = (), seed: int = 0
    ) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self._counters: Dict[str, int] = {}
        self._fired: List[Tuple[str, str, int]] = []
        self._lock = threading.Lock()

    # -- construction ----------------------------------------------------

    @classmethod
    def single(
        cls, stage: str, kind: str = "exception", at: int = 1,
        times: int = 1,
    ) -> "FaultPlan":
        """The chaos matrix's unit: one fault at one place."""
        return cls([FaultSpec(stage=stage, kind=kind, at=at, times=times)])

    @classmethod
    def random(
        cls, seed: int, count: int = 3, max_at: int = 5
    ) -> "FaultPlan":
        """A seeded random plan over the valid (stage, kind) matrix."""
        rng = random.Random(seed)
        specs = [
            FaultSpec(stage=stage, kind=kind, at=rng.randint(1, max_at))
            for stage, kind in (
                rng.choice(FAULT_MATRIX) for _ in range(count)
            )
        ]
        return cls(specs, seed=seed)

    # -- runtime ---------------------------------------------------------

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._fired.clear()

    @property
    def fired(self) -> List[Tuple[str, str, int]]:
        """(stage, kind, invocation) triples of faults that fired."""
        with self._lock:
            return list(self._fired)

    def fire(self, stage: str) -> Optional[FaultSpec]:
        """Advance the stage counter; return the spec that fires, if any.

        ``exception`` kinds are raised here so call sites need no
        special-casing; data-shaped kinds are returned for the call site
        to apply.
        """
        with self._lock:
            invocation = self._counters.get(stage, 0) + 1
            self._counters[stage] = invocation
            hit: Optional[FaultSpec] = None
            for spec in self.specs:
                if spec.stage == stage and spec.fires_at(invocation):
                    hit = spec
                    break
            if hit is not None:
                self._fired.append((stage, hit.kind, invocation))
        if hit is not None and hit.kind == "exception":
            raise InjectedFaultError(
                stage,
                f"injected {hit.kind} fault in stage {stage!r} "
                f"(invocation {invocation})",
            )
        return hit

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        return cls(
            [FaultSpec.from_dict(d) for d in data.get("specs", [])],
            seed=data.get("seed", 0),
        )

    def describe(self) -> str:
        if not self.specs:
            return "fault plan: empty"
        return "fault plan: " + ", ".join(
            f"{s.stage}/{s.kind}@{s.at}"
            + (f"x{s.times}" if s.times != 1 else "")
            for s in self.specs
        )


# -- the process-wide injection point --------------------------------------

_ACTIVE: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


@contextmanager
def inject_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the dynamic extent of the block.

    Counters reset on entry, so ``with inject_faults(plan)`` around an
    identical pipeline run fires identically — the replay guarantee.
    """
    global _ACTIVE
    previous = _ACTIVE
    plan.reset()
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


def maybe_inject(stage: str) -> Optional[FaultSpec]:
    """The per-stage hook: a no-op unless a plan is installed.

    Raises :class:`~repro.errors.InjectedFaultError` for ``exception``
    faults; returns the :class:`FaultSpec` for data-shaped faults the
    call site must apply; returns ``None`` otherwise.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.fire(stage)
