"""Replayable failure reports.

Every :class:`~repro.errors.ReproError` escaping the session pipeline is
wrapped with enough context to re-execute it: the failing stage, the
kernel index and mapping candidate (when one existed), the serialized IR
of the program (:mod:`repro.ir.serialize`), the size bindings, the device,
and the active fault plan.  The report is attached to the exception as
``exc.failure_report`` and can be written as a JSON artifact that
``repro replay-failure`` re-executes deterministically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..errors import ReproError

#: Bumped on any incompatible artifact change; the loader checks it.
REPORT_VERSION = 1


@dataclass
class FailureReport:
    """Everything needed to re-execute one pipeline failure."""

    stage: str
    error_type: str
    error_message: str
    kernel_index: Optional[int] = None
    mapping: Optional[str] = None
    strategy: Optional[str] = None
    sizes: Dict[str, int] = field(default_factory=dict)
    device: Optional[str] = None
    seed: int = 0
    program_ir: Optional[Dict[str, Any]] = None
    fault_plan: Optional[Dict[str, Any]] = None
    #: The tail of the active trace when the failure escaped (Chrome
    #: trace events), when tracing was on.  Optional and ignored by
    #: replay, so version 1 artifacts stay compatible both ways.
    trace: Optional[list] = None
    #: Whether ``trace`` is a truncated tail, and how many earlier
    #: events were cut.  A long campaign used to drop its prefix
    #: silently — a reader had no way to tell "the trace starts here"
    #: from "everything before this was thrown away".
    trace_truncated: bool = False
    trace_dropped_events: int = 0

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "version": REPORT_VERSION,
            "stage": self.stage,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "kernel_index": self.kernel_index,
            "mapping": self.mapping,
            "strategy": self.strategy,
            "sizes": dict(self.sizes),
            "device": self.device,
            "seed": self.seed,
            "program_ir": self.program_ir,
            "fault_plan": self.fault_plan,
        }
        if self.trace:
            data["trace"] = list(self.trace)
            data["truncated"] = self.trace_truncated
            data["dropped_events"] = self.trace_dropped_events
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FailureReport":
        version = data.get("version")
        if version != REPORT_VERSION:
            raise ReproError(
                f"failure report version {version!r} is not supported "
                f"(expected {REPORT_VERSION})"
            )
        return cls(
            stage=data["stage"],
            error_type=data["error_type"],
            error_message=data["error_message"],
            kernel_index=data.get("kernel_index"),
            mapping=data.get("mapping"),
            strategy=data.get("strategy"),
            sizes={k: int(v) for k, v in (data.get("sizes") or {}).items()},
            device=data.get("device"),
            seed=data.get("seed", 0),
            program_ir=data.get("program_ir"),
            fault_plan=data.get("fault_plan"),
            trace=data.get("trace"),
            trace_truncated=bool(data.get("truncated", False)),
            trace_dropped_events=int(data.get("dropped_events", 0)),
        )

    def describe(self) -> str:
        lines = [
            f"failure in stage {self.stage!r}: "
            f"{self.error_type}: {self.error_message}",
        ]
        if self.kernel_index is not None:
            lines.append(f"  kernel index: {self.kernel_index}")
        if self.mapping:
            lines.append(f"  mapping candidate: {self.mapping}")
        if self.strategy:
            lines.append(f"  strategy: {self.strategy}")
        if self.sizes:
            bindings = ", ".join(
                f"{k}={v}" for k, v in sorted(self.sizes.items())
            )
            lines.append(f"  sizes: {bindings}")
        if self.device:
            lines.append(f"  device: {self.device}")
        if self.fault_plan and self.fault_plan.get("specs"):
            from .faults import FaultPlan

            lines.append(
                "  " + FaultPlan.from_dict(self.fault_plan).describe()
            )
        if self.trace and self.trace_truncated:
            lines.append(
                f"  trace tail: {len(self.trace)} event(s) kept, "
                f"{self.trace_dropped_events} earlier event(s) dropped"
            )
        return "\n".join(lines)


def build_report(
    exc: ReproError,
    stage: str,
    program=None,
    kernel_index: Optional[int] = None,
    mapping=None,
    strategy=None,
    sizes: Optional[Dict[str, int]] = None,
    device=None,
    seed: int = 0,
) -> FailureReport:
    """Assemble a report for an escaping error (best-effort on context)."""
    from ..observability import get_tracer
    from .faults import active_plan

    program_ir = None
    if program is not None:
        try:
            from ..ir.serialize import program_to_dict

            program_ir = program_to_dict(program)
        except ReproError:
            program_ir = None  # unserializable program: replay from stage only
    plan = active_plan()
    tracer = get_tracer()
    trace = None
    dropped = 0
    if tracer.enabled:
        trace, dropped = tracer.tail_info(100)
    return FailureReport(
        stage=stage,
        error_type=type(exc).__name__,
        error_message=str(exc),
        kernel_index=kernel_index,
        mapping=None if mapping is None else str(mapping),
        strategy=None if strategy is None else str(strategy),
        sizes=dict(sizes or {}),
        device=None if device is None else getattr(device, "name", str(device)),
        seed=seed,
        program_ir=program_ir,
        fault_plan=None if plan is None else plan.to_dict(),
        trace=trace,
        trace_truncated=dropped > 0,
        trace_dropped_events=dropped,
    )


def attach_report(exc: ReproError, report: FailureReport) -> ReproError:
    """Hang the report off the exception (``exc.failure_report``)."""
    exc.failure_report = report
    return exc


def write_failure_report(
    report: FailureReport, out_dir: str, index: Optional[int] = None
) -> str:
    """Write one report as a JSON artifact; returns its path."""
    os.makedirs(out_dir, exist_ok=True)
    if index is None:
        index = len(
            [n for n in os.listdir(out_dir)
             if n.startswith("failure-") and n.endswith(".json")]
        )
    path = os.path.join(out_dir, f"failure-{index:03d}.json")
    with open(path, "w") as handle:
        json.dump(report.to_dict(), handle, indent=2)
        handle.write("\n")
    return path


def load_failure_report(path: str) -> FailureReport:
    with open(path) as handle:
        return FailureReport.from_dict(json.load(handle))


# -- replay ----------------------------------------------------------------


@dataclass
class ReplayOutcome:
    """What happened when a failure report was re-executed."""

    reproduced: bool
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    detail: str = ""

    def describe(self) -> str:
        if self.reproduced:
            return (
                f"REPRODUCED: {self.error_type}: {self.error_message}"
            )
        if self.error_type:
            return (
                f"DIFFERENT FAILURE: {self.error_type}: "
                f"{self.error_message} ({self.detail})"
            )
        return f"NOT REPRODUCED: {self.detail}"


def replay_failure_report(report: FailureReport) -> ReplayOutcome:
    """Re-execute the pipeline a report describes, deterministically.

    Rebuilds the program from its serialized IR, reinstalls the recorded
    fault plan (with fresh counters), and drives the session pipeline
    through the recorded stage: compile for compilation-stage failures,
    compile + run for interpreter failures, compile + cost estimation for
    simulator failures.  The outcome compares the raised error's type
    against the recorded one.
    """
    from contextlib import nullcontext

    from ..ir.serialize import program_from_dict
    from .faults import FaultPlan, inject_faults

    if report.program_ir is None:
        return ReplayOutcome(
            reproduced=False,
            detail="report carries no serialized program IR",
        )
    program = program_from_dict(report.program_ir)
    if report.sizes:
        # Bake the recorded bindings into the program: input synthesis
        # (make_inputs) reads sizes from the program's own hints.
        import dataclasses

        program = dataclasses.replace(
            program,
            size_hints={**(program.size_hints or {}), **report.sizes},
        )
    plan_ctx = (
        inject_faults(FaultPlan.from_dict(report.fault_plan))
        if report.fault_plan
        else nullcontext()
    )
    strategy = report.strategy or "multidim"

    try:
        with plan_ctx:
            from ..runtime.session import GpuSession

            session = GpuSession(strategy=strategy)
            compiled = session.compile(program, **report.sizes)
            if report.stage == "interpreter":
                from ..difftest.oracle import make_inputs

                inputs = make_inputs(program, seed=report.seed)
                compiled.run(seed=report.seed, **inputs)
            elif report.stage == "simulator":
                cost = compiled.estimate_cost()
                bad = cost.check_finite()
                if bad:
                    from ..errors import SimulationError

                    raise SimulationError(
                        f"non-finite cost components: {', '.join(bad)}"
                    )
    except ReproError as exc:
        same_type = type(exc).__name__ == report.error_type
        return ReplayOutcome(
            reproduced=same_type,
            error_type=type(exc).__name__,
            error_message=str(exc),
            detail="" if same_type else (
                f"expected {report.error_type}"
            ),
        )
    return ReplayOutcome(
        reproduced=False,
        detail=(
            "pipeline completed without error (the failure may have been "
            "environmental, or the pipeline now degrades where it used to "
            "fail)"
        ),
    )
