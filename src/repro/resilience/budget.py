"""Execution budgets for the compilation pipeline.

A :class:`Budget` bounds how much work a stage may do before it must give
up: a wall-clock deadline, a node/candidate count, or both.  Budgets are
*stateful* — the search, the auto-tuner, and the session thread one object
through a whole compilation so the deadline is shared, not per-stage.

The contract consumers follow:

* call :meth:`Budget.start` when work begins (idempotent);
* call :meth:`Budget.spend` per unit of work; it returns ``False`` once
  the budget is exhausted (node budgets are checked exactly; the clock is
  sampled every ``CLOCK_STRIDE`` spends to keep the hot loop cheap);
* on ``False``, degrade to a conservative result
  (:mod:`repro.resilience.fallback`) or raise
  :class:`~repro.errors.BudgetExhaustedError` when no fallback exists.

The clock is injectable so tests can drive deadline exhaustion
deterministically without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..errors import BudgetExhaustedError

__all__ = ["Budget", "BudgetExhaustedError", "CLOCK_STRIDE"]

#: How many :meth:`Budget.spend` calls between deadline clock samples.
CLOCK_STRIDE = 128


class Budget:
    """A deadline and/or node-count budget for one compilation.

    ``deadline_s``/``max_nodes`` of ``None`` mean unbounded on that axis.
    A default-constructed budget never exhausts (so call sites can thread
    ``budget or Budget()`` without branching).
    """

    __slots__ = (
        "deadline_s", "max_nodes", "clock",
        "_t0", "_nodes", "_spent_since_clock", "_expired",
    )

    def __init__(
        self,
        deadline_s: Optional[float] = None,
        max_nodes: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if deadline_s is not None and deadline_s < 0:
            raise ValueError(f"deadline_s must be >= 0, got {deadline_s}")
        if max_nodes is not None and max_nodes < 0:
            raise ValueError(f"max_nodes must be >= 0, got {max_nodes}")
        self.deadline_s = deadline_s
        self.max_nodes = max_nodes
        self.clock = clock
        self._t0: Optional[float] = None
        self._nodes = 0
        self._spent_since_clock = 0
        self._expired = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "Budget":
        """Arm the deadline clock (idempotent)."""
        if self._t0 is None and self.deadline_s is not None:
            self._t0 = self.clock()
        return self

    def fresh(self) -> "Budget":
        """A new unstarted budget with the same limits.

        Sessions hold a budget *template*; each compile gets a fresh
        stateful instance so repeated compiles do not inherit spend.
        """
        return Budget(self.deadline_s, self.max_nodes, self.clock)

    def force_expire(self) -> None:
        """Mark the budget exhausted immediately (deadline-overrun faults)."""
        self._expired = True

    # -- accounting -----------------------------------------------------

    @property
    def bounded(self) -> bool:
        return self.deadline_s is not None or self.max_nodes is not None

    @property
    def nodes_spent(self) -> int:
        return self._nodes

    def spend(self, nodes: int = 1) -> bool:
        """Consume ``nodes`` units; ``True`` while budget remains."""
        if self._expired:
            return False
        self._nodes += nodes
        if self.max_nodes is not None and self._nodes > self.max_nodes:
            self._expired = True
            return False
        if self.deadline_s is not None:
            self._spent_since_clock += nodes
            if self._spent_since_clock >= CLOCK_STRIDE:
                self._spent_since_clock = 0
                return not self.exhausted()
        return True

    def exhausted(self) -> bool:
        """Has the deadline passed or the node budget run out?  (Samples
        the clock, unlike :meth:`spend` which amortizes it.)"""
        if self._expired:
            return True
        if self.max_nodes is not None and self._nodes > self.max_nodes:
            self._expired = True
            return True
        if self.deadline_s is not None:
            self.start()
            if self.clock() - self._t0 > self.deadline_s:
                self._expired = True
                return True
        return False

    def check(self, what: str = "compilation") -> None:
        """Raise :class:`BudgetExhaustedError` if exhausted."""
        if self.exhausted():
            raise BudgetExhaustedError(
                f"{what} exceeded its budget "
                f"(deadline_s={self.deadline_s}, max_nodes={self.max_nodes}, "
                f"nodes_spent={self._nodes})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Budget(deadline_s={self.deadline_s}, "
            f"max_nodes={self.max_nodes}, spent={self._nodes})"
        )
