"""Retry with jittered backoff, and file-backed campaign checkpoints.

Long-running loops (difftest campaigns, figure sweeps, autotune sweeps)
use these so a mid-campaign crash — injected or real — resumes instead of
restarting:

* :func:`retry_with_backoff` re-invokes a callable on
  :class:`~repro.errors.ReproError` with exponentially growing,
  deterministically jittered delays (full jitter, seeded — test runs are
  reproducible and fleets of workers don't thunder-herd in lockstep);
* :class:`Checkpoint` persists loop progress as JSON keyed by a campaign
  fingerprint, so resuming with *different* parameters discards the stale
  checkpoint instead of silently mixing campaigns.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Any, Callable, Dict, Optional, Tuple, Type

from ..errors import ReproError

__all__ = ["retry_with_backoff", "backoff_delays", "Checkpoint"]


def backoff_delays(
    retries: int,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
    seed: int = 0,
) -> Tuple[float, ...]:
    """The deterministic full-jitter delay schedule for ``retries``
    attempts: attempt *i* sleeps uniform(0, min(max_delay, base * 2**i))."""
    rng = random.Random(seed)
    return tuple(
        rng.uniform(0.0, min(max_delay, base_delay * (2 ** attempt)))
        for attempt in range(retries)
    )


def retry_with_backoff(
    fn: Callable[[], Any],
    retries: int = 3,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
    seed: int = 0,
    retry_on: Tuple[Type[BaseException], ...] = (ReproError,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
) -> Any:
    """Call ``fn``; on a retryable error, back off and try again.

    ``retries`` counts *re*-tries: the function runs at most
    ``retries + 1`` times.  The final error propagates unchanged (typed,
    with any attached failure report intact).  ``sleep`` is injectable so
    tests assert the schedule without waiting for it.
    """
    from ..observability import get_metrics

    delays = backoff_delays(retries, base_delay, max_delay, seed)
    for attempt in range(retries + 1):
        try:
            return fn()
        except retry_on as exc:
            if attempt >= retries:
                raise
            delay = delays[attempt]
            get_metrics().counter("resilience.retry.attempts").inc()
            if on_retry is not None:
                on_retry(attempt + 1, exc, delay)
            sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover


class Checkpoint:
    """A JSON progress file for one resumable campaign.

    ``key`` fingerprints the campaign parameters; :meth:`load` returns the
    saved state only when the stored key matches, so a checkpoint from a
    different seed/budget/corpus is ignored rather than resumed into.
    Writes go through a temp file + rename, so a crash mid-save leaves
    either the old state or the new one, never a torn file.
    """

    VERSION = 1

    def __init__(self, path: str, key: Any) -> None:
        self.path = path
        self.key = key

    def load(self) -> Optional[Dict[str, Any]]:
        """The saved state, or ``None`` (missing, corrupt, or key mismatch)."""
        try:
            with open(self.path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("version") != self.VERSION:
            return None
        if payload.get("key") != self.key:
            return None
        state = payload.get("state")
        return state if isinstance(state, dict) else None

    def save(self, state: Dict[str, Any]) -> None:
        payload = {"version": self.VERSION, "key": self.key, "state": state}
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp = f"{self.path}.tmp"
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        os.replace(tmp, self.path)

    def clear(self) -> None:
        """Remove the checkpoint (campaign completed)."""
        try:
            os.remove(self.path)
        except OSError:
            pass
