"""Fleet-level chaos: fault campaigns against a live router + backends.

The pipeline chaos matrix (:mod:`repro.resilience.chaos`) proves one
process absorbs injected faults; this module proves the *fleet* does.
Each campaign builds a real :class:`~repro.service.fleet.FleetRouter`
over in-process backends, wraps one member (the *victim*) in a
:class:`ChaosBackend` that consults the PR-3 deterministic fault plan on
every dispatch, and drives three request waves:

1. **baseline** — no faults installed; every request must succeed;
2. **fault** — a ``("fleet", kind)`` plan is live and the wave is aimed
   at the victim's ring shard, so the fault is guaranteed to fire;
   every ticket must still resolve successfully (failover absorbs the
   victim) — *zero lost tickets* is the campaign's core assertion;
3. **heal** — the victim is restarted and the wave re-aimed at it; the
   background prober must readmit it (breaker reclosed, liveness flag
   restored) and the victim must serve at least one request again.

Fault kinds (see :data:`~repro.resilience.faults.FLEET_FAULT_KINDS`):
``kill`` (backend dead until restarted), ``hang`` (request stalls, then
fails), ``slow`` (response delayed, then served), ``partition``
(transport errors for a bounded window).  Campaigns are deterministic:
the fault plan, the victim choice, and the request set all derive from
the seed.

``repro fleet chaos`` and ``tests/resilience/test_fleet_chaos.py`` both
run through here, so the CLI and CI enforce the same contract.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import ReproError, ServiceError
from .breaker import BREAKER_CLOSED
from .faults import FLEET_FAULT_KINDS, FaultPlan, maybe_inject

__all__ = [
    "ChaosBackend",
    "FleetChaosCell",
    "FleetChaosResult",
    "run_fleet_chaos_campaign",
    "run_fleet_chaos_matrix",
]

#: Outcome classes that count as resilient fleet behavior.
GOOD_OUTCOMES = ("healed",)

#: Structured control-plane events each fired fault kind must leave in
#: the event log (:mod:`repro.observability.events`).  A fault the
#: fleet absorbed *silently* is its own failure class: the operator's
#: event feed (``repro fleet events``) would have shown nothing while
#: requests were being rerouted.  ``slow`` injects latency but no
#: failure, so no control-plane transition is expected.
CAMPAIGN_EXPECTED_EVENTS: Dict[str, tuple] = {
    "kill": ("reroute",),
    "hang": ("reroute",),
    "partition": ("reroute",),
    "slow": (),
}


class ChaosBackend:
    """A fleet member that injects transport faults on dispatch.

    Wraps any :class:`~repro.service.fleet.Backend`; every ``compile``
    consults :func:`~repro.resilience.faults.maybe_inject` with the
    ``"fleet"`` stage, so the active :class:`FaultPlan` decides
    deterministically which invocation misbehaves and how:

    ========== =====================================================
    kind        effect on the firing invocation
    ========== =====================================================
    kill        backend enters a killed state (every later dispatch
                and probe fails) until :meth:`restart`
    hang        stalls ``hang_s`` seconds, then fails in transport
    slow        stalls ``slow_s`` seconds, then serves correctly
    partition   fails in transport (the spec's ``times`` window
                models the partition's duration)
    ========== =====================================================

    The router-facing liveness contract matches
    :class:`~repro.service.fleet.HttpBackend`: ``mark_dead`` is a
    router-side flag the prober can clear again, while ``probe`` asks
    the *backend* (failing while killed), which is exactly what makes
    post-restart readmission observable.
    """

    def __init__(
        self,
        inner: Any,
        hang_s: float = 0.2,
        slow_s: float = 0.05,
    ) -> None:
        self.inner = inner
        self.name = inner.name
        self.hang_s = hang_s
        self.slow_s = slow_s
        self._killed = False
        self._dead = False
        #: Dispatches served *after* the most recent :meth:`restart` —
        #: the campaign's "victim serves traffic again" evidence.
        self.served_since_restart = 0

    # -- fault application ----------------------------------------------

    def compile(self, request):
        spec = maybe_inject("fleet")
        if spec is not None:
            if spec.kind == "kill":
                self._killed = True
            elif spec.kind == "hang":
                time.sleep(self.hang_s)
                raise ServiceError(
                    f"injected hang on backend {self.name}: request "
                    f"stalled {self.hang_s}s, then the connection died"
                )
            elif spec.kind == "slow":
                time.sleep(self.slow_s)
                outcome = self.inner.compile(request)
                self.served_since_restart += 1
                return outcome
            elif spec.kind == "partition":
                raise ServiceError(
                    f"injected partition: backend {self.name} is "
                    "unreachable"
                )
        if self._killed:
            raise ServiceError(
                f"backend {self.name} was killed by fault injection"
            )
        outcome = self.inner.compile(request)
        self.served_since_restart += 1
        return outcome

    # -- liveness contract ----------------------------------------------

    def alive(self) -> bool:
        return (
            not self._dead and not self._killed and self.inner.alive()
        )

    def mark_dead(self) -> None:
        self._dead = True

    def mark_alive(self) -> None:
        self._dead = False

    def probe(self) -> Dict[str, Any]:
        # Asks the backend itself (ignoring the router-side ``_dead``
        # flag) so a restarted victim passes and gets readmitted.
        if self._killed:
            raise ServiceError(
                f"backend {self.name} was killed by fault injection"
            )
        return self.inner.probe()

    def restart(self) -> None:
        """Heal the victim: the killed state clears, counters reset."""
        self._killed = False
        self.served_since_restart = 0

    def close(self) -> None:
        self.inner.close()


@dataclass
class FleetChaosCell:
    """Outcome of one fleet chaos campaign (one fault kind)."""

    kind: str
    outcome: str
    detail: str = ""
    fired: bool = False
    #: Tickets that never resolved (or resolved with an error) across
    #: all three waves.  The campaign's core invariant: always 0.
    lost: int = 0
    requests: int = 0
    #: Did the prober readmit the victim after the heal (breaker closed
    #: AND liveness restored), within the readmission budget?
    readmitted: bool = False
    #: Requests the victim served after its restart.
    victim_served_after_heal: int = 0
    reroutes: int = 0
    p99_ms: float = 0.0
    p99_bound_ms: float = 0.0
    #: Structured events the campaign left in the process event log,
    #: counted by kind (only events emitted after the campaign began).
    events: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.outcome in GOOD_OUTCOMES

    def describe(self) -> str:
        mark = "ok " if self.ok else "BAD"
        line = (
            f"[{mark}] fleet/{self.kind:<9} -> {self.outcome} "
            f"(lost {self.lost}/{self.requests}, "
            f"readmitted={self.readmitted}, "
            f"victim_served_after_heal={self.victim_served_after_heal}, "
            f"p99 {self.p99_ms:.1f}ms <= {self.p99_bound_ms:.0f}ms)"
        )
        if self.detail:
            line += f" ({self.detail})"
        return line

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "outcome": self.outcome,
            "detail": self.detail,
            "fired": self.fired,
            "lost": self.lost,
            "requests": self.requests,
            "readmitted": self.readmitted,
            "victim_served_after_heal": self.victim_served_after_heal,
            "reroutes": self.reroutes,
            "p99_ms": self.p99_ms,
            "p99_bound_ms": self.p99_bound_ms,
            "events": dict(self.events),
        }


@dataclass
class FleetChaosResult:
    """All campaigns of one fleet chaos run."""

    cells: List[FleetChaosCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    def describe(self) -> str:
        lines = [
            f"fleet chaos: {len(self.cells)} campaign(s), "
            f"{sum(1 for c in self.cells if not c.ok)} violation(s)"
        ]
        lines.extend(f"  {cell.describe()}" for cell in self.cells)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "cells": [cell.to_dict() for cell in self.cells],
        }


def _fake_compile_fn(request, digest):
    """Instant artifacts: fleet chaos tests routing, not the pipeline."""
    from ..service.store import CompileArtifact

    return CompileArtifact(
        digest=digest,
        program="fleet-chaos",
        strategy=request.strategy,
        device="Tesla K20c",
        cost={"total_us": 1.0, "kernels": []},
    )


def _requests_for_shard(
    router, victim: str, count: int, base: int, aim_at_victim: bool = True
):
    """``count`` distinct requests whose ring primary is (not) the victim.

    Aiming the fault wave at the victim's shard is what guarantees the
    injected fault actually fires; sizes walk deterministically from
    ``base`` so a seed reproduces the exact same request set.
    """
    from ..service.api import CompileRequest

    picked = []
    candidate = base
    while len(picked) < count:
        request = CompileRequest(
            app="sumRows", sizes={"R": 64 + 32 * candidate, "C": 32}
        )
        primary = router.ring.node_for(request.digest())
        if (primary == victim) == aim_at_victim:
            picked.append(request)
        candidate += 1
        if candidate - base > 200 * count:  # pragma: no cover - safety
            raise ServiceError(
                f"could not aim {count} requests at shard {victim!r}"
            )
    return picked


def _run_wave(router, requests, timeout_s: float):
    """Submit a wave; every ticket must resolve.  Returns outcomes."""
    tickets = router.submit_many(requests)
    outcomes = []
    for ticket in tickets:
        try:
            outcomes.append(ticket.wait(timeout=timeout_s))
        except Exception as exc:  # timeout = a lost ticket, the bug class
            outcomes.append(exc)
    return outcomes


def run_fleet_chaos_campaign(
    kind: str,
    seed: int = 0,
    backends: int = 3,
    wave: int = 6,
    hang_s: float = 0.2,
    slow_s: float = 0.05,
    partition_width: int = 3,
    readmit_timeout_s: float = 10.0,
    wave_timeout_s: float = 60.0,
    p99_bound_ms: float = 5000.0,
) -> FleetChaosCell:
    """One fault kind, one full baseline → fault → heal campaign."""
    from ..service.fleet import FleetConfig, FleetRouter, LocalBackend
    from ..service.service import CompileService, ServiceConfig
    from .faults import inject_faults

    if kind not in FLEET_FAULT_KINDS:
        raise ServiceError(
            f"unknown fleet fault kind {kind!r}; "
            f"known: {', '.join(FLEET_FAULT_KINDS)}"
        )

    from ..observability import get_event_log

    # Campaign events are the log entries with seq >= this mark; the
    # log is process-global, so presence (never absence) is asserted.
    event_log = get_event_log()
    start_seq = event_log.snapshot()["next_seq"]

    members: List[Any] = [
        LocalBackend(
            f"backend-{i}",
            CompileService(
                ServiceConfig(cache_dir=None, memo_persistence=False),
                compile_fn=_fake_compile_fn,
            ),
        )
        for i in range(backends)
    ]
    victim_index = seed % backends
    victim = ChaosBackend(
        members[victim_index], hang_s=hang_s, slow_s=slow_s
    )
    members[victim_index] = victim
    # Tight prober/breaker settings so readmission is observable within
    # the campaign, and caches off so every request exercises dispatch.
    router = FleetRouter(
        members,
        FleetConfig(
            lru_capacity=0,
            retries=backends + 1,
            backoff_base_s=0.001,
            backoff_max_s=0.01,
            probe_interval_s=0.05,
            breaker_failure_threshold=2,
            breaker_reset_timeout_s=0.05,
        ),
        owns_backends=True,
    )
    # ``kill`` fires once and the killed state persists; ``partition``
    # and ``hang``/``slow`` fire for a bounded window of dispatches.
    times = {
        "kill": 1,
        "hang": 1,
        "slow": max(1, wave // 2),
        "partition": partition_width,
    }[kind]
    plan = FaultPlan.single("fleet", kind, at=1, times=times)

    lost = 0
    total = 0
    try:
        base_wave = _requests_for_shard(
            router, victim.name, wave, base=1000 * seed
        )
        baseline = _run_wave(router, base_wave, wave_timeout_s)
        total += len(baseline)
        lost += sum(
            1
            for o in baseline
            if isinstance(o, Exception) or not o.ok
        )
        if lost:
            return FleetChaosCell(
                kind=kind,
                outcome="baseline-failed",
                detail=f"{lost} baseline request(s) failed before any "
                "fault was installed",
                lost=lost,
                requests=total,
            )

        fault_wave = _requests_for_shard(
            router, victim.name, wave, base=1000 * seed + 300
        )
        with inject_faults(plan):
            faulted = _run_wave(router, fault_wave, wave_timeout_s)
        total += len(faulted)
        fault_lost = sum(
            1
            for o in faulted
            if isinstance(o, Exception) or not o.ok
        )
        lost += fault_lost
        if fault_lost:
            detail = "; ".join(
                str(o) if isinstance(o, Exception) else o.error.message
                for o in faulted
                if isinstance(o, Exception) or not o.ok
            )
            return FleetChaosCell(
                kind=kind,
                outcome="lost-tickets",
                detail=detail[:500],
                fired=bool(plan.fired),
                lost=lost,
                requests=total,
            )

        # Heal, then wait for the prober to readmit the victim: breaker
        # reclosed AND the liveness flag restored, with zero operator
        # action beyond the restart itself.
        victim.restart()
        readmitted = False
        deadline = time.monotonic() + readmit_timeout_s
        while time.monotonic() < deadline:
            stats = router.stats()
            entry = stats["backends"][victim.name]
            if (
                entry["alive"]
                and entry["breaker"]["state"] == BREAKER_CLOSED
            ):
                readmitted = True
                break
            time.sleep(0.02)

        heal_wave = _requests_for_shard(
            router, victim.name, wave, base=1000 * seed + 600
        )
        healed = _run_wave(router, heal_wave, wave_timeout_s)
        total += len(healed)
        heal_lost = sum(
            1
            for o in healed
            if isinstance(o, Exception) or not o.ok
        )
        lost += heal_lost

        stats = router.stats()
        p99_ms = stats["latency_ms"]["p99"]
        campaign_events = event_log.snapshot(since=start_seq - 1)["events"]
        events_by_kind: Dict[str, int] = {}
        for event in campaign_events:
            events_by_kind[event["kind"]] = (
                events_by_kind.get(event["kind"], 0) + 1
            )
        cell = FleetChaosCell(
            kind=kind,
            outcome="healed",
            fired=bool(plan.fired),
            lost=lost,
            requests=total,
            readmitted=readmitted,
            victim_served_after_heal=victim.served_since_restart,
            reroutes=stats["reroutes"],
            p99_ms=p99_ms,
            p99_bound_ms=p99_bound_ms,
            events=events_by_kind,
        )
        if heal_lost:
            cell.outcome = "lost-tickets"
            cell.detail = f"{heal_lost} request(s) failed after the heal"
        elif not plan.fired:
            cell.outcome = "fault-never-fired"
            cell.detail = (
                "the fault wave never reached the victim's shard"
            )
        elif not readmitted:
            cell.outcome = "not-readmitted"
            cell.detail = (
                f"victim not readmitted within {readmit_timeout_s}s "
                f"of its restart (breaker "
                f"{stats['backends'][victim.name]['breaker']['state']})"
            )
        elif victim.served_since_restart < 1:
            cell.outcome = "victim-idle"
            cell.detail = (
                "victim was readmitted but served nothing post-heal"
            )
        elif p99_ms > p99_bound_ms:
            cell.outcome = "unbounded-p99"
            cell.detail = (
                f"p99 {p99_ms:.1f}ms exceeds the {p99_bound_ms:.0f}ms "
                "bound"
            )
        else:
            missing_events = [
                expected
                for expected in CAMPAIGN_EXPECTED_EVENTS[kind]
                if expected not in events_by_kind
            ]
            if missing_events:
                cell.outcome = "no-events"
                cell.detail = (
                    "fault fired but the structured event log recorded "
                    f"no {'/'.join(missing_events)} event(s) — the "
                    "reroute happened silently"
                )
        return cell
    except ReproError as exc:
        return FleetChaosCell(
            kind=kind,
            outcome="untyped-crash",
            detail=f"{type(exc).__name__}: {exc}",
            fired=bool(plan.fired),
            lost=lost,
            requests=total,
        )
    finally:
        router.close()


def run_fleet_chaos_matrix(
    kinds: Optional[Sequence[str]] = None,
    seed: int = 0,
    wave: int = 6,
    progress: Optional[Callable[[str], None]] = None,
    out_dir: Optional[str] = None,
    **campaign_kwargs: Any,
) -> FleetChaosResult:
    """Run every fleet fault kind (or a chosen subset) as a campaign.

    ``out_dir`` mirrors the pipeline chaos harness: each failing
    campaign writes a JSON report (``fleet-chaos-<kind>.json``) CI can
    upload as an artifact.
    """
    result = FleetChaosResult()
    for kind in kinds or FLEET_FAULT_KINDS:
        cell = run_fleet_chaos_campaign(
            kind, seed=seed, wave=wave, **campaign_kwargs
        )
        result.cells.append(cell)
        if progress:
            progress(cell.describe())
        if out_dir and not cell.ok:
            os.makedirs(out_dir, exist_ok=True)
            path = os.path.join(out_dir, f"fleet-chaos-{kind}.json")
            with open(path, "w") as handle:
                json.dump(cell.to_dict(), handle, indent=2)
    return result
