"""The chaos harness: drive the fault matrix through the full pipeline.

For every valid (stage, fault-kind) pair — or a caller-chosen subset —
this installs a single-fault plan, pushes a program through compile →
functional run → cost estimation, and classifies the outcome:

* ``degraded`` — the pipeline absorbed the fault and completed; the
  result still matches the reference interpreter bit-for-bit and every
  chosen mapping satisfies its hard constraints;
* ``typed-error`` — a :class:`~repro.errors.ReproError` escaped, carrying
  a replayable :class:`~repro.resilience.reports.FailureReport`;
* ``ok`` — the fault never triggered (a stage the pipeline legitimately
  skipped);
* anything else — ``untyped-crash``, ``wrong-result``, or a typed error
  *without* a report — is a resilience bug, and fails the matrix.

``repro chaos`` and ``tests/resilience/test_chaos_matrix.py`` both run
through here, so the CLI and CI enforce the same contract.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import ReproError
from .faults import FAULT_MATRIX, FaultPlan, inject_faults
from .reports import FailureReport, write_failure_report

__all__ = ["ChaosCell", "ChaosMatrixResult", "run_chaos_matrix"]

#: Outcome classes that count as resilient behavior.
GOOD_OUTCOMES = ("degraded", "typed-error", "ok")


@dataclass
class ChaosCell:
    """Outcome of one (stage, kind) fault-injection run."""

    stage: str
    kind: str
    outcome: str
    detail: str = ""
    fired: bool = False
    report: Optional[FailureReport] = None
    artifact_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.outcome in GOOD_OUTCOMES

    def describe(self) -> str:
        mark = "ok " if self.ok else "BAD"
        line = (
            f"[{mark}] {self.stage:<11} {self.kind:<9} -> {self.outcome}"
        )
        if self.detail:
            line += f" ({self.detail})"
        if self.artifact_path:
            line += f" [report: {self.artifact_path}]"
        return line


@dataclass
class ChaosMatrixResult:
    """All cells of one chaos run."""

    cells: List[ChaosCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    def describe(self) -> str:
        lines = [
            f"chaos matrix: {len(self.cells)} cell(s), "
            f"{sum(1 for c in self.cells if not c.ok)} violation(s)"
        ]
        lines.extend(f"  {cell.describe()}" for cell in self.cells)
        return "\n".join(lines)


def _feasible_everywhere(compiled) -> Optional[str]:
    """None when every kernel mapping is hard-feasible, else a message."""
    from ..analysis.scoring import hard_feasible

    for index, decision in enumerate(compiled.decisions):
        if not hard_feasible(
            decision.mapping,
            decision.analysis.constraints,
            decision.analysis.level_sizes(),
        ):
            return (
                f"kernel {index} mapping {decision.mapping} violates a "
                "hard constraint"
            )
    return None


def run_chaos_cell(
    program,
    stage: str,
    kind: str,
    expected,
    expected_inputs,
    inputs,
    seed: int = 0,
    strategy: str = "multidim",
    out_dir: Optional[str] = None,
    artifact_index: int = 0,
) -> ChaosCell:
    """Run the pipeline once under a single injected fault and classify."""
    from ..difftest.oracle import results_equal
    from ..runtime.session import GpuSession

    plan = FaultPlan.single(stage, kind)
    try:
        with inject_faults(plan):
            session = GpuSession(strategy=strategy)
            compiled = session.compile(program)
            run_inputs = copy.deepcopy(inputs)
            result = compiled.run(seed=seed, **run_inputs)
            compiled.estimate_cost(check=True)
    except ReproError as exc:
        report = getattr(exc, "failure_report", None)
        cell = ChaosCell(
            stage=stage,
            kind=kind,
            outcome="typed-error" if report is not None else "unreported-error",
            detail=f"{type(exc).__name__}: {exc}",
            fired=bool(plan.fired),
            report=report,
        )
        if report is not None and out_dir:
            cell.artifact_path = write_failure_report(
                report, out_dir, artifact_index
            )
        return cell
    except Exception as exc:  # the exact failure mode chaos exists to catch
        return ChaosCell(
            stage=stage,
            kind=kind,
            outcome="untyped-crash",
            detail=f"{type(exc).__name__}: {exc}",
            fired=bool(plan.fired),
        )

    infeasible = _feasible_everywhere(compiled)
    if infeasible:
        return ChaosCell(
            stage=stage, kind=kind, outcome="infeasible-mapping",
            detail=infeasible, fired=bool(plan.fired),
        )
    if not results_equal(expected, result, exact=True):
        return ChaosCell(
            stage=stage, kind=kind, outcome="wrong-result",
            detail="result differs from the reference interpreter",
            fired=bool(plan.fired),
        )
    if not results_equal(expected_inputs, run_inputs, exact=True):
        return ChaosCell(
            stage=stage, kind=kind, outcome="wrong-result",
            detail="input mutation differs from the reference interpreter",
            fired=bool(plan.fired),
        )
    if not plan.fired:
        return ChaosCell(
            stage=stage, kind=kind, outcome="ok",
            detail="fault never triggered", fired=False,
        )
    degradations = "; ".join(compiled.degradations)
    return ChaosCell(
        stage=stage, kind=kind, outcome="degraded",
        detail=degradations or "pipeline absorbed the fault",
        fired=True,
    )


def run_chaos_matrix(
    program,
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    seed: int = 0,
    strategy: str = "multidim",
    out_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    sizes: Optional[dict] = None,
) -> ChaosMatrixResult:
    """Run every (stage, kind) pair against one program.

    The reference result comes from the loop interpreter with no faults
    installed; a warm-up compile populates the search memo so the memo
    corruption/staleness cells exercise a real cache hit.  ``sizes``
    overrides the program's size hints (chaos coverage does not need
    production shapes, and the reference interpreter is a scalar loop).
    """
    import dataclasses

    from ..difftest.oracle import make_inputs
    from ..interp.evaluator import run_program
    from ..runtime.session import GpuSession

    if sizes:
        program = dataclasses.replace(
            program, size_hints={**(program.size_hints or {}), **sizes}
        )
    # The reference is the fault-free vectorized evaluator — the same
    # engine ``CompiledProgram.run`` uses, so a surviving pipeline must
    # reproduce it bit-for-bit (the scalar-vs-vectorized tolerance
    # question belongs to the difftest oracle, not to chaos).
    inputs = make_inputs(program, seed=seed)
    ref_inputs = copy.deepcopy(inputs)
    expected = run_program(program, seed=seed, **ref_inputs)

    # Warm-up: populate the cross-sweep memo (no faults installed).
    GpuSession(strategy=strategy).compile(program)

    result = ChaosMatrixResult()
    for stage, kind in pairs or FAULT_MATRIX:
        cell = run_chaos_cell(
            program, stage, kind, expected, ref_inputs, inputs,
            seed=seed, strategy=strategy, out_dir=out_dir,
            artifact_index=len(result.cells),
        )
        result.cells.append(cell)
        if progress:
            progress(cell.describe())
    return result
