"""Per-backend circuit breaker for the fleet's self-healing membership.

The breaker is a three-state machine guarding dispatch to one backend:

``closed``
    Healthy.  Requests flow; consecutive failures are counted and reset
    on any success.  ``failure_threshold`` consecutive failures trip the
    breaker open.
``open``
    Unhealthy.  The backend is demoted to last resort in the routing
    order.  After ``reset_timeout_s`` the breaker becomes eligible for a
    single half-open probe.
``half-open``
    One probe in flight (the background prober's health check, or a
    last-resort dispatch).  Success closes the breaker — the backend is
    readmitted — while failure re-opens it and restarts the reset clock.

The clock is injectable so state transitions can be tested with a fake
clock and zero sleeps; production uses ``time.monotonic``.  All methods
are thread-safe: the router's dispatchers, the hedge threads, and the
background prober all record into the same breaker.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from ..config import (
    DEFAULT_BREAKER_FAILURE_THRESHOLD,
    DEFAULT_BREAKER_RESET_TIMEOUT_S,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "BREAKER_STATE_CODES",
    "CircuitBreaker",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

#: Numeric encoding for the breaker-state gauge (metrics can only carry
#: numbers): closed=0, half-open=1, open=2 — "bigger is worse".
BREAKER_STATE_CODES: Dict[str, int] = {
    BREAKER_CLOSED: 0,
    BREAKER_HALF_OPEN: 1,
    BREAKER_OPEN: 2,
}


class CircuitBreaker:
    def __init__(
        self,
        failure_threshold: int = DEFAULT_BREAKER_FAILURE_THRESHOLD,
        reset_timeout_s: float = DEFAULT_BREAKER_RESET_TIMEOUT_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        # Lifetime transition counters, surfaced in stats.
        self._opened_count = 0
        self._closed_count = 0

    # -- inspection (non-mutating) ------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    @property
    def opened_count(self) -> int:
        with self._lock:
            return self._opened_count

    def available(self) -> bool:
        """Whether dispatch should prefer this backend.

        Closed and half-open breakers are available; an open breaker
        becomes available again once its reset timeout has elapsed (the
        next request or probe acts as the half-open trial).  Purely an
        ordering hint — the router still uses open backends as a last
        resort, and every outcome is recorded either way.
        """
        with self._lock:
            if self._state != BREAKER_OPEN:
                return True
            return self._reset_elapsed_locked()

    def _reset_elapsed_locked(self) -> bool:
        if self._opened_at is None:
            return True
        return self._clock() - self._opened_at >= self.reset_timeout_s

    # -- transitions ---------------------------------------------------

    def begin_probe(self) -> bool:
        """Move an open breaker whose reset timeout has elapsed into
        half-open, reserving the single trial.  Returns True when the
        caller holds the probe slot (also for already-half-open), False
        when the breaker is closed (no probe needed) or still cooling
        down."""
        with self._lock:
            if self._state == BREAKER_HALF_OPEN:
                return True
            if self._state == BREAKER_OPEN and self._reset_elapsed_locked():
                self._state = BREAKER_HALF_OPEN
                return True
            return False

    def record_success(self) -> bool:
        """Record a successful request or probe.  Returns True when this
        success *closed* a non-closed breaker (i.e. the backend was just
        readmitted)."""
        with self._lock:
            readmitted = self._state != BREAKER_CLOSED
            self._state = BREAKER_CLOSED
            self._consecutive_failures = 0
            self._opened_at = None
            if readmitted:
                self._closed_count += 1
            return readmitted

    def record_failure(self) -> bool:
        """Record a failed request or probe.  Returns True when this
        failure *opened* the breaker (tripped from closed, or re-opened
        a half-open trial)."""
        with self._lock:
            now = self._clock()
            if self._state == BREAKER_HALF_OPEN:
                self._state = BREAKER_OPEN
                self._opened_at = now
                self._opened_count += 1
                return True
            if self._state == BREAKER_OPEN:
                # Still failing while open: restart the reset clock so
                # probes back off instead of hammering a down backend.
                self._opened_at = now
                return False
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._state = BREAKER_OPEN
                self._opened_at = now
                self._opened_count += 1
                return True
            return False

    # -- reporting -----------------------------------------------------

    def describe(self) -> Dict[str, object]:
        with self._lock:
            age = (
                None
                if self._opened_at is None
                else max(0.0, self._clock() - self._opened_at)
            )
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "opened_count": self._opened_count,
                "closed_count": self._closed_count,
                "open_age_s": age,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self.consecutive_failures})"
        )
