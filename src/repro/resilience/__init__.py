"""Resilience subsystem: budgets, fallbacks, fault injection, replayable
failure reports, and retry/checkpoint helpers.

The compilation pipeline (analysis → search → optimization → codegen →
simulation/execution) is wrapped so that a failed or over-budget stage
costs one request a slower mapping — the conservative fallback — or a
typed :class:`~repro.errors.ReproError` carrying a replayable
:class:`FailureReport`, never a bare traceback or a silently wrong
result.  ``docs/robustness.md`` is the design document; the chaos matrix
(``repro chaos``, ``tests/resilience/``) is the enforcement.
"""

from .breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BREAKER_STATE_CODES,
    CircuitBreaker,
)
from .budget import Budget, BudgetExhaustedError
from .chaos import ChaosCell, ChaosMatrixResult, run_chaos_matrix
from .fallback import FALLBACK_OUTER_BLOCK, conservative_fallback_mapping
from .faults import (
    FAULT_MATRIX,
    FLEET_FAULT_KINDS,
    FLEET_FAULT_MATRIX,
    KINDS,
    PIPELINE_STAGES,
    STAGES,
    FaultPlan,
    FaultSpec,
    active_plan,
    inject_faults,
    maybe_inject,
)

# NOTE: ``repro.resilience.fleet_chaos`` (ChaosBackend, the fleet chaos
# campaign) is deliberately not imported here — it depends on
# ``repro.service``, which itself imports this package.  Import it
# directly: ``from repro.resilience.fleet_chaos import ...``.
from .reports import (
    FailureReport,
    ReplayOutcome,
    attach_report,
    build_report,
    load_failure_report,
    replay_failure_report,
    write_failure_report,
)
from .retry import Checkpoint, backoff_delays, retry_with_backoff

__all__ = [
    "Budget",
    "BudgetExhaustedError",
    "ChaosCell",
    "ChaosMatrixResult",
    "run_chaos_matrix",
    "FALLBACK_OUTER_BLOCK",
    "conservative_fallback_mapping",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BREAKER_STATE_CODES",
    "CircuitBreaker",
    "FAULT_MATRIX",
    "FLEET_FAULT_KINDS",
    "FLEET_FAULT_MATRIX",
    "KINDS",
    "PIPELINE_STAGES",
    "STAGES",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "inject_faults",
    "maybe_inject",
    "FailureReport",
    "ReplayOutcome",
    "attach_report",
    "build_report",
    "load_failure_report",
    "replay_failure_report",
    "write_failure_report",
    "Checkpoint",
    "backoff_delays",
    "retry_with_backoff",
]
