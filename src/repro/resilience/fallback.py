"""The guaranteed-feasible conservative fallback mapping.

When the mapping search exhausts its budget (or dies on an injected
fault), the pipeline degrades to this mapping instead of raising: the
outermost level gets ``Span(all)`` on dimension x, every inner level gets
``Span(1)`` on the next free dimension with block size 1, any level under
a hard ``Span(all)`` requirement gets ``Span(all)`` regardless, and
``ControlDOP`` clamps the result into the device window.  That shape is
feasible for every constraint set the analysis generates (the only hard
constraints are ``SpanAllRequired``, which ``Span(all)`` satisfies by
construction), slow but correct — one request pays with a slower mapping,
not a traceback.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.constraints import ConstraintSet
from ..analysis.dop import DopWindow, control_dop
from ..analysis.mapping import (
    DIM_MAX_THREADS,
    Dim,
    LevelMapping,
    Mapping,
    Span,
    SpanAll,
)
from ..analysis.scoring import hard_feasible, score_mapping
from ..config import MAX_BLOCK_SIZE, WARP_SIZE
from ..errors import SearchError

__all__ = ["conservative_fallback_mapping", "FALLBACK_OUTER_BLOCK"]

#: Outer-level block size of the fallback: a warp multiple (coalescing,
#: occupancy) that leaves headroom under every per-dimension cap.
FALLBACK_OUTER_BLOCK = 8 * WARP_SIZE


def conservative_fallback_mapping(
    num_levels: int,
    cset: ConstraintSet,
    sizes: Sequence[int],
    window: Optional[DopWindow] = None,
) -> Mapping:
    """Build the conservative fallback mapping for one kernel nest.

    Raises :class:`~repro.errors.SearchError` only when even this shape
    violates a hard constraint (an opaque constraint no conservative
    choice can satisfy) — the same error an exhausted exhaustive search
    would have raised.
    """
    if num_levels < 1:
        raise SearchError("fallback mapping needs at least one level")
    if num_levels > len(Dim):
        raise SearchError(
            f"nest depth {num_levels} exceeds the {len(Dim)} logical "
            "dimensions"
        )
    if window is None:
        window = DopWindow()
    sizes_t = tuple(sizes)
    if len(sizes_t) != num_levels:
        raise SearchError(
            f"expected {num_levels} level sizes, got {len(sizes_t)}"
        )

    span_all = cset.span_all_levels()
    dims = list(Dim)[:num_levels]
    outer_block = min(
        FALLBACK_OUTER_BLOCK, DIM_MAX_THREADS[Dim.X], MAX_BLOCK_SIZE
    )

    levels = []
    for level, dim in enumerate(dims):
        block = outer_block if level == 0 else 1
        if level == 0 or level in span_all:
            span = SpanAll()
        else:
            span = Span(1)
        levels.append(LevelMapping(dim, block, span))
    mapping = Mapping(tuple(levels))

    if not hard_feasible(mapping, cset, sizes_t):
        # Second attempt: all-Span(all), block 1 everywhere but level 0 —
        # the most conservative shape expressible in the parameter space.
        mapping = Mapping(
            tuple(
                LevelMapping(dim, outer_block if level == 0 else 1, SpanAll())
                for level, dim in enumerate(dims)
            )
        )
        if not hard_feasible(mapping, cset, sizes_t):
            raise SearchError(
                "no feasible mapping satisfies the hard constraints "
                "(even the conservative fallback is infeasible)"
            )

    return control_dop(mapping, sizes_t, window, cset.span_all_levels())


def fallback_score(
    mapping: Mapping, cset: ConstraintSet, sizes: Sequence[int]
) -> float:
    """Score of a fallback mapping (0.0 if scoring itself fails)."""
    score = score_mapping(mapping, cset, tuple(sizes))
    return 0.0 if score is None else score
