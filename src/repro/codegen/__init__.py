"""CUDA code generation (Section IV-E of the paper)."""

from .compiler import CompiledModule, compile_program  # noqa: F401
from .host import generate_host_driver  # noqa: F401
from .exprs import ArrayInfo, CodegenContext, c_type, lower_expr  # noqa: F401
from .kernels import (  # noqa: F401
    CompiledKernel,
    KernelGenerator,
    LaunchConfig,
    device_function_preamble,
)
from .writer import SourceWriter  # noqa: F401
