"""Host-side driver generation: a complete, compilable CUDA translation
unit.

The kernel generator emits ``__global__`` functions; this module wraps a
:class:`~repro.codegen.compiler.CompiledModule` with the host code a CUDA
programmer would write by hand — device allocations, input copies, launch
configuration (from the mapping decision), combiner launches for
``Split(k)`` mappings, and result copy-back — so the artifact of a
compilation is a self-contained ``.cu`` file.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.shapes import SizeEnv
from ..gpusim.cost import runtime_level_sizes
from ..ir.patterns import Program
from ..ir.types import ArrayType, ScalarType, StructType
from .compiler import CompiledModule
from .exprs import c_type
from .kernels import CompiledKernel
from .writer import SourceWriter


def generate_host_driver(
    module: CompiledModule,
    sizes: Optional[Dict[str, int]] = None,
) -> str:
    """Emit a ``main()`` that allocates, copies, launches, and verifies.

    ``sizes`` bind the program's size parameters to concrete values for
    buffer extents and launch geometry; unbound sizes fall back to the
    program's hints (or 1024).
    """
    program = module.program
    env = SizeEnv.for_program(program, **(sizes or {}))
    w = SourceWriter()

    w.line("#include <cstdio>")
    w.line("#include <cstdlib>")
    w.line("#include <cuda_runtime.h>")
    w.line("")
    w.line("#define CUDA_CHECK(call) do { \\")
    w.line("    cudaError_t err__ = (call); \\")
    w.line("    if (err__ != cudaSuccess) { \\")
    w.line('        fprintf(stderr, "CUDA error %s at %s:%d\\n", \\')
    w.line("                cudaGetErrorString(err__), __FILE__, __LINE__); \\")
    w.line("        exit(1); \\")
    w.line("    } \\")
    w.line("} while (0)")
    w.line("")

    w.open("int main()")
    _emit_size_bindings(w, program, env)
    host_arrays = _emit_host_buffers(w, program, env)
    _emit_device_buffers(w, program, env, host_arrays)

    for kernel in module.kernels:
        _emit_launch(w, kernel, program, env)

    _emit_copy_back(w, module, env)
    w.line("")
    w.line('printf("done\\n");')
    w.line("return 0;")
    w.close()

    return module.source + "\n" + w.text()


def _size_value(env: SizeEnv, name: str) -> int:
    return int(env.values.get(name, env.default))


def _emit_size_bindings(w: SourceWriter, program: Program, env: SizeEnv) -> None:
    w.line("// size parameters")
    for param in program.params:
        if isinstance(param.ty, ScalarType) and param.ty.is_integer:
            w.line(
                f"long long {param.name} = {_size_value(env, param.name)};"
            )
    w.line("")


def _array_elems(program: Program, env: SizeEnv, key: str) -> int:
    shape = env.array_shapes.get(key)
    if shape is None:
        return env.default
    total = 1
    for extent in shape:
        total *= max(1, int(extent))
    return total


def _flattened_arrays(program: Program) -> List[Tuple[str, ArrayType]]:
    """All array buffers the kernels see, struct fields flattened."""
    arrays: List[Tuple[str, ArrayType]] = []
    for param in program.params:
        if isinstance(param.ty, ArrayType):
            arrays.append((param.name, param.ty))
        elif isinstance(param.ty, StructType):
            for fname, fty in param.ty.fields:
                if isinstance(fty, ArrayType):
                    arrays.append((f"{param.name}_{fname}", fty))
    return arrays


def _struct_shape_key(name: str, program: Program) -> str:
    """Map a flattened C name back to the builder's shape-registry key."""
    for param in program.params:
        if isinstance(param.ty, StructType):
            prefix = f"{param.name}_"
            if name.startswith(prefix):
                return f"{param.name}.{name[len(prefix):]}"
    return name


def _emit_host_buffers(
    w: SourceWriter, program: Program, env: SizeEnv
) -> List[Tuple[str, ArrayType, int]]:
    w.line("// host inputs (zero-initialized placeholders)")
    result = []
    for name, aty in _flattened_arrays(program):
        elem = c_type(aty.elem)
        key = _struct_shape_key(name, program)
        elems = _array_elems(program, env, key)
        w.line(
            f"{elem}* h_{name} = ({elem}*)calloc({elems}, sizeof({elem}));"
        )
        result.append((name, aty, elems))
    for param in program.params:
        if isinstance(param.ty, ScalarType) and param.ty.is_float:
            w.line(f"{c_type(param.ty)} {param.name} = 0;")
    w.line("")
    return result


def _emit_device_buffers(
    w: SourceWriter,
    program: Program,
    env: SizeEnv,
    host_arrays: List[Tuple[str, ArrayType, int]],
) -> None:
    w.line("// device buffers + input copies")
    for name, aty, elems in host_arrays:
        elem = c_type(aty.elem)
        w.line(f"{elem}* d_{name} = nullptr;")
        w.line(
            f"CUDA_CHECK(cudaMalloc(&d_{name}, {elems} * sizeof({elem})));"
        )
        w.line(
            f"CUDA_CHECK(cudaMemcpy(d_{name}, h_{name}, "
            f"{elems} * sizeof({elem}), cudaMemcpyHostToDevice));"
        )
    w.line("")


def _out_elems(kernel: CompiledKernel, env: SizeEnv) -> int:
    outs = [
        s for s in kernel.analysis.accesses.sites if s.array_key == "__out__"
    ]
    if not outs:
        return env.default
    total = 1
    for extent in outs[0].shape:
        total *= max(1, int(extent))
    return total


def _emit_launch(
    w: SourceWriter,
    kernel: CompiledKernel,
    program: Program,
    env: SizeEnv,
) -> None:
    sizes = runtime_level_sizes(kernel.analysis.nest, env)
    cfg = kernel.launch_config(sizes)
    out_elems = _out_elems(kernel, env)
    out_decl = next(
        (decl for decl, name in kernel.params if name == "out"), "double*"
    )
    elem = out_decl.rstrip("*").strip()

    w.line(f"// kernel {kernel.name}: mapping {kernel.mapping}")
    w.line(f"{elem}* d_out_{kernel.name} = nullptr;")
    w.line(
        f"CUDA_CHECK(cudaMalloc(&d_out_{kernel.name}, "
        f"{out_elems} * sizeof({elem})));"
    )

    args: List[str] = []
    for decl, name in kernel.params:
        if name == "out":
            args.append(f"d_out_{kernel.name}")
        elif decl.endswith("*") and name.endswith("_buf"):
            # preallocated intermediate: size = product of level sizes
            elems = 1
            for s in sizes:
                elems *= max(1, s)
            buf_elem = decl.replace("const ", "").rstrip("*").strip()
            w.line(f"{buf_elem}* d_{name} = nullptr;")
            w.line(
                f"CUDA_CHECK(cudaMalloc(&d_{name}, "
                f"{elems} * sizeof({buf_elem})));"
            )
            args.append(f"d_{name}")
        elif name == "partials":
            total_blocks = 1
            for b in kernel.mapping.blocks_per_level(sizes):
                total_blocks *= b
            buf_elem = decl.replace("const ", "").rstrip("*").strip()
            w.line(f"{buf_elem}* d_partials_{kernel.name} = nullptr;")
            w.line(
                f"CUDA_CHECK(cudaMalloc(&d_partials_{kernel.name}, "
                f"{total_blocks * out_elems} * sizeof({buf_elem})));"
            )
            args.append(f"d_partials_{kernel.name}")
        elif name == "out_count":
            w.line(f"int* d_count_{kernel.name} = nullptr;")
            w.line(
                f"CUDA_CHECK(cudaMalloc(&d_count_{kernel.name}, sizeof(int)));"
            )
            w.line(
                f"CUDA_CHECK(cudaMemset(d_count_{kernel.name}, 0, sizeof(int)));"
            )
            args.append(f"d_count_{kernel.name}")
        elif name == "group_counts":
            w.line(f"int* d_gcounts_{kernel.name} = nullptr;")
            w.line(
                f"CUDA_CHECK(cudaMalloc(&d_gcounts_{kernel.name}, "
                f"256 * sizeof(int)));"
            )
            w.line(
                f"CUDA_CHECK(cudaMemset(d_gcounts_{kernel.name}, 0, "
                f"256 * sizeof(int)));"
            )
            args.append(f"d_gcounts_{kernel.name}")
        elif name == "max_per_group":
            args.append(str(out_elems))
        elif decl.endswith("*"):
            args.append(f"d_{name}")
        else:
            args.append(name)

    gx, gy, gz = cfg.grid
    bx, by, bz = cfg.block
    w.line(f"dim3 grid_{kernel.name}({gx}, {gy}, {gz});")
    w.line(f"dim3 block_{kernel.name}({bx}, {by}, {bz});")
    w.line(
        f"{kernel.name}<<<grid_{kernel.name}, block_{kernel.name}>>>("
        + ", ".join(args) + ");"
    )
    w.line("CUDA_CHECK(cudaGetLastError());")

    if kernel.combiner_source:
        split_k = 1
        for level, blocks in enumerate(kernel.mapping.blocks_per_level(sizes)):
            from ..analysis.mapping import Split

            if isinstance(kernel.mapping.level(level).span, Split):
                split_k *= blocks
        w.line(
            f"{kernel.name}_combine<<<({out_elems} + 255) / 256, 256>>>("
            f"d_partials_{kernel.name}, d_out_{kernel.name}, "
            f"{out_elems}, {split_k});"
        )
        w.line("CUDA_CHECK(cudaGetLastError());")
    w.line("")


def _emit_copy_back(
    w: SourceWriter, module: CompiledModule, env: SizeEnv
) -> None:
    w.line("CUDA_CHECK(cudaDeviceSynchronize());")
    for kernel in module.kernels:
        out_elems = _out_elems(kernel, env)
        out_decl = next(
            (decl for decl, name in kernel.params if name == "out"),
            "double*",
        )
        elem = out_decl.rstrip("*").strip()
        w.line(
            f"{elem}* h_out_{kernel.name} = "
            f"({elem}*)malloc({out_elems} * sizeof({elem}));"
        )
        w.line(
            f"CUDA_CHECK(cudaMemcpy(h_out_{kernel.name}, "
            f"d_out_{kernel.name}, {out_elems} * sizeof({elem}), "
            f"cudaMemcpyDeviceToHost));"
        )
