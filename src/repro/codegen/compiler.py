"""Program-level compiler: IR -> analyzed, mapped, generated CUDA module.

One kernel is generated per outermost pattern (the paper's one-to-one
mapping), each with its own mapping decision.  The module also carries the
device-function preamble and, for ``Split(k)`` mappings, combiner kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.analyzer import analyze_program
from ..analysis.mapping import Mapping
from ..errors import CodegenError
from ..ir.patterns import Program
from .kernels import CompiledKernel, KernelGenerator, device_function_preamble

Strategy = Union[str, Mapping]


@dataclass
class CompiledModule:
    """All generated kernels for one program."""

    program: Program
    kernels: List[CompiledKernel] = field(default_factory=list)
    preamble: str = ""

    @property
    def source(self) -> str:
        """The complete CUDA translation unit."""
        parts = ["#include <cfloat>", ""]
        if self.preamble:
            parts.append(self.preamble)
        for kernel in self.kernels:
            parts.append(kernel.full_source)
        return "\n".join(parts)


def compile_program(
    program: Program,
    strategy: Strategy = "multidim",
    device=None,
    prealloc: bool = True,
    layout_strides: Optional[Dict[str, Tuple[str, ...]]] = None,
    mappings: Optional[Sequence] = None,
    **sizes: int,
) -> CompiledModule:
    """Analyze, map, and generate CUDA for every kernel of a program.

    ``mappings`` (one per kernel, in analysis order) bypasses the mapping
    decision: the session passes its already-decided — possibly degraded —
    mappings so the generated module always matches the launch decisions.
    """
    from ..gpusim.device import default_device
    from ..gpusim.simulator import decide_mapping
    from ..observability import get_tracer, instrumented_stage

    tracer = get_tracer()
    with instrumented_stage("codegen", program=program.name) as scope:
        span = scope.span
        if device is None:
            device = default_device()
        pa = analyze_program(program, **sizes)
        if mappings is not None and len(mappings) != len(pa.kernels):
            raise CodegenError(
                f"expected {len(pa.kernels)} mappings, got {len(mappings)}"
            )
        module = CompiledModule(program=program)
        preambles = []
        for index, ka in enumerate(pa.kernels):
            if mappings is not None:
                mapping = mappings[index]
            else:
                mapping = decide_mapping(ka, strategy, device).mapping
            name = f"{_sanitize(program.name)}_kernel{index}"
            with tracer.span("codegen.kernel", kernel=name):
                generator = KernelGenerator(
                    ka,
                    mapping,
                    program,
                    kernel_name=name,
                    prealloc=prealloc,
                    layout_strides=layout_strides,
                )
                module.kernels.append(generator.generate())
            preamble = device_function_preamble(ka.root)
            if preamble and preamble not in preambles:
                preambles.append(preamble)
        module.preamble = "\n".join(preambles)
        span.set(kernels=len(module.kernels))
        return module


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)
