"""Program-level compiler: IR -> analyzed, mapped, generated CUDA module.

One kernel is generated per outermost pattern (the paper's one-to-one
mapping), each with its own mapping decision.  The module also carries the
device-function preamble and, for ``Split(k)`` mappings, combiner kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..analysis.analyzer import analyze_program
from ..analysis.mapping import Mapping
from ..ir.patterns import Program
from .kernels import CompiledKernel, KernelGenerator, device_function_preamble

Strategy = Union[str, Mapping]


@dataclass
class CompiledModule:
    """All generated kernels for one program."""

    program: Program
    kernels: List[CompiledKernel] = field(default_factory=list)
    preamble: str = ""

    @property
    def source(self) -> str:
        """The complete CUDA translation unit."""
        parts = ["#include <cfloat>", ""]
        if self.preamble:
            parts.append(self.preamble)
        for kernel in self.kernels:
            parts.append(kernel.full_source)
        return "\n".join(parts)


def compile_program(
    program: Program,
    strategy: Strategy = "multidim",
    device=None,
    prealloc: bool = True,
    layout_strides: Optional[Dict[str, Tuple[str, ...]]] = None,
    **sizes: int,
) -> CompiledModule:
    """Analyze, map, and generate CUDA for every kernel of a program."""
    from ..gpusim.device import default_device
    from ..gpusim.simulator import decide_mapping

    if device is None:
        device = default_device()
    pa = analyze_program(program, **sizes)
    module = CompiledModule(program=program)
    preambles = []
    for index, ka in enumerate(pa.kernels):
        decision = decide_mapping(ka, strategy, device)
        name = f"{_sanitize(program.name)}_kernel{index}"
        generator = KernelGenerator(
            ka,
            decision.mapping,
            program,
            kernel_name=name,
            prealloc=prealloc,
            layout_strides=layout_strides,
        )
        module.kernels.append(generator.generate())
        preamble = device_function_preamble(ka.root)
        if preamble and preamble not in preambles:
            preambles.append(preamble)
    module.preamble = "\n".join(preambles)
    return module


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)
