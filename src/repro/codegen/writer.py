"""Indented source writer used by the CUDA emitter."""

from __future__ import annotations

from typing import List


class SourceWriter:
    """Accumulates lines with block-structured indentation."""

    def __init__(self, indent: str = "    "):
        self._lines: List[str] = []
        self._depth = 0
        self._indent = indent

    def line(self, text: str = "") -> "SourceWriter":
        if text:
            self._lines.append(self._indent * self._depth + text)
        else:
            self._lines.append("")
        return self

    def open(self, text: str) -> "SourceWriter":
        """Emit ``text {`` and indent."""
        self.line(text + " {")
        self._depth += 1
        return self

    def close(self, suffix: str = "") -> "SourceWriter":
        """Dedent and emit ``}``."""
        self._depth -= 1
        self.line("}" + suffix)
        return self

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"
