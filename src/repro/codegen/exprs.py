"""Lowering of IR expressions to CUDA C source text.

Array accesses are linearized here: logical indices become a flat offset
using either the array's declared shape (row-major) or, for preallocated
intermediates, the offset/stride values chosen by the layout optimization
(Figure 11 of the paper) — which is exactly how the same logical access
pattern compiles to different physical access patterns per mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..errors import CodegenError
from ..ir.expr import (
    ArrayRead,
    BinOp,
    Call,
    Cast,
    Cmp,
    Const,
    Expr,
    FieldRead,
    Length,
    Param,
    RandomIndex,
    Select,
    UnOp,
    Var,
)
from ..ir.functions import FnCall
from ..ir.types import ArrayType, ScalarType

_CALL_NAMES = {
    "sqrt": "sqrt",
    "exp": "exp",
    "log": "log",
    "pow": "pow",
    "abs": "fabs",
    "floor": "floor",
    "ceil": "ceil",
    "sin": "sin",
    "cos": "cos",
    "tanh": "tanh",
}

_BIN_FUNCS = {"min": "min", "max": "max"}


@dataclass
class ArrayInfo:
    """Physical-layout facts for one array visible to a kernel."""

    #: C identifier of the base pointer.
    c_name: str
    #: Per-axis element strides as C expressions (innermost layout aware).
    strides: Tuple[str, ...]
    #: Optional constant offset expression added to every access.
    offset: str = "0"


@dataclass
class CodegenContext:
    """Name bindings and array layouts for expression lowering."""

    arrays: Dict[str, ArrayInfo] = field(default_factory=dict)
    #: Scalar renames (e.g. pattern index -> computed thread index name).
    renames: Dict[str, str] = field(default_factory=dict)
    #: Node-identity substitutions: pattern subexpressions hoisted into
    #: local variables by the kernel generator.
    substitutions: Dict[object, str] = field(default_factory=dict)

    def array_info(self, name: str) -> ArrayInfo:
        try:
            return self.arrays[name]
        except KeyError:
            raise CodegenError(f"no layout registered for array {name!r}")

    def name_of(self, name: str) -> str:
        return self.renames.get(name, name)


def c_type(ty) -> str:
    if isinstance(ty, ScalarType):
        return ty.cuda_name
    if isinstance(ty, ArrayType):
        return c_type(ty.elem) + "*"
    raise CodegenError(f"no CUDA type for {ty}")


def lower_expr(expr: Expr, ctx: CodegenContext) -> str:
    """Render an expression as CUDA C source."""
    if expr in ctx.substitutions:
        return ctx.substitutions[expr]
    if isinstance(expr, Const):
        if isinstance(expr.value, bool):
            return "true" if expr.value else "false"
        if isinstance(expr.value, float):
            text = repr(float(expr.value))
            return text if ("." in text or "e" in text) else text + ".0"
        return str(expr.value)
    if isinstance(expr, (Var, Param)):
        return ctx.name_of(expr.name)
    if isinstance(expr, BinOp):
        lhs, rhs = lower_expr(expr.lhs, ctx), lower_expr(expr.rhs, ctx)
        if expr.op in _BIN_FUNCS:
            return f"{_BIN_FUNCS[expr.op]}({lhs}, {rhs})"
        if expr.op == "//":
            return f"({lhs} / {rhs})"
        if expr.op == "/":
            return f"({lhs} / (double){rhs})" if _is_int(expr.lhs) and _is_int(
                expr.rhs
            ) else f"({lhs} / {rhs})"
        return f"({lhs} {expr.op} {rhs})"
    if isinstance(expr, UnOp):
        operand = lower_expr(expr.operand, ctx)
        return f"(!{operand})" if expr.op == "not" else f"(-{operand})"
    if isinstance(expr, Cmp):
        return f"({lower_expr(expr.lhs, ctx)} {expr.op} {lower_expr(expr.rhs, ctx)})"
    if isinstance(expr, Select):
        return (
            f"({lower_expr(expr.cond, ctx)} ? {lower_expr(expr.if_true, ctx)}"
            f" : {lower_expr(expr.if_false, ctx)})"
        )
    if isinstance(expr, Call):
        args = ", ".join(lower_expr(a, ctx) for a in expr.args)
        return f"{_CALL_NAMES[expr.fn]}({args})"
    if isinstance(expr, FnCall):
        args = ", ".join(lower_expr(a, ctx) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, Cast):
        return f"(({c_type(expr.ty)}){lower_expr(expr.operand, ctx)})"
    if isinstance(expr, ArrayRead):
        return array_ref(expr.array, expr.indices, ctx)
    if isinstance(expr, FieldRead):
        # Struct parameters are flattened into per-field kernel arguments.
        base = _struct_base(expr, ctx)
        return ctx.name_of(base)
    if isinstance(expr, Length):
        info = _array_name(expr.array)
        return ctx.name_of(f"{info}__len{expr.axis}")
    if isinstance(expr, RandomIndex):
        return f"(repro_rand() % {lower_expr(expr.size, ctx)})"
    raise CodegenError(f"cannot lower {type(expr).__name__} to CUDA")


def array_ref(array: Expr, indices: Sequence[Expr], ctx: CodegenContext) -> str:
    """Render ``array[indices...]`` as a linearized pointer access."""
    key = _array_name(array)
    info = ctx.array_info(key)
    if len(indices) > len(info.strides):
        raise CodegenError(
            f"array {key!r} has {len(info.strides)} physical axes, "
            f"access uses {len(indices)}"
        )
    # For intermediates, leading physical axes are bound to enclosing
    # pattern indices via the offset expression; the access's own indices
    # consume the trailing strides.
    strides = info.strides[len(info.strides) - len(indices):]
    terms = [info.offset] if info.offset != "0" else []
    for idx, stride in zip(indices, strides):
        idx_src = lower_expr(idx, ctx)
        terms.append(idx_src if stride == "1" else f"{idx_src} * {stride}")
    offset = " + ".join(terms) if terms else "0"
    return f"{info.c_name}[{offset}]"


def _array_name(array: Expr) -> str:
    if isinstance(array, (Var, Param)):
        return array.name
    if isinstance(array, FieldRead):
        return _struct_base(array, None)
    raise CodegenError(
        f"cannot name array expression {type(array).__name__}"
    )


def _struct_base(expr: FieldRead, ctx: Optional[CodegenContext]) -> str:
    inner = expr.struct
    if isinstance(inner, (Var, Param)):
        return f"{inner.name}_{expr.field_name}"
    if isinstance(inner, FieldRead):
        return f"{_struct_base(inner, ctx)}_{expr.field_name}"
    raise CodegenError("struct accesses must be rooted at a parameter")


def _is_int(expr: Expr) -> bool:
    return isinstance(expr.ty, ScalarType) and expr.ty.is_integer
