"""CUDA kernel generation from a nest plus a mapping decision.

The generator owns the per-pattern templates of Section IV-E: the code
structure changes with the mapping (sequential loop vs strided block loop vs
split regions; local accumulation vs shared-memory tree vs partial buffers
with a combiner kernel), not just the launch parameters.

Template selection per level span type:

========= =====================================================
Seq       ``for (i = 0; i < n; i++)`` inside each thread
Span(n)   ``for (s = 0; s < n; s++) i = blockIdx*blockDim*n + s*blockDim + threadIdx``
Span(all) ``for (i = threadIdx; i < n; i += blockDim)`` (single block per dim)
Split(k)  Span(all) over a contiguous 1/k region + combiner kernel
========= =====================================================

Reduce levels parallelized with Span(all)/Split emit the classic
shared-memory tree (cf. the paper's Figure 9); Split additionally writes
per-region partials and a combiner kernel finishes the reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.analyzer import KernelAnalysis
from ..analysis.mapping import Dim, LevelMapping, Mapping, Seq, Span, SpanAll, Split
from ..errors import CodegenError
from ..ir.expr import Alloc, Bind, Block, Expr, ExprStmt, If, Stmt, Store
from ..ir.functions import FnCall
from ..ir.patterns import (
    Filter,
    Foreach,
    GroupBy,
    Map,
    PatternExpr,
    Program,
    Reduce,
)
from ..ir.traversal import find_instances
from ..ir.types import ArrayType, ScalarType
from .exprs import ArrayInfo, CodegenContext, c_type, lower_expr
from .writer import SourceWriter

_DIM_SUFFIX = {Dim.X: "x", Dim.Y: "y", Dim.Z: "z"}

_REDUCE_C_OPS: Dict[str, Callable[[str, str], str]] = {
    "+": lambda a, b: f"{a} + {b}",
    "*": lambda a, b: f"{a} * {b}",
    "min": lambda a, b: f"min({a}, {b})",
    "max": lambda a, b: f"max({a}, {b})",
}

_REDUCE_IDENTITY = {
    "+": "0",
    "*": "1",
    "min": "CUDART_INF",
    "max": "-CUDART_INF",
}


@dataclass
class LaunchConfig:
    """Grid/block dimensions for one launch."""

    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]

    @property
    def total_threads(self) -> int:
        gx, gy, gz = self.grid
        bx, by, bz = self.block
        return gx * gy * gz * bx * by * bz


@dataclass
class CompiledKernel:
    """A generated CUDA kernel plus everything needed to launch it."""

    name: str
    source: str
    mapping: Mapping
    analysis: KernelAnalysis
    #: (C declaration, name) per kernel parameter, in signature order.
    params: List[Tuple[str, str]]
    #: Source of the combiner kernel, when the mapping uses Split(k).
    combiner_source: str = ""

    def launch_config(self, sizes: Sequence[int]) -> LaunchConfig:
        """Grid/block geometry for the given runtime level sizes."""
        mapping = self.mapping
        blocks = mapping.blocks_per_level(list(sizes))
        grid = [1, 1, 1]
        block = [1, 1, 1]
        for level, lm in enumerate(mapping.levels):
            if not lm.parallel:
                continue
            axis = min(int(lm.dim), 2)
            grid[axis] *= blocks[level]
            block[axis] *= lm.block_size
        return LaunchConfig(grid=tuple(grid), block=tuple(block))

    @property
    def full_source(self) -> str:
        parts = [self.source]
        if self.combiner_source:
            parts.append(self.combiner_source)
        return "\n".join(parts)


class KernelGenerator:
    """Generates one ``__global__`` kernel for a nest under a mapping."""

    def __init__(
        self,
        analysis: KernelAnalysis,
        mapping: Mapping,
        program: Program,
        kernel_name: str = "kernel",
        prealloc: bool = True,
        layout_strides: Optional[Dict[str, Tuple[str, ...]]] = None,
    ):
        self.analysis = analysis
        self.mapping = mapping
        self.program = program
        self.kernel_name = kernel_name
        self.prealloc = prealloc
        self.layout_strides = layout_strides or {}
        self.ctx = CodegenContext()
        self.w = SourceWriter()
        self.params: List[Tuple[str, str]] = []
        self._smem_counter = 0
        self._temp_params: List[Tuple[str, str]] = []
        self.combiner_source = ""

    # -- public ----------------------------------------------------------

    def generate(self) -> CompiledKernel:
        self._register_program_arrays()
        out_info = self._register_output()
        self._collect_params(out_info)

        sig = ", ".join(f"{decl} {name}" for decl, name in self.params)
        header = SourceWriter()
        header.line("// Mapping decision:")
        for level, lm in enumerate(self.mapping.levels):
            header.line(f"//   Level {level}: {lm}")
        header.open(f"__global__ void {self.kernel_name}({sig})")

        body = SourceWriter()
        body._depth = 1
        self.w = body
        root = self.analysis.root
        self._emit_pattern(
            root,
            level=0,
            dest=self._out_dest(out_info, []),
            out_indices=[],
        )

        source = header.text() + body.text() + "}\n"
        return CompiledKernel(
            name=self.kernel_name,
            source=source,
            mapping=self.mapping,
            analysis=self.analysis,
            params=self.params,
            combiner_source=self.combiner_source,
        )

    # -- setup -----------------------------------------------------------

    def _register_program_arrays(self) -> None:
        for param in self.program.params:
            if not isinstance(param.ty, ArrayType):
                continue
            shape_exprs = self.program.array_shapes.get(param.name)
            if shape_exprs is None:
                strides: Tuple[str, ...] = tuple(
                    "1" for _ in range(param.ty.rank)
                )
            else:
                strides = _row_major_strides(
                    [lower_expr(e, self.ctx) for e in shape_exprs]
                )
            self.ctx.arrays[param.name] = ArrayInfo(param.name, strides)

    def _register_output(self) -> ArrayInfo:
        info = ArrayInfo("out", self._output_strides())
        self.ctx.arrays["__out__"] = info
        return info

    def _output_strides(self) -> Tuple[str, ...]:
        # Output axes follow the spine of Map levels (synthetic access).
        spine = [
            s for s in self.analysis.accesses.sites if s.array_key == "__out__"
        ]
        if not spine:
            return ("1",)
        rank = len(spine[0].axis_forms)
        extents = [str(e) for e in spine[0].shape]
        return _row_major_strides(extents[:rank])

    def _collect_params(self, out_info: ArrayInfo) -> None:
        for param in self.program.params:
            if isinstance(param.ty, ArrayType):
                self.params.append(
                    (f"const {c_type(param.ty.elem)}*", param.name)
                )
            elif isinstance(param.ty, ScalarType):
                self.params.append((c_type(param.ty), param.name))
            else:
                # Struct params are flattened to per-field arguments.
                for fname, fty in param.ty.fields:
                    flat = f"{param.name}_{fname}"
                    if isinstance(fty, ArrayType):
                        self.params.append(
                            (f"const {c_type(fty.elem)}*", flat)
                        )
                        self.ctx.arrays[flat] = ArrayInfo(flat, ("1",))
                    else:
                        self.params.append((c_type(fty), flat))
        out_ty = self._output_elem_type()
        self.params.append((f"{out_ty}*", "out"))

    def _output_elem_type(self) -> str:
        node: Expr = self.analysis.root
        while isinstance(node, PatternExpr):
            body = node.body_nodes()[0] if node.body_nodes() else None
            if isinstance(node, Reduce):
                return c_type(node.body.ty)
            if isinstance(node, (Filter, GroupBy)):
                return c_type(node.value.ty) if isinstance(
                    node.value.ty, ScalarType
                ) else "double"
            if isinstance(node, Foreach):
                break  # explicit stores; the out buffer is unused
            if isinstance(body, Block):
                body = body.result
            if isinstance(body, PatternExpr):
                node = body
                continue
            if isinstance(body, Expr) and isinstance(body.ty, ScalarType):
                return c_type(body.ty)
            break
        return "double"

    # -- destinations ------------------------------------------------------

    def _out_dest(
        self, out_info: ArrayInfo, index_names: List[str]
    ) -> Callable[[str, List[str]], None]:
        def dest(value_src: str, indices: List[str]) -> None:
            strides = out_info.strides[-len(indices):] if indices else ("1",)
            terms = [
                idx if stride == "1" else f"{idx} * {stride}"
                for idx, stride in zip(indices, strides)
            ]
            offset = " + ".join(terms) if terms else "0"
            self.w.line(f"out[{offset}] = {value_src};")

        return dest

    # -- pattern emission ---------------------------------------------------

    def _emit_scalar_value(self, expr: Expr, level: int) -> str:
        """Lower a scalar expression, hoisting embedded pattern values.

        A pattern appearing mid-expression (e.g. PageRank's
        ``c + damp * reduce(...)``) is emitted first into a local variable;
        the surrounding expression then references that variable.
        """
        for pattern in _direct_patterns(expr):
            tmp = f"pv{self._smem_counter}"
            self._smem_counter += 1
            decl = c_type(pattern.ty)
            self.w.line(f"{decl} {tmp} = 0;")

            def assign(value_src: str, indices: List[str], tmp=tmp) -> None:
                self.w.line(f"{tmp} = {value_src};")

            self._emit_pattern(pattern, level + 1, assign, [], guard_dest=False)
            self.ctx.substitutions[pattern] = tmp
        return lower_expr(expr, self.ctx)

    def _emit_pattern(
        self,
        pattern: PatternExpr,
        level: int,
        dest: Callable[[str, List[str]], None],
        out_indices: List[str],
        guard_dest: bool = True,
    ) -> None:
        lm = self.mapping.level(level)
        size_src = lower_expr(pattern.size, self.ctx)
        idx = pattern.index.name

        if isinstance(pattern, Reduce):
            self._emit_reduce(
                pattern, level, lm, size_src, dest, out_indices, guard_dest
            )
            return
        if isinstance(pattern, Filter):
            self._emit_filter(pattern, level, lm, size_src)
            return
        if isinstance(pattern, GroupBy):
            self._emit_groupby(pattern, level, lm, size_src)
            return

        # Map / ZipWith / Foreach share iteration structure.
        self._open_index_loop(lm, idx, size_src)
        if isinstance(pattern, Foreach):
            for stmt in pattern.body:
                self._emit_stmt(stmt, level)
        else:
            self._emit_map_body(pattern, level, dest, out_indices + [idx])
        self._close_index_loop(lm)

    def _emit_map_body(
        self,
        pattern: Map,
        level: int,
        dest: Callable[[str, List[str]], None],
        out_indices: List[str],
    ) -> None:
        body = pattern.body
        if isinstance(body, Block):
            for stmt in body.stmts:
                self._emit_stmt(stmt, level)
            body = body.result
        if isinstance(body, PatternExpr):
            self._emit_pattern(body, level + 1, dest, out_indices)
            return
        value_src = self._emit_scalar_value(body, level)
        guards = self._inner_parallel_guards(level)
        if guards:
            self.w.open(f"if ({' && '.join(guards)})")
            dest(value_src, out_indices)
            self.w.close()
        else:
            dest(value_src, out_indices)

    # -- statements inside bodies ------------------------------------------

    def _emit_stmt(self, stmt: Stmt, level: int) -> None:
        if isinstance(stmt, Bind):
            self._emit_bind(stmt, level)
            return
        if isinstance(stmt, Store):
            from .exprs import array_ref

            target = array_ref(stmt.array, stmt.indices, self.ctx)
            value = lower_expr(stmt.value, self.ctx)
            guards = self._inner_parallel_guards(level)
            if guards:
                self.w.line(f"if ({' && '.join(guards)}) {target} = {value};")
            else:
                self.w.line(f"{target} = {value};")
            return
        if isinstance(stmt, If):
            self.w.open(f"if ({lower_expr(stmt.cond, self.ctx)})")
            for inner in stmt.then:
                self._emit_stmt(inner, level)
            if stmt.otherwise:
                self.w.close(" else {")
                self.w._depth += 1
                for inner in stmt.otherwise:
                    self._emit_stmt(inner, level)
            self.w.close()
            return
        if isinstance(stmt, ExprStmt):
            if isinstance(stmt.expr, PatternExpr):
                self._emit_pattern(
                    stmt.expr, level + 1, lambda v, i: None, []
                )
            else:
                self.w.line(f"(void)({lower_expr(stmt.expr, self.ctx)});")
            return
        raise CodegenError(f"cannot emit statement {type(stmt).__name__}")

    def _emit_bind(self, stmt: Bind, level: int) -> None:
        value = stmt.value
        name = stmt.var.name
        if isinstance(value, PatternExpr) and isinstance(value.ty, ArrayType):
            self._emit_materialized(name, value, level)
            return
        if isinstance(value, Alloc):
            self._emit_alloc(name, value, level)
            return
        decl = c_type(value.ty)
        self.w.line(f"{decl} {name} = {self._emit_scalar_value(value, level)};")

    def _emit_materialized(
        self, name: str, pattern: PatternExpr, level: int
    ) -> None:
        """A let-bound inner pattern: write its output into a buffer.

        With preallocation the buffer is a kernel parameter sized for the
        whole outer domain, and this iteration's region is addressed by
        offset/stride (Figure 11); without it, a device-side malloc is
        emitted (the slow path Figure 16 measures).
        """
        elem = c_type(pattern.ty.elem)  # type: ignore[union-attr]
        size_src = lower_expr(pattern.size, self.ctx)
        buf = f"{name}_buf"
        outer_names = self._enclosing_index_names(level)
        if self.prealloc:
            if not any(p_name == buf for _, p_name in self.params):
                self.params.append((f"{elem}*", buf))
            strides = self.layout_strides.get(name)
            if strides is None:
                # Canonical layout: [outer..., inner] row-major.
                extents = [
                    lower_expr(p.size, self.ctx)
                    for p in self._enclosing_patterns(level)
                ] + [size_src]
                strides = _row_major_strides(extents)
            offset_terms = [
                f"{idx} * {stride}"
                for idx, stride in zip(outer_names, strides[: len(outer_names)])
            ]
            offset = " + ".join(offset_terms) if offset_terms else "0"
            self.ctx.arrays[name] = ArrayInfo(
                buf, strides[len(outer_names):], offset=offset
            )
        else:
            self.w.line(
                f"{elem}* {buf} = ({elem}*)malloc(sizeof({elem}) * {size_src});"
            )
            self.ctx.arrays[name] = ArrayInfo(buf, ("1",))

        info = self.ctx.arrays[name]

        def temp_dest(value_src: str, indices: List[str]) -> None:
            inner_idx = indices[-1] if indices else "0"
            stride = info.strides[-1] if info.strides else "1"
            term = inner_idx if stride == "1" else f"{inner_idx} * {stride}"
            offset = f"{info.offset} + {term}" if info.offset != "0" else term
            self.w.line(f"{info.c_name}[{offset}] = {value_src};")

        self._emit_pattern(pattern, level + 1, temp_dest, [])

    def _emit_alloc(self, name: str, alloc: Alloc, level: int) -> None:
        elem = c_type(alloc.elem)
        size_src = " * ".join(lower_expr(s, self.ctx) for s in alloc.shape)
        buf = f"{name}_buf"
        if self.prealloc:
            if not any(p_name == buf for _, p_name in self.params):
                self.params.append((f"{elem}*", buf))
            outer_names = self._enclosing_index_names(level)
            extents = [
                lower_expr(p.size, self.ctx)
                for p in self._enclosing_patterns(level)
            ] + [lower_expr(s, self.ctx) for s in alloc.shape]
            strides = _row_major_strides(extents)
            offset_terms = [
                f"{idx} * {stride}"
                for idx, stride in zip(outer_names, strides[: len(outer_names)])
            ]
            offset = " + ".join(offset_terms) if offset_terms else "0"
            self.ctx.arrays[name] = ArrayInfo(
                buf, strides[len(outer_names):], offset=offset
            )
        else:
            self.w.line(
                f"{elem}* {buf} = ({elem}*)malloc(sizeof({elem}) * {size_src});"
            )
            self.ctx.arrays[name] = ArrayInfo(buf, ("1",))

    # -- reduce ------------------------------------------------------------

    def _emit_reduce(
        self,
        pattern: Reduce,
        level: int,
        lm: LevelMapping,
        size_src: str,
        dest: Callable[[str, List[str]], None],
        out_indices: List[str],
        guard_dest: bool = True,
    ) -> None:
        elem = c_type(pattern.body.ty)
        acc = f"acc_{pattern.index.name}"
        identity = self._identity_for(pattern, elem)
        self.w.line(f"{elem} {acc} = {identity};")

        self._open_index_loop(lm, pattern.index.name, size_src)
        body = pattern.body
        if isinstance(body, Block):
            for stmt in body.stmts:
                self._emit_stmt(stmt, level)
            body = body.result
        if isinstance(body, PatternExpr):
            # Reduce over an inner pattern's scalar result.
            inner_val = f"val_{pattern.index.name}"
            self.w.line(f"{elem} {inner_val} = {identity};")

            def inner_dest(value_src: str, indices: List[str]) -> None:
                self.w.line(f"{inner_val} = {value_src};")

            self._emit_pattern(body, level + 1, inner_dest, [])
            value_src = inner_val
        else:
            value_src = self._emit_scalar_value(body, level)
        self.w.line(f"{acc} = {self._combine(pattern, acc, value_src)};")
        self._close_index_loop(lm)

        if isinstance(lm.span, (SpanAll, Split)) and lm.parallel:
            self._emit_block_tree_reduce(
                pattern, lm, acc, dest, out_indices, guard_dest
            )
        else:
            dest(acc, out_indices)

    def _emit_block_tree_reduce(
        self,
        pattern: Reduce,
        lm: LevelMapping,
        acc: str,
        dest: Callable[[str, List[str]], None],
        out_indices: List[str],
        guard_dest: bool = True,
    ) -> None:
        """The shared-memory tree of Figure 9, generalized to any dim."""
        elem = c_type(pattern.body.ty)
        tid = self._thread_coord(lm)
        bdim = self._block_dim(lm)
        smem = f"smem{self._smem_counter}"
        self._smem_counter += 1
        tpb = self.mapping.threads_per_block()
        self.w.line(f"__shared__ {elem} {smem}[{tpb}];")
        lin = "threadIdx.x + threadIdx.y * blockDim.x + threadIdx.z * blockDim.x * blockDim.y"
        self.w.line(f"int lin_{smem} = {lin};")
        self.w.line(f"{smem}[lin_{smem}] = {acc};")
        self.w.line("__syncthreads();")
        stride = self._dim_linear_stride(lm.dim)
        self.w.open(
            f"for (int off = {bdim} / 2; off > 0; off >>= 1)"
        )
        self.w.open(f"if ({tid} < off)")
        self.w.line(
            f"{smem}[lin_{smem}] = "
            f"{self._combine(pattern, f'{smem}[lin_{smem}]', f'{smem}[lin_{smem} + off * {stride}]')};"
        )
        self.w.close()
        self.w.line("__syncthreads();")
        self.w.close()
        group_base = f"{smem}[lin_{smem} - {tid} * {stride}]"
        if isinstance(lm.span, Split):
            # Each split region writes one partial, combined by a second
            # kernel launched afterwards.
            if not any(name == "partials" for _, name in self.params):
                self.params.append((f"{elem}*", "partials"))
            out_offset = " + ".join(out_indices) if out_indices else "0"
            size_src = lower_expr(pattern.size, self.ctx)
            extent = self._grid_extent(lm, size_src)
            bid = self._block_coord(lm, size_src)
            self.w.open(f"if ({tid} == 0)")
            self.w.line(
                f"partials[({out_offset}) * {extent} + {bid}] = {group_base};"
            )
            self.w.close()
            self._emit_combiner(pattern, elem)
        elif guard_dest:
            self.w.open(f"if ({tid} == 0)")
            dest(group_base, out_indices)
            self.w.close()
        else:
            # Every thread reads its group's total (valid after the final
            # __syncthreads); used when the reduce value feeds a larger
            # expression all threads evaluate.
            dest(group_base, out_indices)

    def _emit_combiner(self, pattern: Reduce, elem: str) -> None:
        w = SourceWriter()
        w.open(
            f"__global__ void {self.kernel_name}_combine("
            f"const {elem}* partials, {elem}* out, int n_out, int k)"
        )
        w.line("int i = blockIdx.x * blockDim.x + threadIdx.x;")
        w.line("if (i >= n_out) return;")
        w.line(f"{elem} acc = {self._identity_for(pattern, elem)};")
        w.open("for (int j = 0; j < k; j++)")
        w.line(f"acc = {self._combine(pattern, 'acc', 'partials[i * k + j]')};")
        w.close()
        w.line("out[i] = acc;")
        w.close()
        self.combiner_source = w.text()

    def _identity_for(self, pattern: Reduce, elem: str) -> str:
        if pattern.op == "custom":
            return "0"
        if pattern.op in ("min", "max"):
            bound = "DBL_MAX" if elem == "double" else "FLT_MAX"
            return bound if pattern.op == "min" else f"-{bound}"
        return _REDUCE_IDENTITY[pattern.op]

    def _combine(self, pattern: Reduce, a: str, b: str) -> str:
        if pattern.op == "custom":
            lhs, rhs, expr = pattern.combine  # type: ignore[misc]
            saved = dict(self.ctx.renames)
            self.ctx.renames[lhs.name] = a
            self.ctx.renames[rhs.name] = b
            result = lower_expr(expr, self.ctx)
            self.ctx.renames = saved
            return result
        return _REDUCE_C_OPS[pattern.op](a, b)

    # -- filter / groupBy ----------------------------------------------------

    def _emit_filter(
        self, pattern: Filter, level: int, lm: LevelMapping, size_src: str
    ) -> None:
        """Atomic compaction (order-relaxed; see DESIGN.md non-goals)."""
        if not any(name == "out_count" for _, name in self.params):
            self.params.append(("int*", "out_count"))
        self._open_index_loop(lm, pattern.index.name, size_src)
        pred = lower_expr(pattern.pred, self.ctx)
        value = lower_expr(pattern.value, self.ctx)
        self.w.open(f"if ({pred})")
        self.w.line("int pos = atomicAdd(out_count, 1);")
        self.w.line(f"out[pos] = {value};")
        self.w.close()
        self._close_index_loop(lm)

    def _emit_groupby(
        self, pattern: GroupBy, level: int, lm: LevelMapping, size_src: str
    ) -> None:
        """Atomic bucket scatter with a bounded key space."""
        for decl, name in (("int*", "group_counts"), ("int", "max_per_group")):
            if not any(n == name for _, n in self.params):
                self.params.append((decl, name))
        self._open_index_loop(lm, pattern.index.name, size_src)
        key = lower_expr(pattern.key, self.ctx)
        value = lower_expr(pattern.value, self.ctx)
        self.w.line(f"int k = (int)({key});")
        self.w.line("int pos = atomicAdd(&group_counts[k], 1);")
        self.w.line(f"out[k * max_per_group + pos] = {value};")
        self._close_index_loop(lm)

    # -- index loops ---------------------------------------------------------

    def _open_index_loop(self, lm: LevelMapping, idx: str, size_src: str) -> None:
        if not lm.parallel:
            self.w.open(f"for (long long {idx} = 0; {idx} < {size_src}; {idx}++)")
            return
        tid = self._thread_coord(lm)
        bdim = self._block_dim(lm)
        bid = self._block_coord(lm, size_src)
        span = lm.span
        if isinstance(span, Span):
            if span.n == 1:
                self.w.line(
                    f"long long {idx} = {bid} * {bdim} + {tid};"
                )
                self.w.open(f"if ({idx} < {size_src})")
            else:
                self.w.open(f"for (int s_{idx} = 0; s_{idx} < {span.n}; s_{idx}++)")
                self.w.line(
                    f"long long {idx} = (long long){bid} * {bdim} * {span.n}"
                    f" + s_{idx} * {bdim} + {tid};"
                )
                self.w.open(f"if ({idx} < {size_src})")
        elif isinstance(span, SpanAll):
            self.w.open(
                f"for (long long {idx} = {tid}; {idx} < {size_src}; "
                f"{idx} += {bdim})"
            )
        elif isinstance(span, Split):
            extent = self._grid_extent(lm, size_src)
            self.w.line(
                f"long long region_{idx} = ({size_src} + {extent} - 1) / {extent};"
            )
            self.w.line(f"long long start_{idx} = {bid} * region_{idx};")
            self.w.line(
                f"long long end_{idx} = min((long long){size_src}, "
                f"start_{idx} + region_{idx});"
            )
            self.w.open(
                f"for (long long {idx} = start_{idx} + {tid}; "
                f"{idx} < end_{idx}; {idx} += {bdim})"
            )
        else:  # pragma: no cover - exhaustive
            raise CodegenError(f"unknown span {span}")

    def _close_index_loop(self, lm: LevelMapping) -> None:
        if not lm.parallel:
            self.w.close()
            return
        span = lm.span
        if isinstance(span, Span):
            self.w.close()  # the bounds guard
            if span.n > 1:
                self.w.close()  # the span loop
        else:
            self.w.close()

    # -- logical-dimension linearization (paper footnote 3) -------------------
    #
    # Logical dimensions beyond z share the physical z axis: their thread
    # and block coordinates are recovered by div/mod decomposition, exactly
    # the manual linearization the paper notes is equivalent to
    # multidimensional thread blocks.

    def _folded_dims(self) -> List[Dim]:
        """Logical dims sharing physical z, fastest (Z) first."""
        z_dims = sorted(
            lm.dim
            for lm in self.mapping.levels
            if lm.parallel and int(lm.dim) >= 2
        )
        return z_dims if len(z_dims) > 1 else []

    def _is_folded(self, dim: Dim) -> bool:
        return dim in self._folded_dims()

    def _suffix(self, dim: Dim) -> str:
        return _DIM_SUFFIX[Dim(min(int(dim), 2))]

    def _thread_coord(self, lm: LevelMapping) -> str:
        if self._is_folded(lm.dim):
            divisor = 1
            for d in self._folded_dims():
                if d == lm.dim:
                    break
                level = self.mapping.level_of_dim(d)
                divisor *= self.mapping.level(level).block_size
            base = (
                "threadIdx.z" if divisor == 1
                else f"(threadIdx.z / {divisor})"
            )
            return f"({base} % {lm.block_size})"
        return f"threadIdx.{self._suffix(lm.dim)}"

    def _block_dim(self, lm: LevelMapping) -> str:
        if self._is_folded(lm.dim):
            return str(lm.block_size)
        return f"blockDim.{self._suffix(lm.dim)}"

    def _level_size_src(self, level: int) -> str:
        patterns = self._enclosing_patterns(level)
        if level < len(patterns):
            return lower_expr(patterns[level].size, self.ctx)
        return "1"

    def _grid_extent(self, lm: LevelMapping, size_src: str) -> str:
        """Runtime block count along one level's dimension."""
        span = lm.span
        if isinstance(span, Span):
            per = lm.block_size * span.n
            return f"(({size_src} + {per - 1}) / {per})"
        if isinstance(span, SpanAll):
            return "1"
        if isinstance(span, Split):
            return str(span.k)
        return "1"  # pragma: no cover

    def _block_coord(self, lm: LevelMapping, size_src: str) -> str:
        if self._is_folded(lm.dim):
            divisors: List[str] = []
            for d in self._folded_dims():
                if d == lm.dim:
                    break
                level = self.mapping.level_of_dim(d)
                inner_lm = self.mapping.level(level)
                divisors.append(
                    self._grid_extent(inner_lm, self._level_size_src(level))
                )
            base = "blockIdx.z"
            if divisors:
                base = f"(blockIdx.z / ({' * '.join(divisors)}))"
            return f"({base} % {self._grid_extent(lm, size_src)})"
        return f"blockIdx.{self._suffix(lm.dim)}"

    # -- helpers --------------------------------------------------------------

    def _inner_parallel_guards(self, level: int) -> List[str]:
        """Conditions selecting one thread along every inner parallel dim."""
        guards = []
        for inner in range(level + 1, self.mapping.num_levels):
            lm = self.mapping.level(inner)
            if lm.parallel:
                guards.append(f"{self._thread_coord(lm)} == 0")
        return guards

    def _enclosing_patterns(self, level: int) -> List[PatternExpr]:
        spine: List[PatternExpr] = []
        node: Optional[Expr] = self.analysis.root
        while isinstance(node, PatternExpr) and len(spine) <= level:
            spine.append(node)
            body = node.body_nodes()[0] if node.body_nodes() else None
            if isinstance(body, Block):
                body = body.result
            node = body if isinstance(body, PatternExpr) else None
        return spine[: level + 1]

    def _enclosing_index_names(self, level: int) -> List[str]:
        return [p.index.name for p in self._enclosing_patterns(level)]

    def _dim_linear_stride(self, dim: Dim) -> str:
        """Linear-thread-id stride of one logical dim within the block.

        The block sizes are static in the mapping, so the stride is a
        literal — which also handles folded (>z) dimensions naturally.
        """
        stride = 1
        for lm in self.mapping.levels:
            if lm.parallel and lm.dim < dim:
                stride *= lm.block_size
        return str(stride)


def _direct_patterns(expr: Expr) -> List[PatternExpr]:
    """Pattern nodes directly embedded in an expression (not nested in
    other patterns within it)."""
    found: List[PatternExpr] = []

    def visit(node) -> None:
        if isinstance(node, PatternExpr):
            found.append(node)
            return
        for child in node.children():
            visit(child)

    visit(expr)
    return found


def _row_major_strides(extents: Sequence[str]) -> Tuple[str, ...]:
    """Symbolic row-major strides for the given extent expressions."""
    strides: List[str] = []
    for axis in range(len(extents)):
        trailing = extents[axis + 1:]
        if not trailing:
            strides.append("1")
        else:
            strides.append(" * ".join(f"({e})" for e in trailing))
    return tuple(strides)


def device_function_preamble(root: PatternExpr) -> str:
    """CUDA source for every registered device function the nest calls."""
    sources = []
    seen = set()
    for call in find_instances(root, FnCall):
        if call.name not in seen and call.fn.cuda_source:
            seen.add(call.name)
            sources.append(call.fn.cuda_source)
    return "\n".join(sources)
