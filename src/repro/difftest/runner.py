"""Campaign driver: corpora, reproducer artifacts, coverage accounting.

A *campaign* checks a stream of specs — the deterministic coverage
templates, then ``budget`` random specs from the seed, then any corpus
files — through the oracle, shrinking every failure to a minimal spec and
(optionally) writing a replayable reproducer artifact per failure.

Reproducer artifacts are self-contained JSON: the original and shrunk
specs, the serialized IR of the shrunk program, the failure list, and
the campaign seed.  ``repro difftest --replay path.json`` re-runs one.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..ir.printer import pretty_program
from ..ir.serialize import program_to_dict
from ..ir.traversal import find_patterns
from .generator import ProgramGenerator, build_program, canonical_specs
from .oracle import OracleReport, check_spec
from .shrinker import shrink_spec
from .specs import ProgramSpec

#: All pattern kinds a campaign is expected to exercise.
ALL_PATTERN_KINDS = frozenset(
    ("map", "zipwith", "foreach", "filter", "reduce", "groupby")
)


@dataclass
class FailureRecord:
    """One failing program, after shrinking."""

    spec: ProgramSpec
    shrunk: ProgramSpec
    report: OracleReport
    shrink_checks: int
    pattern_nodes: int  # pattern-node count of the shrunk program
    artifact_path: Optional[str] = None


@dataclass
class CampaignResult:
    """Aggregate outcome of one difftest campaign."""

    seed: int
    checked: int = 0
    skipped_total: int = 0
    failures: List[FailureRecord] = field(default_factory=list)
    pattern_kinds: set = field(default_factory=set)
    split_programs: int = 0
    prealloc_programs: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def coverage_gaps(self) -> List[str]:
        gaps = sorted(ALL_PATTERN_KINDS - self.pattern_kinds)
        if not self.split_programs:
            gaps.append("split(k)")
        if not self.prealloc_programs:
            gaps.append("prealloc")
        return gaps

    def describe(self) -> str:
        lines = [
            f"difftest: {self.checked} program(s) checked, "
            f"{len(self.failures)} failure(s), seed {self.seed}",
            f"  pattern kinds: {', '.join(sorted(self.pattern_kinds)) or '-'}",
            f"  split(k) exercised on {self.split_programs} program(s), "
            f"preallocation on {self.prealloc_programs}",
        ]
        gaps = self.coverage_gaps()
        if gaps:
            lines.append(f"  coverage gaps: {', '.join(gaps)}")
        for record in self.failures:
            lines.append(
                f"  FAIL {record.spec.describe()} -> shrunk to "
                f"{record.shrunk.describe()} ({record.pattern_nodes} "
                f"pattern node(s))"
            )
            for failure in record.report.failures:
                lines.append(f"    {failure}")
            if record.artifact_path:
                lines.append(f"    reproducer: {record.artifact_path}")
        return "\n".join(lines)


# -- corpus files ----------------------------------------------------------


def save_corpus(specs: List[ProgramSpec], path: str) -> None:
    """Write a corpus file: a JSON list of spec dicts."""
    payload = {"version": 1, "specs": [spec.to_dict() for spec in specs]}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def load_corpus(path: str) -> List[ProgramSpec]:
    """Read a corpus file back into validated specs."""
    with open(path) as handle:
        payload = json.load(handle)
    return [ProgramSpec.from_dict(data) for data in payload["specs"]]


# -- reproducer artifacts --------------------------------------------------


def save_reproducer(
    record: FailureRecord, seed: int, out_dir: str, index: int
) -> str:
    """Serialize one failure as a replayable artifact; returns its path."""
    os.makedirs(out_dir, exist_ok=True)
    program = build_program(record.shrunk)
    payload = {
        "version": 1,
        "seed": seed,
        "spec": record.spec.to_dict(),
        "shrunk_spec": record.shrunk.to_dict(),
        "failures": [
            {"stage": f.stage, "message": f.message}
            for f in record.report.failures
        ],
        "pattern_nodes": record.pattern_nodes,
        "program_ir": program_to_dict(program),
        "pretty": pretty_program(program),
    }
    path = os.path.join(out_dir, f"reproducer-{index:03d}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def load_reproducer(path: str) -> Tuple[ProgramSpec, ProgramSpec]:
    """Read back (original spec, shrunk spec) from an artifact."""
    with open(path) as handle:
        payload = json.load(handle)
    return (
        ProgramSpec.from_dict(payload["spec"]),
        ProgramSpec.from_dict(payload["shrunk_spec"]),
    )


# -- the campaign ----------------------------------------------------------


def run_campaign(
    seed: int = 0,
    budget: int = 50,
    corpus: Optional[List[ProgramSpec]] = None,
    out_dir: Optional[str] = None,
    include_templates: bool = True,
    run_split_forcing: bool = True,
    max_shrink_checks: int = 60,
    progress: Optional[Callable[[str], None]] = None,
    check: Optional[Callable[[ProgramSpec], OracleReport]] = None,
) -> CampaignResult:
    """Run one differential-testing campaign.

    ``budget`` counts randomly generated specs; the deterministic coverage
    templates and any corpus specs run in addition to it.  ``check``
    replaces the oracle (the injected-bug demo and the unit tests use
    this to fault-inject); it defaults to :func:`~.oracle.check_spec`.
    """
    if check is None:
        def check(spec: ProgramSpec) -> OracleReport:
            return check_spec(
                spec, seed=seed, run_split_forcing=run_split_forcing
            )

    specs: List[ProgramSpec] = []
    if include_templates:
        specs.extend(canonical_specs())
    if corpus:
        specs.extend(corpus)
    generator = ProgramGenerator(seed=seed)
    specs.extend(generator.random_spec() for _ in range(budget))

    result = CampaignResult(seed=seed)
    for spec in specs:
        report = check(spec)
        result.checked += 1
        result.skipped_total += len(report.skipped)
        result.pattern_kinds |= set(report.pattern_kinds)
        if report.split_exercised:
            result.split_programs += 1
        if report.prealloc_exercised:
            result.prealloc_programs += 1
        if report.ok:
            if progress:
                progress(f"ok   {spec.describe()}")
            continue
        if progress:
            progress(f"FAIL {spec.describe()}")

        def still_fails(candidate: ProgramSpec) -> bool:
            return not check(candidate).ok

        shrunk, checks = shrink_spec(
            spec, still_fails, max_checks=max_shrink_checks
        )
        shrunk_report = check(shrunk) if checks else report
        record = FailureRecord(
            spec=spec,
            shrunk=shrunk,
            report=shrunk_report if not shrunk_report.ok else report,
            shrink_checks=checks,
            pattern_nodes=_pattern_node_count(shrunk),
        )
        if out_dir:
            record.artifact_path = save_reproducer(
                record, seed, out_dir, len(result.failures)
            )
        result.failures.append(record)
    return result


def _pattern_node_count(spec: ProgramSpec) -> int:
    try:
        program = build_program(spec)
    except Exception:
        return -1
    return len(find_patterns(program.result))
