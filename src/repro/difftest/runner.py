"""Campaign driver: corpora, reproducer artifacts, coverage accounting.

A *campaign* checks a stream of specs — the deterministic coverage
templates, then ``budget`` random specs from the seed, then any corpus
files — through the oracle, shrinking every failure to a minimal spec and
(optionally) writing a replayable reproducer artifact per failure.

Reproducer artifacts are self-contained JSON: the original and shrunk
specs, the serialized IR of the shrunk program, the failure list, and
the campaign seed.  ``repro difftest --replay path.json`` re-runs one.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ReproError
from ..ir.printer import pretty_program
from ..ir.serialize import program_to_dict
from ..ir.traversal import find_patterns
from ..resilience.retry import Checkpoint, retry_with_backoff
from .generator import ProgramGenerator, build_program, canonical_specs
from .oracle import OracleReport, check_spec
from .shrinker import shrink_spec
from .specs import ProgramSpec

#: All pattern kinds a campaign is expected to exercise.
ALL_PATTERN_KINDS = frozenset(
    ("map", "zipwith", "foreach", "filter", "reduce", "groupby")
)


@dataclass
class FailureRecord:
    """One failing program, after shrinking."""

    spec: ProgramSpec
    shrunk: ProgramSpec
    report: OracleReport
    shrink_checks: int
    pattern_nodes: int  # pattern-node count of the shrunk program
    artifact_path: Optional[str] = None


@dataclass
class CampaignResult:
    """Aggregate outcome of one difftest campaign."""

    seed: int
    checked: int = 0
    skipped_total: int = 0
    failures: List[FailureRecord] = field(default_factory=list)
    pattern_kinds: set = field(default_factory=set)
    split_programs: int = 0
    prealloc_programs: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def coverage_gaps(self) -> List[str]:
        gaps = sorted(ALL_PATTERN_KINDS - self.pattern_kinds)
        if not self.split_programs:
            gaps.append("split(k)")
        if not self.prealloc_programs:
            gaps.append("prealloc")
        return gaps

    def describe(self) -> str:
        lines = [
            f"difftest: {self.checked} program(s) checked, "
            f"{len(self.failures)} failure(s), seed {self.seed}",
            f"  pattern kinds: {', '.join(sorted(self.pattern_kinds)) or '-'}",
            f"  split(k) exercised on {self.split_programs} program(s), "
            f"preallocation on {self.prealloc_programs}",
        ]
        gaps = self.coverage_gaps()
        if gaps:
            lines.append(f"  coverage gaps: {', '.join(gaps)}")
        for record in self.failures:
            lines.append(
                f"  FAIL {record.spec.describe()} -> shrunk to "
                f"{record.shrunk.describe()} ({record.pattern_nodes} "
                f"pattern node(s))"
            )
            for failure in record.report.failures:
                lines.append(f"    {failure}")
            if record.artifact_path:
                lines.append(f"    reproducer: {record.artifact_path}")
        return "\n".join(lines)


# -- corpus files ----------------------------------------------------------


def save_corpus(specs: List[ProgramSpec], path: str) -> None:
    """Write a corpus file: a JSON list of spec dicts."""
    payload = {"version": 1, "specs": [spec.to_dict() for spec in specs]}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def load_corpus(path: str) -> List[ProgramSpec]:
    """Read a corpus file back into validated specs."""
    with open(path) as handle:
        payload = json.load(handle)
    return [ProgramSpec.from_dict(data) for data in payload["specs"]]


# -- reproducer artifacts --------------------------------------------------


def save_reproducer(
    record: FailureRecord, seed: int, out_dir: str, index: int
) -> str:
    """Serialize one failure as a replayable artifact; returns its path."""
    os.makedirs(out_dir, exist_ok=True)
    program = build_program(record.shrunk)
    payload = {
        "version": 1,
        "seed": seed,
        "spec": record.spec.to_dict(),
        "shrunk_spec": record.shrunk.to_dict(),
        "failures": [
            {"stage": f.stage, "message": f.message}
            for f in record.report.failures
        ],
        "pattern_nodes": record.pattern_nodes,
        "program_ir": program_to_dict(program),
        "pretty": pretty_program(program),
    }
    path = os.path.join(out_dir, f"reproducer-{index:03d}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def load_reproducer(path: str) -> Tuple[ProgramSpec, ProgramSpec]:
    """Read back (original spec, shrunk spec) from an artifact."""
    with open(path) as handle:
        payload = json.load(handle)
    return (
        ProgramSpec.from_dict(payload["spec"]),
        ProgramSpec.from_dict(payload["shrunk_spec"]),
    )


# -- the campaign ----------------------------------------------------------


def run_campaign(
    seed: int = 0,
    budget: int = 50,
    corpus: Optional[List[ProgramSpec]] = None,
    out_dir: Optional[str] = None,
    include_templates: bool = True,
    run_split_forcing: bool = True,
    max_shrink_checks: int = 60,
    progress: Optional[Callable[[str], None]] = None,
    check: Optional[Callable[[ProgramSpec], OracleReport]] = None,
    checkpoint_path: Optional[str] = None,
    retries: int = 0,
    sleep: Callable[[float], None] = time.sleep,
) -> CampaignResult:
    """Run one differential-testing campaign.

    ``budget`` counts randomly generated specs; the deterministic coverage
    templates and any corpus specs run in addition to it.  ``check``
    replaces the oracle (the injected-bug demo and the unit tests use
    this to fault-inject); it defaults to :func:`~.oracle.check_spec`.

    ``checkpoint_path`` makes the campaign resumable: progress is saved
    after every spec, keyed by the campaign parameters, so re-running
    after a crash picks up at the first unchecked spec instead of
    repeating the whole stream.  ``retries`` re-runs a spec whose check
    *crashes* with a :class:`~repro.errors.ReproError` (jittered backoff,
    see :func:`~repro.resilience.retry.retry_with_backoff`); a spec that
    still crashes after all retries is recorded as a ``crash``-stage
    failure rather than killing the campaign.  ``sleep`` is injectable
    so tests can assert the backoff schedule without waiting for it.
    """
    from ..observability import get_metrics, get_tracer

    if check is None:
        def check(spec: ProgramSpec) -> OracleReport:
            return check_spec(
                spec, seed=seed, run_split_forcing=run_split_forcing
            )

    specs: List[ProgramSpec] = []
    if include_templates:
        specs.extend(canonical_specs())
    if corpus:
        specs.extend(corpus)
    generator = ProgramGenerator(seed=seed)
    specs.extend(generator.random_spec() for _ in range(budget))

    result = CampaignResult(seed=seed)
    checkpoint: Optional[Checkpoint] = None
    start_index = 0
    if checkpoint_path is not None:
        checkpoint = Checkpoint(checkpoint_path, key={
            "campaign": "difftest",
            "seed": seed,
            "budget": budget,
            "templates": include_templates,
            "split_forcing": run_split_forcing,
            "corpus": [spec.to_dict() for spec in corpus or []],
        })
        state = checkpoint.load()
        if state is not None:
            start_index = _restore_campaign(result, state)
            if start_index and progress:
                progress(
                    f"resumed at spec {start_index} "
                    f"({result.checked} checked, "
                    f"{len(result.failures)} failure(s))"
                )

    tracer = get_tracer()
    metrics = get_metrics()
    # The campaign span is opened manually so the per-spec loop below
    # keeps its indentation; the finally guarantees it closes (and is
    # recorded) even when a spec check escapes.
    campaign_span = tracer.span(
        "difftest.campaign", seed=seed, specs=len(specs)
    )
    campaign_span.__enter__()
    try:
        _run_specs(
            specs, start_index, check, result, checkpoint, seed, retries,
            sleep, progress, out_dir, max_shrink_checks, tracer, metrics,
        )
    finally:
        campaign_span.set(
            checked=result.checked, failures=len(result.failures)
        )
        campaign_span.__exit__(None, None, None)
    if checkpoint is not None:
        checkpoint.clear()
    return result


def _run_specs(
    specs: List[ProgramSpec],
    start_index: int,
    check: Callable[[ProgramSpec], OracleReport],
    result: CampaignResult,
    checkpoint: Optional[Checkpoint],
    seed: int,
    retries: int,
    sleep: Callable[[float], None],
    progress: Optional[Callable[[str], None]],
    out_dir: Optional[str],
    max_shrink_checks: int,
    tracer,
    metrics,
) -> None:
    """The per-spec check/shrink/record loop of :func:`run_campaign`."""
    for index, spec in enumerate(specs):
        if index < start_index:
            continue
        with tracer.span("difftest.check", spec=spec.describe()):
            report = _checked(
                check, spec, index, seed, retries, sleep, progress
            )
        if metrics.enabled:
            metrics.counter("difftest.checked").inc()
            if not report.ok:
                metrics.counter("difftest.failures").inc()
        result.checked += 1
        result.skipped_total += len(report.skipped)
        result.pattern_kinds |= set(report.pattern_kinds)
        if report.split_exercised:
            result.split_programs += 1
        if report.prealloc_exercised:
            result.prealloc_programs += 1
        if report.ok:
            if progress:
                progress(f"ok   {spec.describe()}")
            if checkpoint is not None:
                checkpoint.save(_campaign_state(result, index + 1))
            continue
        if progress:
            progress(f"FAIL {spec.describe()}")

        crashed = any(f.stage == "crash" for f in report.failures)

        def still_fails(candidate: ProgramSpec) -> bool:
            try:
                return not check(candidate).ok
            except ReproError:
                # A check that crashes outright certainly still fails.
                return True

        if crashed:
            # Shrinking navigates oracle failures; a crashing check has
            # no oracle verdict to preserve, so keep the spec as-is.
            shrunk, checks = spec, 0
        else:
            shrunk, checks = shrink_spec(
                spec, still_fails, max_checks=max_shrink_checks
            )
        shrunk_report = check(shrunk) if checks else report
        record = FailureRecord(
            spec=spec,
            shrunk=shrunk,
            report=shrunk_report if not shrunk_report.ok else report,
            shrink_checks=checks,
            pattern_nodes=_pattern_node_count(shrunk),
        )
        if out_dir:
            record.artifact_path = save_reproducer(
                record, seed, out_dir, len(result.failures)
            )
        result.failures.append(record)
        if checkpoint is not None:
            checkpoint.save(_campaign_state(result, index + 1))


def _checked(
    check: Callable[[ProgramSpec], OracleReport],
    spec: ProgramSpec,
    index: int,
    seed: int,
    retries: int,
    sleep: Callable[[float], None],
    progress: Optional[Callable[[str], None]],
) -> OracleReport:
    """One oracle check, retried on crashes when ``retries`` allows it."""
    if retries <= 0:
        return check(spec)

    def on_retry(attempt: int, exc: BaseException, delay: float) -> None:
        if progress:
            progress(
                f"retry {attempt}/{retries} after "
                f"{type(exc).__name__}: {exc} (backoff {delay:.3f}s)"
            )

    try:
        return retry_with_backoff(
            lambda: check(spec),
            retries=retries,
            seed=seed + index,
            sleep=sleep,
            on_retry=on_retry,
        )
    except ReproError as exc:
        report = OracleReport(program_name=spec.describe(), spec=spec)
        report.fail(
            "crash",
            f"{type(exc).__name__}: {exc} "
            f"(persisted through {retries} retr"
            f"{'y' if retries == 1 else 'ies'})",
        )
        return report


# -- checkpoint (de)serialization ------------------------------------------


def _campaign_state(result: CampaignResult, next_index: int) -> Dict[str, Any]:
    """The JSON-safe resume state after ``next_index`` specs are done."""
    return {
        "next_index": next_index,
        "checked": result.checked,
        "skipped_total": result.skipped_total,
        "pattern_kinds": sorted(result.pattern_kinds),
        "split_programs": result.split_programs,
        "prealloc_programs": result.prealloc_programs,
        "failures": [
            {
                "spec": record.spec.to_dict(),
                "shrunk": record.shrunk.to_dict(),
                "program_name": record.report.program_name,
                "failures": [
                    {"stage": f.stage, "message": f.message}
                    for f in record.report.failures
                ],
                "shrink_checks": record.shrink_checks,
                "pattern_nodes": record.pattern_nodes,
                "artifact_path": record.artifact_path,
            }
            for record in result.failures
        ],
    }


def _restore_campaign(result: CampaignResult, state: Dict[str, Any]) -> int:
    """Rebuild ``result`` from saved state; returns the resume index.

    A checkpoint that cannot be decoded restores nothing and resumes from
    spec 0 — a corrupt file downgrades to a fresh campaign, never a crash.
    """
    from .oracle import CheckFailure

    try:
        failures = []
        for data in state.get("failures", []):
            report = OracleReport(
                program_name=str(data.get("program_name", "")),
                spec=ProgramSpec.from_dict(data["shrunk"]),
            )
            report.failures = [
                CheckFailure(str(f["stage"]), str(f["message"]))
                for f in data.get("failures", [])
            ]
            failures.append(FailureRecord(
                spec=ProgramSpec.from_dict(data["spec"]),
                shrunk=ProgramSpec.from_dict(data["shrunk"]),
                report=report,
                shrink_checks=int(data.get("shrink_checks", 0)),
                pattern_nodes=int(data.get("pattern_nodes", -1)),
                artifact_path=data.get("artifact_path"),
            ))
        next_index = int(state.get("next_index", 0))
        checked = int(state.get("checked", 0))
        skipped_total = int(state.get("skipped_total", 0))
        pattern_kinds = set(state.get("pattern_kinds", []))
        split_programs = int(state.get("split_programs", 0))
        prealloc_programs = int(state.get("prealloc_programs", 0))
    except (KeyError, TypeError, ValueError, ReproError):
        return 0
    result.checked = checked
    result.skipped_total = skipped_total
    result.pattern_kinds = pattern_kinds
    result.split_programs = split_programs
    result.prealloc_programs = prealloc_programs
    result.failures = failures
    return next_index


def _pattern_node_count(spec: ProgramSpec) -> int:
    try:
        program = build_program(spec)
    except ReproError:
        # A spec whose program no longer builds (e.g. shrunk past
        # validity) has no meaningful node count; -1 records that the
        # count is unavailable without hiding unrelated crashes, which
        # now propagate.
        return -1
    return len(find_patterns(program.result))
