"""Differential-execution testing for the mapping/codegen stack.

The reproduction's core contract is *mapping invariance*: every mapping the
Section-IV search (or any fixed baseline, or an explicit ``Split(k)``
assignment) selects must compute exactly the same values as the
interpreter, with or without the Section-V optimizations.  This package
checks that contract by brute force:

* :mod:`~repro.difftest.specs` — a small, JSON-serializable description
  language for generated programs (the unit the shrinker operates on);
* :mod:`~repro.difftest.generator` — seeded random generation of specs
  spanning the full pattern IR, plus the spec -> IR builder;
* :mod:`~repro.difftest.oracle` — the cross-strategy differential check
  for one program;
* :mod:`~repro.difftest.shrinker` — greedy spec-level reduction of a
  failing program to a minimal reproducer;
* :mod:`~repro.difftest.runner` — the campaign driver behind the
  ``repro difftest`` CLI subcommand (corpus files, reproducer artifacts,
  coverage accounting).
"""

from .generator import ProgramGenerator, build_program, canonical_specs
from .oracle import OracleReport, check_spec, make_inputs
from .runner import CampaignResult, load_corpus, run_campaign, save_corpus
from .shrinker import shrink_spec
from .specs import ForeachSpec, LevelSpec, ProgramSpec

__all__ = [
    "CampaignResult",
    "ForeachSpec",
    "LevelSpec",
    "OracleReport",
    "ProgramGenerator",
    "ProgramSpec",
    "build_program",
    "canonical_specs",
    "check_spec",
    "load_corpus",
    "make_inputs",
    "run_campaign",
    "save_corpus",
    "shrink_spec",
]
