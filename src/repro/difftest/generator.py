"""Seeded random-program generation and the spec -> IR builder.

The generator covers the full pattern IR on purpose:

* all six pattern kinds (map, zipWith, foreach, filter, reduce, groupBy);
* nesting to depth 4 (maps over reduces, consecutive reduces);
* conditionals, both expression-level (``Select`` leaves) and
  statement-level (``If`` inside Foreach bodies);
* neighbor accesses (clamped ``i+1`` reads, the stencil idiom);
* dynamic inner allocations via ``let_vec`` materialization — the input
  the preallocation optimization (Section V-A) exists to remove.

``RandomIndex`` is deliberately excluded: the vectorized and loop
interpreter paths consume the RNG in different orders, so random-access
programs are not differentially comparable.  The stencil apps cover that
node's analysis behavior instead.

Every program is built from the same fixed input signature so oracle
input synthesis stays trivial:

* ``m`` — an ``R x C`` F64 matrix;
* ``v`` — a length-``R`` F64 vector;
* ``u`` / ``w`` — length-``C`` F64 vectors (``w`` only when zipping);
* ``o`` — the output array Foreach programs mutate.

Deeper levels (positions 2 and 3) iterate over small constant domains and
contribute to the leaf expression through their index values.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from ..ir import builder as B
from ..ir.expr import Const, Var
from ..ir.patterns import Filter, GroupBy, Program
from ..ir.symbols import fresh_name, reset_names
from ..ir.types import I64
from .specs import (
    DEFAULT_SIZES,
    ForeachSpec,
    LevelSpec,
    ProgramSpec,
)

# -- spec -> IR ------------------------------------------------------------


def build_program(spec: ProgramSpec, name: str = "") -> Program:
    """Materialize a spec as a validated pattern-IR program.

    Name generation is reset per build so that the same spec always yields
    byte-identical serialized IR (stable reproducer artifacts).
    """
    spec.validate()
    reset_names()
    if spec.kind == "nest":
        return _build_nest(spec, name or "difftest_nest")
    if spec.kind == "filter":
        return _build_filter(spec, name or "difftest_filter")
    if spec.kind == "groupby":
        return _build_groupby(spec, name or "difftest_groupby")
    return _build_foreach(spec, name or "difftest_foreach")


def _leaf(spec: ProgramSpec, m: B.Mat, v: B.Vec, u: B.Vec, ix: Sequence[B.EH],
          sizes: Sequence[int]) -> B.EH:
    """The innermost scalar expression, parameterized by in-scope indices.

    ``ix[0]`` ranges over R, ``ix[1]`` over C, deeper indices over small
    constants.  Index arithmetic stays in bounds by construction (clamped
    neighbor reads), never by wraparound, so the access analysis sees the
    true stride structure.
    """
    depth = len(ix)
    # Fold indices beyond the array ranks in as plain scalars so deep
    # levels still influence the value (a dropped level changes results).
    deep = B.lift(0.0)
    for k, idx in enumerate(ix[2:]):
        deep = B.EH(B.lift(deep)) + idx.cast(B.F64) * float(0.25 * (k + 1))
    deep_eh = B.EH(B.lift(deep))

    if spec.leaf == "affine":
        acc = B.EH(Const(1.0))
        for k, idx in enumerate(ix):
            acc = acc + idx.cast(B.F64) * float(k + 1)
        return acc + deep_eh
    if spec.leaf == "array":
        if depth == 1:
            return v[ix[0]] * 2.0 + 1.0
        return m[ix[0], ix[1]] + v[ix[0]] * u[ix[1]] + deep_eh
    if spec.leaf == "neighbor":
        if depth == 1:
            nxt = B.minimum(ix[0] + 1, sizes[0] - 1)
            return v[nxt] - v[ix[0]] * 0.5
        nxt = B.minimum(ix[1] + 1, sizes[1] - 1)
        return m[ix[0], nxt] - m[ix[0], ix[1]] * 0.5 + deep_eh
    if spec.leaf == "select":
        cond = (ix[-1] % 2).eq(0)
        if depth == 1:
            return cond.where(v[ix[0]] * 2.0, 1.0 - v[ix[0]])
        return cond.where(m[ix[0], ix[1]], u[ix[1]] - m[ix[0], ix[1]]) + deep_eh
    raise AssertionError(f"unhandled leaf {spec.leaf!r}")


def _build_nest(spec: ProgramSpec, name: str) -> Program:
    sizes = spec.domain_sizes()
    b = B.Builder(name)
    R = b.size("R", sizes[0])
    C = b.size("C", sizes[1])
    m = b.matrix("m", B.F64, "R", "C")
    v = b.vector("v", B.F64, "R")
    u = b.vector("u", B.F64, "C")
    uses_zip = any(lv.kind == "zipwith" for lv in spec.levels)
    w = b.vector("w", B.F64, "C") if uses_zip else None

    def domain(pos: int) -> B.EH:
        if pos == 0:
            return R
        if pos == 1:
            return C
        return B.EH(Const(sizes[pos]))

    def build_level(pos: int, ix: List[B.EH]) -> B.EH:
        if pos == len(spec.levels):
            return _leaf(spec, m, v, u, ix, sizes)
        level = spec.levels[pos]
        dom = domain(pos)
        if level.kind == "map":
            return B.EH(
                B.range_map(dom, lambda i: build_level(pos + 1, ix + [i])).expr
            )
        if level.kind == "zipwith":
            assert w is not None
            row = m.row(ix[0])
            return B.EH(
                row.zip_with(
                    w, lambda a, bb: a * bb + _leaf(spec, m, v, u, ix, sizes)
                ).expr
            )
        # reduce
        if level.materialize:
            vec = B.range_map(dom, lambda i: build_level(pos + 1, ix + [i]))
            assert isinstance(vec, B.Vec)
            return B.let_vec(vec, lambda t: _reduce_vec(t, level.op))
        vec = B.range_map(dom, lambda i: build_level(pos + 1, ix + [i]))
        if isinstance(vec, B.Vec):
            return _reduce_vec(vec, level.op)
        # Scalar-body reduce (the body is not a Vec because range_map only
        # wraps rank-1 results): build a Reduce node directly.
        return B.range_reduce(
            dom, lambda i: build_level(pos + 1, ix + [i]), op=level.op
        ) if level.op != "custom" else _custom_range_reduce(
            dom, lambda i: build_level(pos + 1, ix + [i])
        )

    return b.build(build_level(0, []))


def _reduce_vec(vec: B.Vec, op: str) -> B.EH:
    if op == "custom":
        # An associative-but-custom combiner: bounded absolute maximum.
        return vec.reduce_fn(lambda a, bb: B.maximum(a, bb) + 0.0)
    return vec.reduce(op)


def _custom_range_reduce(dom: B.EH, fn: Callable[[B.EH], B.EH]) -> B.EH:
    from ..ir.patterns import Reduce

    idx = Var(fresh_name("i"), I64)
    body = B.lift(fn(B.EH(idx)))
    lhs = Var(fresh_name("a"), body.ty)
    rhs = Var(fresh_name("b"), body.ty)
    combine = B.lift(B.maximum(B.EH(lhs), B.EH(rhs)) + 0.0)
    return B.EH(Reduce(B.lift(dom), idx, body, "custom", (lhs, rhs, combine)))


def _build_filter(spec: ProgramSpec, name: str) -> Program:
    sizes = spec.domain_sizes()
    b = B.Builder(name)
    b.size("R", sizes[0])
    b.size("C", sizes[1])
    m = b.matrix("m", B.F64, "R", "C")
    v = b.vector("v", B.F64, "R")
    u = b.vector("u", B.F64, "C")
    idx = Var(fresh_name("i"), I64)
    i = B.EH(idx)
    elem = v[i]
    if spec.pred == "positive":
        pred = elem > 0.0
    elif spec.pred == "threshold":
        pred = B.abs_(elem) < 0.75
    else:  # index_even
        pred = (i % 2).eq(0)
    value = _flat_leaf(spec, m, v, u, i, sizes)
    return b.build(B.EH(Filter(v.length, idx, pred.expr, value.expr)))


def _build_groupby(spec: ProgramSpec, name: str) -> Program:
    sizes = spec.domain_sizes()
    b = B.Builder(name)
    b.size("R", sizes[0])
    b.size("C", sizes[1])
    m = b.matrix("m", B.F64, "R", "C")
    v = b.vector("v", B.F64, "R")
    u = b.vector("u", B.F64, "C")
    idx = Var(fresh_name("i"), I64)
    i = B.EH(idx)
    elem = v[i]
    if spec.key == "mod":
        key = i % 3
    elif spec.key == "halves":
        key = (i * 2) // B.EH(b._params[0])  # i*2 // R -> {0, 1}
    else:  # sign
        key = (elem > 0.0).where(1, 0)
    value = _flat_leaf(spec, m, v, u, i, sizes)
    return b.build(B.EH(GroupBy(v.length, idx, B.lift(key), value.expr)))


def _flat_leaf(spec: ProgramSpec, m: B.Mat, v: B.Vec, u: B.Vec, i: B.EH,
               sizes: Sequence[int]) -> B.EH:
    """Leaf for flat (level-0) filter/groupby values: pure expressions in
    one index, the shape the atomic compaction/scatter templates lower."""
    if spec.leaf == "array":
        return v[i] * 2.0 + 1.0
    if spec.leaf == "neighbor":
        nxt = B.minimum(i + 1, sizes[0] - 1)
        return v[nxt] - v[i] * 0.5
    if spec.leaf == "select":
        return (i % 2).eq(0).where(v[i] * 2.0, 1.0 - v[i])
    return i.cast(B.F64) + 1.0  # affine


def _build_foreach(spec: ProgramSpec, name: str) -> Program:
    sizes = spec.domain_sizes()
    fe = spec.foreach
    b = B.Builder(name)
    b.size("R", sizes[0])
    b.size("C", sizes[1])
    m = b.matrix("m", B.F64, "R", "C")
    v = b.vector("v", B.F64, "R")

    if fe.depth == 1:
        o = b.vector("o", B.F64, "R")

        def body(i: B.EH) -> list:
            if fe.neighbor:
                nxt = B.minimum(i + 1, sizes[0] - 1)
                value = v[nxt] + v[i] * 0.5
            else:
                value = v[i] * 2.0 + 1.0
            st = B.store(o, i, value)
            if fe.conditional:
                return [B.if_then(v[i] > 0.0, [st], [B.store(o, i, 0.0 - value)])]
            return [st]

        return b.build(B.EH(B.range_foreach(B.EH(b._params[0]), body)))

    o = b.matrix("o", B.F64, "R", "C")

    def body2(i: B.EH, j: B.EH) -> list:
        if fe.neighbor:
            nxt = B.minimum(j + 1, sizes[1] - 1)
            value = m[i, nxt] + m[i, j] * 0.5
        else:
            value = m[i, j] + v[i]
        st = B.store2(o, i, j, value)
        if fe.conditional:
            return [B.if_then(m[i, j] > 0.0, [st], [B.store2(o, i, j, 0.0 - value)])]
        return [st]

    return b.build(B.EH(o.foreach_elements(body2)))


# -- random sampling -------------------------------------------------------


class ProgramGenerator:
    """Seeded sampler over the spec space.

    Two generators built with the same seed produce identical spec
    streams; a corpus file plus a seed fully determines a campaign.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self._count = 0

    def random_spec(self) -> ProgramSpec:
        self._count += 1
        roll = self.rng.random()
        if roll < 0.55:
            spec = self._random_nest()
        elif roll < 0.67:
            spec = ProgramSpec(
                kind="filter",
                pred=self._choice(("positive", "threshold", "index_even")),
                leaf=self._choice(("affine", "array", "neighbor", "select")),
                sizes=self._random_sizes(),
            )
        elif roll < 0.79:
            spec = ProgramSpec(
                kind="groupby",
                key=self._choice(("mod", "halves", "sign")),
                leaf=self._choice(("affine", "array", "neighbor", "select")),
                sizes=self._random_sizes(),
            )
        else:
            spec = ProgramSpec(
                kind="foreach",
                foreach=ForeachSpec(
                    depth=int(self._choice((1, 2))),
                    conditional=bool(self.rng.random() < 0.5),
                    neighbor=bool(self.rng.random() < 0.5),
                ),
                sizes=self._random_sizes(),
            )
        spec = spec.with_label(f"seed{self.seed}/{self._count}")
        spec.validate()
        return spec

    def _random_nest(self) -> ProgramSpec:
        depth = int(self._choice((1, 2, 2, 3, 3, 4)))
        n_maps = int(self.rng.integers(0, depth + 1))
        levels: List[LevelSpec] = [LevelSpec("map") for _ in range(n_maps)]
        first_reduce = True
        for _ in range(depth - n_maps):
            op = self._choice(("+", "+", "max", "min", "custom"))
            materialize = (
                first_reduce
                and n_maps >= 1
                and op != "custom"
                and bool(self.rng.random() < 0.35)
            )
            levels.append(LevelSpec("reduce", op=op, materialize=materialize))
            first_reduce = False
        if (
            depth == 2
            and n_maps == 2
            and bool(self.rng.random() < 0.3)
        ):
            levels[1] = LevelSpec("zipwith")
        return ProgramSpec(
            kind="nest",
            levels=tuple(levels),
            leaf=self._choice(("affine", "array", "array", "neighbor", "select")),
            sizes=self._random_sizes(),
        )

    def _random_sizes(self) -> tuple:
        return (
            int(self.rng.integers(4, 10)),
            int(self.rng.integers(5, 13)),
            DEFAULT_SIZES[2],
            DEFAULT_SIZES[3],
        )

    def _choice(self, options: Sequence) -> object:
        return options[int(self.rng.integers(0, len(options)))]


def canonical_specs() -> List[ProgramSpec]:
    """Deterministic coverage templates prepended to every campaign.

    Whatever the seed, a campaign exercises all six pattern kinds, a
    materialized inner allocation (the preallocation trigger), a custom
    combiner, a depth-4 nest, and a level-0 reduce (the ``Split(k)``
    forcing case) — the acceptance floor of the harness.
    """
    return [
        ProgramSpec(kind="nest", levels=(LevelSpec("map"),), leaf="array",
                    label="t:map"),
        ProgramSpec(kind="nest", levels=(LevelSpec("map"), LevelSpec("zipwith")),
                    leaf="affine", label="t:zipwith"),
        ProgramSpec(kind="nest",
                    levels=(LevelSpec("map"),
                            LevelSpec("reduce", op="+", materialize=True)),
                    leaf="array", label="t:prealloc"),
        ProgramSpec(kind="nest", levels=(LevelSpec("reduce", op="+"),),
                    leaf="neighbor", label="t:reduce0"),
        ProgramSpec(kind="nest",
                    levels=(LevelSpec("map"), LevelSpec("reduce", op="custom")),
                    leaf="array", label="t:custom"),
        ProgramSpec(kind="nest",
                    levels=(LevelSpec("map"), LevelSpec("map"),
                            LevelSpec("reduce", op="max"),
                            LevelSpec("reduce", op="+")),
                    leaf="select", label="t:depth4"),
        ProgramSpec(kind="filter", pred="positive", leaf="array",
                    label="t:filter"),
        ProgramSpec(kind="groupby", key="mod", leaf="array", label="t:groupby"),
        ProgramSpec(kind="foreach",
                    foreach=ForeachSpec(depth=2, conditional=True, neighbor=True),
                    label="t:foreach"),
    ]
