"""Program specs: the generator's serializable description language.

A :class:`ProgramSpec` is a compact, JSON-round-trippable recipe for one
generated program.  The generator samples specs, the builder turns a spec
into pattern IR, and the shrinker edits specs (never raw IR) — so every
reduction step stays inside the space of well-formed programs by
construction, and a reproducer artifact can replay a failure from its spec
alone.

Spec shapes
-----------

``kind="nest"``
    A perfect (or ``let_vec``-materialized) nest: a run of ``map`` /
    ``zipwith`` levels followed by a run of ``reduce`` levels, depth 1–4.
    Validity rules (enforced by :meth:`ProgramSpec.validate`):

    * once a ``reduce`` appears, every deeper level is a ``reduce``
      (a Reduce body must be scalar);
    * ``zipwith`` only as the innermost level, only at position 1
      (it zips a matrix-row view against a second vector);
    * ``materialize`` only on the first reduce level, and only when a
      map level encloses it — the materialized temporary is the dynamic
      inner allocation that triggers the preallocation optimization.

``kind="filter"`` / ``kind="groupby"``
    A flat level-0 Filter/GroupBy over a vector with pure leaf
    expressions for the predicate/key/value (matching the shapes the
    CUDA lowering supports: atomic compaction / atomic scatter).

``kind="foreach"``
    An effectful Foreach nest (depth 1 or 2) writing an output array,
    optionally with a statement-level conditional and a neighbor read.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from ..errors import ReproError

#: Domain size per nest position when a spec does not override them.
DEFAULT_SIZES: Tuple[int, ...] = (6, 8, 4, 3)

LEVEL_KINDS = ("map", "zipwith", "reduce")
REDUCE_OPS = ("+", "max", "min", "custom")
LEAF_KINDS = ("affine", "array", "neighbor", "select")
PRED_KINDS = ("positive", "threshold", "index_even")
KEY_KINDS = ("mod", "halves", "sign")


class SpecError(ReproError):
    """An ill-formed program spec."""


@dataclass(frozen=True)
class LevelSpec:
    """One nest level of a ``kind="nest"`` spec."""

    kind: str = "map"
    op: str = "+"  # reduce operator; ignored for map/zipwith
    materialize: bool = False  # let_vec-materialize this reduce's input

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "op": self.op, "materialize": self.materialize}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LevelSpec":
        return cls(
            kind=data.get("kind", "map"),
            op=data.get("op", "+"),
            materialize=data.get("materialize", False),
        )


@dataclass(frozen=True)
class ForeachSpec:
    """Shape of a ``kind="foreach"`` spec's effectful nest."""

    depth: int = 1  # 1 (vector update) or 2 (matrix update)
    conditional: bool = False  # guard the store with an If statement
    neighbor: bool = False  # read a clamped-neighbor element

    def to_dict(self) -> Dict[str, Any]:
        return {
            "depth": self.depth,
            "conditional": self.conditional,
            "neighbor": self.neighbor,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ForeachSpec":
        return cls(
            depth=data.get("depth", 1),
            conditional=data.get("conditional", False),
            neighbor=data.get("neighbor", False),
        )


@dataclass(frozen=True)
class ProgramSpec:
    """A complete recipe for one generated program."""

    kind: str = "nest"
    levels: Tuple[LevelSpec, ...] = (LevelSpec("map"),)
    leaf: str = "affine"
    pred: str = "positive"  # filter predicate kind
    key: str = "mod"  # groupby key kind
    foreach: ForeachSpec = field(default_factory=ForeachSpec)
    sizes: Tuple[int, ...] = ()  # per-position domain overrides
    label: str = ""  # human-readable provenance (template name / seed)

    # -- shape helpers ----------------------------------------------------

    @property
    def depth(self) -> int:
        if self.kind == "nest":
            return len(self.levels)
        if self.kind == "foreach":
            return self.foreach.depth
        return 1

    def domain_sizes(self) -> Tuple[int, ...]:
        """The concrete domain size for each nest position."""
        sizes = tuple(self.sizes) + DEFAULT_SIZES[len(self.sizes):]
        return sizes[: max(self.depth, 2)]

    # -- validity ---------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`SpecError` unless the spec builds a valid program."""
        if self.kind in ("filter", "groupby"):
            if self.kind == "filter" and self.pred not in PRED_KINDS:
                raise SpecError(f"unknown filter predicate {self.pred!r}")
            if self.kind == "groupby" and self.key not in KEY_KINDS:
                raise SpecError(f"unknown groupby key {self.key!r}")
            if self.leaf not in LEAF_KINDS:
                raise SpecError(f"unknown leaf {self.leaf!r}")
            return
        if self.kind == "foreach":
            if self.foreach.depth not in (1, 2):
                raise SpecError("foreach depth must be 1 or 2")
            return
        if self.kind != "nest":
            raise SpecError(f"unknown program kind {self.kind!r}")
        if not 1 <= len(self.levels) <= 4:
            raise SpecError("nest depth must be between 1 and 4")
        if self.leaf not in LEAF_KINDS:
            raise SpecError(f"unknown leaf {self.leaf!r}")
        seen_reduce = False
        for pos, level in enumerate(self.levels):
            if level.kind not in LEVEL_KINDS:
                raise SpecError(f"unknown level kind {level.kind!r}")
            if level.kind == "reduce":
                if level.op not in REDUCE_OPS:
                    raise SpecError(f"unknown reduce op {level.op!r}")
                if level.materialize:
                    if seen_reduce:
                        raise SpecError("materialize only on the first reduce")
                    if pos == 0:
                        raise SpecError("materialize needs an enclosing map")
                seen_reduce = True
            else:
                if seen_reduce:
                    raise SpecError(f"{level.kind} below a reduce is invalid")
                if level.kind == "zipwith" and (
                    pos != 1 or pos != len(self.levels) - 1
                ):
                    raise SpecError("zipwith must be the innermost level at pos 1")

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind, "label": self.label}
        if self.kind == "nest":
            data["levels"] = [lv.to_dict() for lv in self.levels]
            data["leaf"] = self.leaf
        elif self.kind == "filter":
            data["pred"] = self.pred
            data["leaf"] = self.leaf
        elif self.kind == "groupby":
            data["key"] = self.key
            data["leaf"] = self.leaf
        elif self.kind == "foreach":
            data["foreach"] = self.foreach.to_dict()
        if self.sizes:
            data["sizes"] = list(self.sizes)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProgramSpec":
        spec = cls(
            kind=data.get("kind", "nest"),
            levels=tuple(
                LevelSpec.from_dict(lv) for lv in data.get("levels", [])
            )
            or (LevelSpec("map"),),
            leaf=data.get("leaf", "affine"),
            pred=data.get("pred", "positive"),
            key=data.get("key", "mod"),
            foreach=ForeachSpec.from_dict(data.get("foreach", {})),
            sizes=tuple(data.get("sizes", ())),
            label=data.get("label", ""),
        )
        spec.validate()
        return spec

    def with_label(self, label: str) -> "ProgramSpec":
        return replace(self, label=label)

    def describe(self) -> str:
        """One-line human summary (used in logs and artifacts)."""
        if self.kind == "nest":
            parts = []
            for level in self.levels:
                text = level.kind
                if level.kind == "reduce":
                    text += f"({level.op})"
                    if level.materialize:
                        text += "*mat"
                parts.append(text)
            return f"nest[{' > '.join(parts)}] leaf={self.leaf}"
        if self.kind == "filter":
            return f"filter pred={self.pred} leaf={self.leaf}"
        if self.kind == "groupby":
            return f"groupby key={self.key} leaf={self.leaf}"
        fe = self.foreach
        flags = []
        if fe.conditional:
            flags.append("cond")
        if fe.neighbor:
            flags.append("nbr")
        suffix = f" ({','.join(flags)})" if flags else ""
        return f"foreach depth={fe.depth}{suffix}"


def spec_key(spec: ProgramSpec) -> str:
    """A label-independent identity for dedup across shrink/replay."""
    import json

    data = spec.to_dict()
    data.pop("label", None)
    return json.dumps(data, sort_keys=True)
