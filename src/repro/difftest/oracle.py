"""The cross-strategy differential oracle for one program.

For a given spec (or raw program) the oracle checks, in order:

1. **Serialization round-trip** — ``loads(dumps(p))`` is alpha-equivalent
   to ``p`` (the reproducer format must be able to carry any generated
   program).
2. **Interpreter self-consistency** — the vectorized and per-iteration
   loop evaluation paths agree (tight-tolerance comparison; the two paths
   may sum floats in different orders).
3. **Strategy matrix** — the program compiles and runs under every named
   strategy ("multidim" plus the three fixed baselines) crossed with the
   optimization flags (all on / all off).  Results must be bit-identical
   to the vectorized interpreter; the chosen mapping must satisfy every
   hard constraint ("multidim" always; fixed baselines are *skipped*, not
   failed, when the nest is structurally outside their reach); the cost
   model must return finite, positive time; any ``Split(k)`` level must
   come with a non-empty combiner kernel.
4. **Split forcing** — an explicit ``Split(k)`` mapping is constructed
   for the first splittable level and pushed through the same checks,
   guaranteeing the combiner path is exercised even when the search
   would not choose it.
5. **Recipe replay** — the transformation recipe recorded by the default
   compile survives a JSON round-trip with a stable content digest, and
   replaying it pass-by-pass reproduces the LaunchPlans and CUDA
   byte-identically (``verify_recipe``).

Each violated check becomes a :class:`CheckFailure`; a program passes
when ``report.ok``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..analysis.mapping import Mapping, Split
from ..analysis.scoring import hard_feasible
from ..analysis.strategies import split_forcing
from ..errors import ReproError
from ..interp.evaluator import run_program
from ..ir.expr import Const, Param
from ..ir.patterns import Filter, Foreach, GroupBy, Map, Program, Reduce, ZipWith
from ..ir.serialize import dumps, loads
from ..ir.traversal import find_instances, structurally_equal
from ..ir.types import ArrayType, ScalarType
from ..optim.pipeline import OptimizationFlags
from ..runtime.session import GpuSession
from .specs import ProgramSpec

#: Strategies every program is pushed through (besides explicit mappings).
NAMED_STRATEGIES = ("multidim", "1d", "thread-block/thread", "warp-based")

#: Flag configurations: the paper's default and the full ablation baseline.
FLAG_CONFIGS: Tuple[Tuple[str, OptimizationFlags], ...] = (
    ("opt", OptimizationFlags.default()),
    ("noopt", OptimizationFlags.none()),
)


@dataclass
class CheckFailure:
    """One violated oracle check."""

    stage: str  # e.g. "interp", "strategy:multidim/opt", "split-forcing"
    message: str

    def __str__(self) -> str:
        return f"[{self.stage}] {self.message}"


@dataclass
class OracleReport:
    """Everything the oracle learned about one program."""

    program_name: str
    spec: Optional[ProgramSpec] = None
    failures: List[CheckFailure] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    #: Pattern kinds present in the program (lowercase class names).
    pattern_kinds: frozenset = frozenset()
    #: Some checked mapping used Split(k) (combiner path exercised).
    split_exercised: bool = False
    #: Some launch plan preallocated a dynamic inner allocation.
    prealloc_exercised: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def fail(self, stage: str, message: str) -> None:
        self.failures.append(CheckFailure(stage, message))

    def describe(self) -> str:
        lines = [f"program {self.program_name}: "
                 f"{'OK' if self.ok else f'{len(self.failures)} failure(s)'}"]
        lines.extend(f"  {f}" for f in self.failures)
        lines.extend(f"  skipped: {s}" for s in self.skipped)
        return "\n".join(lines)


# -- inputs ----------------------------------------------------------------


def make_inputs(program: Program, seed: int = 0) -> Dict[str, Any]:
    """Synthesize deterministic inputs for a program's parameter list.

    Sizes come from the program's size hints; array shapes are evaluated
    from ``array_shapes`` (parameters and constants).  Float arrays draw
    from ``uniform(-1, 2)`` so sign-based predicates see both branches.
    """
    rng = np.random.default_rng(seed)
    env = dict(program.size_hints)
    values: Dict[str, Any] = {}

    def eval_shape(expr: Any) -> int:
        if isinstance(expr, Const):
            return int(expr.value)
        if isinstance(expr, Param):
            try:
                return int(env[expr.name])
            except KeyError:
                raise ReproError(
                    f"array shape references size {expr.name!r} with no hint"
                )
        raise ReproError(
            f"cannot evaluate shape expression {type(expr).__name__}"
        )

    for param in program.params:
        if isinstance(param.ty, ArrayType):
            shape = tuple(
                eval_shape(e) for e in program.array_shapes[param.name]
            )
            if isinstance(param.ty.elem, ScalarType) and param.ty.elem.name in (
                "i32", "i64"
            ):
                values[param.name] = rng.integers(0, 8, size=shape)
            else:
                values[param.name] = rng.uniform(-1.0, 2.0, size=shape)
        elif param.name in env:
            values[param.name] = int(env[param.name])
        else:
            values[param.name] = 1.0
    return values


# -- result comparison -----------------------------------------------------


def _is_ragged(value: Any) -> bool:
    """True for a list/tuple whose elements have mismatched lengths
    (numpy refuses to build a regular array from those)."""
    if not isinstance(value, (list, tuple)):
        return False
    lengths = set()
    for item in value:
        if isinstance(item, (list, tuple)):
            lengths.add(len(item))
        elif isinstance(item, np.ndarray):
            lengths.add(item.shape[0] if item.ndim else -1)
        else:
            lengths.add(-1)
    return len(lengths) > 1


def results_equal(a: Any, b: Any, exact: bool = True) -> bool:
    """Structural comparison of interpreter outputs.

    Handles scalars, arrays, ragged lists (filter/groupBy output), dicts
    (groupBy), and ``None`` (foreach).  ``exact=False`` allows tiny
    floating-point drift for the vectorized-vs-loop comparison, where the
    two paths legally sum in different orders.
    """
    if isinstance(a, dict) or isinstance(b, dict):
        if not (isinstance(a, dict) and isinstance(b, dict)):
            return False
        if set(a.keys()) != set(b.keys()):
            return False
        return all(results_equal(a[k], b[k], exact) for k in a)
    if a is None or b is None:
        return a is None and b is None
    if _is_ragged(a) or _is_ragged(b):
        # Ragged nested output: compare element-wise.
        try:
            if len(a) != len(b):
                return False
        except TypeError:
            return False
        return all(results_equal(x, y, exact) for x, y in zip(a, b))
    a_arr, b_arr = np.asarray(a), np.asarray(b)
    if a_arr.dtype == object or b_arr.dtype == object:
        if len(a) != len(b):
            return False
        return all(results_equal(x, y, exact) for x, y in zip(a, b))
    if a_arr.shape != b_arr.shape:
        return False
    if exact:
        return bool(np.array_equal(a_arr, b_arr))
    return bool(
        np.allclose(
            a_arr.astype(float), b_arr.astype(float), rtol=1e-9, atol=1e-12
        )
    )


def _pattern_kinds(program: Program) -> frozenset:
    kinds = set()
    for cls, name in (
        (ZipWith, "zipwith"),
        (Foreach, "foreach"),
        (Filter, "filter"),
        (Reduce, "reduce"),
        (GroupBy, "groupby"),
    ):
        if find_instances(program.result, cls):
            kinds.add(name)
    # ZipWith is-a Map; count plain maps separately.
    if any(
        type(node) is Map for node in find_instances(program.result, Map)
    ):
        kinds.add("map")
    return frozenset(kinds)


def _mapping_uses_split(mapping: Mapping) -> bool:
    return any(isinstance(lm.span, Split) for lm in mapping.levels)


def _split_needs_combiner(mapping: Mapping, analysis: Any) -> bool:
    """True when Split(k) lands on a level holding a Reduce pattern.

    Only a split Reduce writes per-region partials that a combiner kernel
    must finish.  Filter/GroupBy synchronize through global atomics (no
    combiner), and a Split on a plain Map/Foreach level just chunks the
    domain.
    """
    reduce_levels = {
        pinfo.level
        for level_info in analysis.nest.levels
        for pinfo in level_info.patterns
        if isinstance(pinfo.pattern, Reduce)
    }
    return any(
        isinstance(lm.span, Split) and level in reduce_levels
        for level, lm in enumerate(mapping.levels)
    )


# -- the oracle ------------------------------------------------------------


def check_program(
    program: Program,
    spec: Optional[ProgramSpec] = None,
    seed: int = 0,
    run_split_forcing: bool = True,
) -> OracleReport:
    """Run the full differential check battery on one program."""
    report = OracleReport(
        program_name=program.name,
        spec=spec,
        pattern_kinds=_pattern_kinds(program),
    )

    # 1. serialization round-trip
    try:
        rebuilt = loads(dumps(program))
        if not structurally_equal(program.result, rebuilt.result):
            report.fail("serialize", "round-trip is not alpha-equivalent")
    except ReproError as exc:
        report.fail("serialize", f"round-trip raised: {exc}")

    # 2. interpreter self-consistency (loop path is the ground truth:
    #    it follows the IR one iteration at a time with no rewrites)
    inputs = make_inputs(program, seed=seed)
    try:
        loop_inputs = copy.deepcopy(inputs)
        loop_result = run_program(
            program, seed=seed, vectorize=False, **loop_inputs
        )
    except ReproError as exc:
        report.fail("interp", f"loop path raised: {exc}")
        return report
    try:
        vec_inputs = copy.deepcopy(inputs)
        vec_result = run_program(
            program, seed=seed, vectorize=True, **vec_inputs
        )
    except ReproError as exc:
        report.fail("interp", f"vectorized path raised: {exc}")
        return report
    if not results_equal(loop_result, vec_result, exact=False):
        report.fail("interp", "vectorized and loop paths disagree")
    if not results_equal(loop_inputs, vec_inputs, exact=False):
        report.fail("interp", "paths mutated inputs differently")

    # 3. named strategies x optimization flags
    for strategy in NAMED_STRATEGIES:
        for flag_name, flags in FLAG_CONFIGS:
            _check_strategy(
                program, strategy, flags, f"strategy:{strategy}/{flag_name}",
                vec_result, vec_inputs, inputs, seed, report,
            )

    # 4. explicit Split(k) forcing
    if run_split_forcing:
        _check_split_forcing(
            program, vec_result, vec_inputs, inputs, seed, report
        )

    # 5. recipe round-trip + byte-identical replay
    _check_recipe(program, report)

    return report


def check_spec(
    spec: ProgramSpec, seed: int = 0, run_split_forcing: bool = True
) -> OracleReport:
    """Build a spec's program and run the oracle on it."""
    from .generator import build_program

    try:
        program = build_program(spec)
    except ReproError as exc:
        report = OracleReport(program_name=f"<unbuildable:{spec.describe()}>",
                              spec=spec)
        report.fail("build", f"spec did not build: {exc}")
        return report
    return check_program(
        program, spec=spec, seed=seed, run_split_forcing=run_split_forcing
    )


def _check_strategy(
    program: Program,
    strategy: Any,
    flags: OptimizationFlags,
    stage: str,
    expected: Any,
    expected_inputs: Dict[str, Any],
    inputs: Dict[str, Any],
    seed: int,
    report: OracleReport,
    require_feasible: bool = False,
) -> None:
    """Compile + run one (strategy, flags) cell and record violations."""
    try:
        session = GpuSession(strategy=strategy, flags=flags)
        compiled = session.compile(program)
    except ReproError as exc:
        if isinstance(strategy, str) and strategy != "multidim":
            # Fixed baselines legitimately reject some nests (e.g. a
            # mapping shallower than the nest); record, don't fail.
            report.skipped.append(f"{stage}: {exc}")
            return
        report.fail(stage, f"compilation raised: {exc}")
        return

    # hard-constraint satisfaction
    strict = require_feasible or strategy == "multidim" or isinstance(
        strategy, Mapping
    )
    for i, decision in enumerate(compiled.decisions):
        feasible = hard_feasible(
            decision.mapping,
            decision.analysis.constraints,
            decision.analysis.level_sizes(),
        )
        if feasible:
            continue
        if strict:
            report.fail(
                stage,
                f"kernel {i} mapping {decision.mapping} violates a hard "
                "constraint",
            )
            return
        report.skipped.append(
            f"{stage}: kernel {i} infeasible under fixed baseline"
        )
        return

    # codegen sanity: a Split(k) on a reducing level must come with a
    # combiner kernel (Split elsewhere just chunks the domain).
    for decision, kernel in zip(compiled.decisions, compiled.module.kernels):
        if _mapping_uses_split(decision.mapping):
            report.split_exercised = True
        if _split_needs_combiner(decision.mapping, decision.analysis):
            if not kernel.combiner_source:
                report.fail(
                    stage,
                    f"mapping {decision.mapping} uses Split(k) on a "
                    f"reducing level but kernel {kernel.name} has no "
                    "combiner kernel",
                )
            elif "_combine" not in compiled.module.source:
                report.fail(
                    stage,
                    "combiner kernel missing from the module source",
                )
    if not compiled.module.source.strip():
        report.fail(stage, "empty generated module")
    if any(
        dict(decision.plan.layout_strides) for decision in compiled.decisions
    ):
        report.prealloc_exercised = True

    # execution agrees bit-for-bit with the interpreter
    try:
        run_inputs = copy.deepcopy(inputs)
        result = compiled.run(seed=seed, **run_inputs)
    except ReproError as exc:
        report.fail(stage, f"execution raised: {exc}")
        return
    if not results_equal(expected, result, exact=True):
        report.fail(stage, "result differs from the interpreter")
    if not results_equal(expected_inputs, run_inputs, exact=True):
        report.fail(stage, "input mutation differs from the interpreter")

    # finite positive cost
    try:
        cost = compiled.estimate_cost()
    except ReproError as exc:
        report.fail(stage, f"cost model raised: {exc}")
        return
    bad = cost.check_finite()
    if bad:
        report.fail(stage, f"non-finite cost components: {', '.join(bad)}")
    elif cost.total_us <= 0:
        report.fail(stage, f"cost model returned {cost.total_us} us")


def _check_split_forcing(
    program: Program,
    expected: Any,
    expected_inputs: Dict[str, Any],
    inputs: Dict[str, Any],
    seed: int,
    report: OracleReport,
) -> None:
    """Force Split(k) on the first splittable level, when one exists."""
    from ..analysis.analyzer import analyze_program

    try:
        analysis = analyze_program(program)
    except ReproError as exc:
        report.fail("split-forcing", f"analysis raised: {exc}")
        return
    if len(analysis.kernels) != 1:
        report.skipped.append(
            "split-forcing: program has multiple kernels"
        )
        return
    kernel = analysis.kernels[0]
    sizes = kernel.level_sizes()
    splittable = kernel.constraints.span_all_levels()
    level = None
    # Prefer a level with a splittable sync constraint (the combiner is
    # mandatory there); otherwise any unconstrained level.
    for lvl, ok in sorted(splittable.items()):
        if ok:
            level = lvl
            break
    if level is None:
        for lvl in range(kernel.depth):
            if lvl not in splittable:
                level = lvl
                break
    if level is None:
        report.skipped.append("split-forcing: no splittable level")
        return
    k = 2 if sizes[level] >= 2 else 1
    if k < 2:
        report.skipped.append("split-forcing: domain too small to split")
        return
    try:
        mapping = split_forcing(sizes, level, k=k, block_size=64)
    except ReproError as exc:
        report.fail("split-forcing", f"mapping construction raised: {exc}")
        return
    if not hard_feasible(mapping, kernel.constraints, sizes):
        report.skipped.append(
            f"split-forcing: {mapping} infeasible at level {level}"
        )
        return
    _check_strategy(
        program, mapping, OptimizationFlags.default(), "split-forcing",
        expected, expected_inputs, inputs, seed, report,
        require_feasible=True,
    )


def _check_recipe(program: Program, report: OracleReport) -> None:
    """Recipe round-trip + replay: the recorded pass pipeline must
    survive JSON serialization and reproduce the compile byte-for-byte."""
    import json

    from ..optim.passes.recipe import Recipe, verify_recipe

    try:
        session = GpuSession(
            strategy="multidim", flags=OptimizationFlags.default()
        )
        compiled = session.compile(program)
        recipe = compiled.recipe()
    except ReproError as exc:
        report.fail("recipe", f"recipe construction raised: {exc}")
        return

    try:
        rebuilt = Recipe.from_json(json.loads(json.dumps(recipe.to_json())))
    except (ReproError, ValueError, KeyError, TypeError) as exc:
        report.fail("recipe", f"JSON round-trip raised: {exc}")
        return
    if rebuilt.content_digest() != recipe.content_digest():
        report.fail(
            "recipe",
            "content digest changed across the JSON round-trip: "
            f"{recipe.content_digest()[:12]} != "
            f"{rebuilt.content_digest()[:12]}",
        )
        return

    try:
        summary = verify_recipe(program, rebuilt)
    except ReproError as exc:
        report.fail("recipe", f"replay diverged: {exc}")
        return
    if summary.get("skipped_degraded"):
        report.skipped.append(
            f"recipe: {summary['skipped_degraded']} degraded kernel(s) "
            "not replayed"
        )
