"""Greedy spec-level reduction of failing programs.

The shrinker never edits raw IR: it edits the *spec* and rebuilds, so
every candidate is a well-formed program by construction (ill-formed
candidates are rejected by ``spec.validate()`` and skipped).  Reduction
is greedy-to-fixpoint over a fixed candidate order, from coarsest
(drop a whole nest level) to finest (simplify the leaf expression), and
a candidate is kept only when the caller's predicate confirms the
failure still reproduces — the classic delta-debugging loop, specialized
to our tiny description language.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Tuple

from .specs import ForeachSpec, LevelSpec, ProgramSpec, SpecError, spec_key


def _candidates(spec: ProgramSpec) -> List[ProgramSpec]:
    """Simplification candidates, coarsest first."""
    out: List[ProgramSpec] = []
    if spec.kind == "nest":
        # Drop one level (outermost-first: deeper programs shrink fastest).
        for i in range(len(spec.levels)):
            out.append(
                replace(
                    spec, levels=spec.levels[:i] + spec.levels[i + 1:]
                )
            )
        # Demote a zipwith to a plain map.
        for i, level in enumerate(spec.levels):
            if level.kind == "zipwith":
                out.append(_with_level(spec, i, LevelSpec("map")))
        # Un-materialize / simplify reduce operators.
        for i, level in enumerate(spec.levels):
            if level.kind == "reduce" and level.materialize:
                out.append(
                    _with_level(spec, i, replace(level, materialize=False))
                )
            if level.kind == "reduce" and level.op != "+":
                out.append(_with_level(spec, i, replace(level, op="+")))
        if spec.leaf != "affine":
            out.append(replace(spec, leaf="affine"))
    elif spec.kind == "filter":
        if spec.pred != "positive":
            out.append(replace(spec, pred="positive"))
        if spec.leaf != "affine":
            out.append(replace(spec, leaf="affine"))
        # A filter failure that persists as a plain map is a map failure.
        out.append(
            replace(spec, kind="nest", levels=(LevelSpec("map"),), leaf=spec.leaf)
        )
    elif spec.kind == "groupby":
        if spec.key != "mod":
            out.append(replace(spec, key="mod"))
        if spec.leaf != "affine":
            out.append(replace(spec, leaf="affine"))
        out.append(
            replace(spec, kind="nest", levels=(LevelSpec("map"),), leaf=spec.leaf)
        )
    elif spec.kind == "foreach":
        fe = spec.foreach
        if fe.depth > 1:
            out.append(replace(spec, foreach=replace(fe, depth=1)))
        if fe.conditional:
            out.append(replace(spec, foreach=replace(fe, conditional=False)))
        if fe.neighbor:
            out.append(replace(spec, foreach=replace(fe, neighbor=False)))
    if spec.sizes:
        out.append(replace(spec, sizes=()))
    return out


def _with_level(
    spec: ProgramSpec, index: int, level: LevelSpec
) -> ProgramSpec:
    levels = list(spec.levels)
    levels[index] = level
    return replace(spec, levels=tuple(levels))


def shrink_spec(
    spec: ProgramSpec,
    still_fails: Callable[[ProgramSpec], bool],
    max_checks: int = 200,
) -> Tuple[ProgramSpec, int]:
    """Reduce ``spec`` while ``still_fails`` holds.

    Returns the smallest failing spec found and the number of predicate
    evaluations spent.  ``still_fails`` is never called on the input spec
    itself — the caller has already established that it fails.
    """
    current = spec
    checks = 0
    tried = {spec_key(spec)}
    progress = True
    while progress and checks < max_checks:
        progress = False
        for candidate in _candidates(current):
            key = spec_key(candidate)
            if key in tried:
                continue
            tried.add(key)
            try:
                candidate.validate()
            except SpecError:
                continue
            checks += 1
            if checks > max_checks:
                break
            if still_fails(candidate):
                current = replace(candidate, label=current.label)
                progress = True
                break  # restart from the smaller spec's candidate list
    return current, checks
