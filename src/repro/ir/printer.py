"""Human-readable pretty printer for IR trees.

The output is a stable, indented text form used in documentation, debug
logging, and golden tests.  It is intentionally close to the paper's
pseudocode style (Figure 5)::

    map(i < R) {
      reduce(j < C, +) {
        m[i, j]
      }
    }
"""

from __future__ import annotations

from typing import List

from .expr import (
    Alloc,
    ArrayRead,
    BinOp,
    Bind,
    Block,
    Call,
    Cast,
    Cmp,
    Const,
    ExprStmt,
    FieldRead,
    If,
    Length,
    Node,
    Param,
    RandomIndex,
    Select,
    Store,
    UnOp,
    Var,
)
from .patterns import Filter, Foreach, GroupBy, Map, Program, Reduce, ZipWith

_INDENT = "  "


def pretty(node: Node) -> str:
    """Render any IR node to indented text."""
    lines: List[str] = []
    _emit(node, lines, 0)
    return "\n".join(lines)


def pretty_program(program: Program) -> str:
    """Render a full program: header with params, then the result tree."""
    header = f"program {program.name}(" + ", ".join(
        f"{p.name}: {p.ty}" for p in program.params
    ) + ")"
    return header + "\n" + pretty(program.result)


def _inline(node: Node) -> str:
    """Render an expression on one line (no patterns/blocks inside)."""
    if isinstance(node, Const):
        return repr(node.value) if isinstance(node.value, bool) else str(node.value)
    if isinstance(node, (Var, Param)):
        return node.name
    if isinstance(node, RandomIndex):
        return f"rand({_inline(node.size)})"
    if isinstance(node, BinOp):
        if node.op in ("min", "max"):
            return f"{node.op}({_inline(node.lhs)}, {_inline(node.rhs)})"
        return f"({_inline(node.lhs)} {node.op} {_inline(node.rhs)})"
    if isinstance(node, UnOp):
        return f"({node.op} {_inline(node.operand)})"
    if isinstance(node, Cmp):
        return f"({_inline(node.lhs)} {node.op} {_inline(node.rhs)})"
    if isinstance(node, Select):
        return (
            f"({_inline(node.cond)} ? {_inline(node.if_true)}"
            f" : {_inline(node.if_false)})"
        )
    if isinstance(node, Call):
        return f"{node.fn}(" + ", ".join(_inline(a) for a in node.args) + ")"
    from .functions import FnCall

    if isinstance(node, FnCall):
        return f"{node.name}(" + ", ".join(_inline(a) for a in node.args) + ")"
    if isinstance(node, Cast):
        return f"{node.ty}({_inline(node.operand)})"
    if isinstance(node, ArrayRead):
        return f"{_inline(node.array)}[" + ", ".join(
            _inline(i) for i in node.indices
        ) + "]"
    if isinstance(node, FieldRead):
        return f"{_inline(node.struct)}.{node.field_name}"
    if isinstance(node, Length):
        return f"len({_inline(node.array)}, {node.axis})"
    if isinstance(node, Alloc):
        return f"alloc[{node.elem}](" + ", ".join(_inline(s) for s in node.shape) + ")"
    return f"<{type(node).__name__}>"


def _is_inline(node: Node) -> bool:
    from .patterns import PatternExpr

    return not any(
        isinstance(n, (PatternExpr, Block))
        for n in _walk_shallow(node)
    )


def _walk_shallow(node: Node):
    yield node
    for child in node.children():
        yield from _walk_shallow(child)


def _emit(node: Node, lines: List[str], depth: int) -> None:
    pad = _INDENT * depth
    if isinstance(node, Map):
        kind = "zipWith" if isinstance(node, ZipWith) else "map"
        lines.append(f"{pad}{kind}({node.index.name} < {_inline(node.size)}) {{")
        _emit(node.body, lines, depth + 1)
        lines.append(f"{pad}}}")
    elif isinstance(node, Reduce):
        op = node.op
        lines.append(f"{pad}reduce({node.index.name} < {_inline(node.size)}, {op}) {{")
        _emit(node.body, lines, depth + 1)
        lines.append(f"{pad}}}")
    elif isinstance(node, Filter):
        lines.append(f"{pad}filter({node.index.name} < {_inline(node.size)}) {{")
        lines.append(f"{pad}{_INDENT}pred:")
        _emit(node.pred, lines, depth + 2)
        lines.append(f"{pad}{_INDENT}value:")
        _emit(node.value, lines, depth + 2)
        lines.append(f"{pad}}}")
    elif isinstance(node, GroupBy):
        lines.append(f"{pad}groupBy({node.index.name} < {_inline(node.size)}) {{")
        lines.append(f"{pad}{_INDENT}key:")
        _emit(node.key, lines, depth + 2)
        lines.append(f"{pad}{_INDENT}value:")
        _emit(node.value, lines, depth + 2)
        lines.append(f"{pad}}}")
    elif isinstance(node, Foreach):
        lines.append(f"{pad}foreach({node.index.name} < {_inline(node.size)}) {{")
        for stmt in node.body:
            _emit(stmt, lines, depth + 1)
        lines.append(f"{pad}}}")
    elif isinstance(node, Block):
        for stmt in node.stmts:
            _emit(stmt, lines, depth)
        _emit(node.result, lines, depth)
    elif isinstance(node, Bind):
        if _is_inline(node.value):
            lines.append(f"{pad}{node.var.name} = {_inline(node.value)}")
        else:
            lines.append(f"{pad}{node.var.name} =")
            _emit(node.value, lines, depth + 1)
    elif isinstance(node, Store):
        target = f"{_inline(node.array)}[" + ", ".join(
            _inline(i) for i in node.indices
        ) + "]"
        lines.append(f"{pad}{target} := {_inline(node.value)}")
    elif isinstance(node, If):
        lines.append(f"{pad}if {_inline(node.cond)} (p={node.prob}) {{")
        for stmt in node.then:
            _emit(stmt, lines, depth + 1)
        if node.otherwise:
            lines.append(f"{pad}}} else {{")
            for stmt in node.otherwise:
                _emit(stmt, lines, depth + 1)
        lines.append(f"{pad}}}")
    elif isinstance(node, ExprStmt):
        _emit(node.expr, lines, depth)
    elif _is_inline(node):
        lines.append(f"{pad}{_inline(node)}")
    else:
        if isinstance(node, Select):
            lines.append(f"{pad}select {_inline(node.cond)}")
            _emit(node.if_true, lines, depth + 1)
            _emit(node.if_false, lines, depth + 1)
        else:
            lines.append(f"{pad}<{type(node).__name__}>")
            for child in node.children():
                _emit(child, lines, depth + 1)
