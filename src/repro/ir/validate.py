"""Well-formedness validation for IR trees and programs.

Validation runs before analysis and codegen so later stages can assume a
clean tree.  Checks:

* every :class:`~repro.ir.expr.Var` occurrence is bound (by an enclosing
  pattern index, a custom-combiner binder, or an earlier ``Bind``);
* size expressions are integer-typed and contain no pattern nodes;
* custom reduce combiners reference only their two binders;
* program parameters are uniquely named and every free variable of the
  result is a parameter.
"""

from __future__ import annotations


from ..errors import ValidationError
from .expr import Bind, Block, Expr, Node, Var
from .patterns import PatternExpr, Program, Reduce
from .traversal import find_instances, walk


def validate_program(program: Program) -> None:
    """Validate a full program; raises :class:`ValidationError` on failure."""
    names = [p.name for p in program.params]
    if len(set(names)) != len(names):
        raise ValidationError(f"duplicate parameter names in {program.name}: {names}")
    bound = frozenset(names)
    _validate_node(program.result, bound, program.name)


def validate_expr(expr: Expr) -> None:
    """Validate a bare expression with no externally bound variables."""
    _validate_node(expr, frozenset(), "<expr>")


def _validate_node(node: Node, bound: frozenset, context: str) -> None:
    if isinstance(node, Var):
        if node.name not in bound:
            raise ValidationError(
                f"{context}: unbound variable {node.name!r}"
            )
        return
    if isinstance(node, PatternExpr):
        _validate_size(node, context)
        inner = bound | {node.index.name}
        if isinstance(node, Reduce) and node.combine is not None:
            lhs, rhs, body = node.combine
            combiner_bound = frozenset({lhs.name, rhs.name})
            for sub in walk(body):
                if isinstance(sub, Var) and sub.name not in combiner_bound:
                    raise ValidationError(
                        f"{context}: reduce combiner references {sub.name!r}; "
                        "combiners may only use their two binders"
                    )
            _validate_node(node.size, bound, context)
            _validate_node(node.body, inner, context)
            return
        _validate_node(node.size, bound, context)
        for body_node in node.body_nodes():
            _validate_block_aware(body_node, inner, context)
        return
    _validate_block_aware(node, bound, context)


def _validate_block_aware(node: Node, bound: frozenset, context: str) -> None:
    if isinstance(node, Block):
        inner = bound
        for stmt in node.stmts:
            if isinstance(stmt, Bind):
                _validate_node(stmt.value, inner, context)
                inner = inner | {stmt.var.name}
            else:
                _validate_node(stmt, inner, context)
        _validate_node(node.result, inner, context)
        return
    if isinstance(node, (Var, PatternExpr)):
        _validate_node(node, bound, context)
        return
    for child in node.children():
        _validate_node(child, bound, context)


def _validate_size(pattern: PatternExpr, context: str) -> None:
    from .types import ScalarType

    size_ty = pattern.size.ty
    if not isinstance(size_ty, ScalarType) or not size_ty.is_integer:
        raise ValidationError(
            f"{context}: pattern size must be integer-typed, got {size_ty}"
        )
    if find_instances(pattern.size, PatternExpr):
        raise ValidationError(
            f"{context}: pattern size expression may not contain patterns"
        )
    static = pattern.static_size
    if static is not None and static < 0:
        raise ValidationError(f"{context}: negative pattern size {static}")
