"""Expression and statement nodes of the pattern IR.

The IR follows the paper's Section III: programs are trees of basic
sequential expressions (arithmetic, comparisons, conditionals, array and
struct accesses, allocations) with parallel-pattern nodes
(:mod:`repro.ir.patterns`) embedded anywhere an expression may appear.

Nodes use *identity* equality (two structurally identical reads are distinct
occurrences) because the analysis attaches per-occurrence metadata such as
execution counts and branch discounts.  Structural comparison for tests is
provided by :func:`repro.ir.traversal.structurally_equal`.
"""

from __future__ import annotations

from dataclasses import field
from typing import Optional, Sequence, Tuple, Union

from ..errors import IRError, TypeMismatchError
from .types import (
    BOOL,
    F64,
    I64,
    ArrayType,
    ScalarType,
    StructType,
    Type,
    common_scalar,
)

#: Binary arithmetic operators supported by :class:`BinOp`.
ARITH_OPS = ("+", "-", "*", "/", "%", "//", "min", "max", "&", "|", "^")

#: Comparison operators supported by :class:`Cmp`.
CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")

#: Intrinsic math functions supported by :class:`Call`.
INTRINSICS = (
    "sqrt",
    "exp",
    "log",
    "pow",
    "abs",
    "floor",
    "ceil",
    "sin",
    "cos",
    "tanh",
)


class Node:
    """Common base for every IR node (expressions, statements, patterns)."""

    def children(self) -> Tuple["Node", ...]:
        """The direct sub-nodes, in evaluation order."""
        raise NotImplementedError

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


class Expr(Node):
    """Base for nodes that produce a value; every Expr has a type."""

    @property
    def ty(self) -> Type:
        raise NotImplementedError


class Stmt(Node):
    """Base for effectful statements (used inside blocks and Foreach)."""


# ---------------------------------------------------------------------------
# Leaf expressions
# ---------------------------------------------------------------------------


class Const(Expr):
    """A compile-time constant scalar."""

    def __init__(self, value: Union[int, float, bool], ty: Optional[ScalarType] = None):
        if ty is None:
            if isinstance(value, bool):
                ty = BOOL
            elif isinstance(value, int):
                ty = I64
            elif isinstance(value, float):
                ty = F64
            else:
                raise TypeMismatchError(f"unsupported constant {value!r}")
        self.value = value
        self._ty = ty

    @property
    def ty(self) -> Type:
        return self._ty

    def children(self) -> Tuple[Node, ...]:
        return ()

    def __repr__(self) -> str:
        return f"Const({self.value})"


class Var(Expr):
    """A reference to a bound variable (pattern index or let-binding)."""

    def __init__(self, name: str, ty: Type):
        self.name = name
        self._ty = ty

    @property
    def ty(self) -> Type:
        return self._ty

    def children(self) -> Tuple[Node, ...]:
        return ()

    def __repr__(self) -> str:
        return f"Var({self.name})"


class Param(Expr):
    """A program input (array, struct, or scalar such as a size)."""

    def __init__(self, name: str, ty: Type):
        self.name = name
        self._ty = ty

    @property
    def ty(self) -> Type:
        return self._ty

    def children(self) -> Tuple[Node, ...]:
        return ()

    def __repr__(self) -> str:
        return f"Param({self.name}: {self.ty})"


class RandomIndex(Expr):
    """A uniformly random index in ``[0, size)``.

    Models stochastic access patterns (e.g. QPSCD HogWild!'s random row
    selection).  The access analysis treats any index containing this node
    as *random*, which is precisely the property that defeats coalescing.
    """

    def __init__(self, size: Expr, seed_hint: int = 0):
        self.size = size
        self.seed_hint = seed_hint

    @property
    def ty(self) -> Type:
        return I64

    def children(self) -> Tuple[Node, ...]:
        return (self.size,)

    def __repr__(self) -> str:
        return "RandomIndex()"


# ---------------------------------------------------------------------------
# Compound expressions
# ---------------------------------------------------------------------------


class BinOp(Expr):
    """Binary arithmetic over scalars, with C-like type promotion."""

    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        if op not in ARITH_OPS:
            raise IRError(f"unknown binary operator {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        self._ty = common_scalar(lhs.ty, rhs.ty)
        if op == "/" and isinstance(self._ty, ScalarType) and self._ty.is_integer:
            # True division always yields a float, as in Python / NumPy.
            self._ty = F64

    @property
    def ty(self) -> Type:
        return self._ty

    def children(self) -> Tuple[Node, ...]:
        return (self.lhs, self.rhs)

    def __repr__(self) -> str:
        return f"BinOp({self.op})"


class UnOp(Expr):
    """Unary negation / logical not."""

    def __init__(self, op: str, operand: Expr):
        if op not in ("-", "not"):
            raise IRError(f"unknown unary operator {op!r}")
        if op == "not" and operand.ty != BOOL:
            raise TypeMismatchError("'not' requires a bool operand")
        self.op = op
        self.operand = operand

    @property
    def ty(self) -> Type:
        return self.operand.ty

    def children(self) -> Tuple[Node, ...]:
        return (self.operand,)


class Cmp(Expr):
    """Comparison producing a bool."""

    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        if op not in CMP_OPS:
            raise IRError(f"unknown comparison operator {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    @property
    def ty(self) -> Type:
        return BOOL

    def children(self) -> Tuple[Node, ...]:
        return (self.lhs, self.rhs)


class Select(Expr):
    """A pure conditional expression ``cond ? if_true : if_false``.

    ``prob`` is the static estimate of the probability that ``cond`` holds;
    the constraint-weight derivation discounts accesses under a branch by it
    (Section IV-C).
    """

    def __init__(self, cond: Expr, if_true: Expr, if_false: Expr, prob: float = 0.5):
        if cond.ty != BOOL:
            raise TypeMismatchError("Select condition must be bool")
        if not 0.0 <= prob <= 1.0:
            raise IRError(f"branch probability must be in [0,1], got {prob}")
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false
        self.prob = prob
        if isinstance(if_true.ty, ScalarType) and isinstance(if_false.ty, ScalarType):
            self._ty: Type = common_scalar(if_true.ty, if_false.ty)
        elif if_true.ty == if_false.ty:
            self._ty = if_true.ty
        else:
            raise TypeMismatchError(
                f"Select branches disagree: {if_true.ty} vs {if_false.ty}"
            )

    @property
    def ty(self) -> Type:
        return self._ty

    def children(self) -> Tuple[Node, ...]:
        return (self.cond, self.if_true, self.if_false)


class Call(Expr):
    """An intrinsic math function call."""

    def __init__(self, fn: str, args: Sequence[Expr]):
        if fn not in INTRINSICS:
            raise IRError(f"unknown intrinsic {fn!r}")
        arity = 2 if fn == "pow" else 1
        if len(args) != arity:
            raise IRError(f"intrinsic {fn} takes {arity} argument(s), got {len(args)}")
        self.fn = fn
        self.args = tuple(args)
        result = self.args[0].ty
        if fn in ("sqrt", "exp", "log", "sin", "cos", "tanh", "pow") and isinstance(
            result, ScalarType
        ) and not result.is_float:
            result = F64
        self._ty = result

    @property
    def ty(self) -> Type:
        return self._ty

    def children(self) -> Tuple[Node, ...]:
        return self.args


class Cast(Expr):
    """Explicit scalar conversion."""

    def __init__(self, operand: Expr, ty: ScalarType):
        if not isinstance(operand.ty, ScalarType):
            raise TypeMismatchError("can only cast scalars")
        self.operand = operand
        self._ty = ty

    @property
    def ty(self) -> Type:
        return self._ty

    def children(self) -> Tuple[Node, ...]:
        return (self.operand,)


class ArrayRead(Expr):
    """Read one element of an array: ``array[indices...]``.

    The number of indices must match the array rank; linearization into a
    physical offset is a codegen/layout concern, not an IR concern.
    """

    def __init__(self, array: Expr, indices: Sequence[Expr]):
        aty = array.ty
        if not isinstance(aty, ArrayType):
            raise TypeMismatchError(f"cannot index non-array of type {aty}")
        if len(indices) != aty.rank:
            raise TypeMismatchError(
                f"rank-{aty.rank} array indexed with {len(indices)} indices"
            )
        self.array = array
        self.indices = tuple(indices)

    @property
    def ty(self) -> Type:
        return self.array.ty.elem  # type: ignore[union-attr]

    def children(self) -> Tuple[Node, ...]:
        return (self.array, *self.indices)

    def __repr__(self) -> str:
        return f"ArrayRead(rank={len(self.indices)})"


class FieldRead(Expr):
    """Read one field of a struct value."""

    def __init__(self, struct: Expr, field_name: str):
        sty = struct.ty
        if not isinstance(sty, StructType):
            raise TypeMismatchError(f"cannot read field of non-struct {sty}")
        self.struct = struct
        self.field_name = field_name
        self._ty = sty.field_type(field_name)

    @property
    def ty(self) -> Type:
        return self._ty

    def children(self) -> Tuple[Node, ...]:
        return (self.struct,)


class Length(Expr):
    """The extent of one axis of an array."""

    def __init__(self, array: Expr, axis: int = 0):
        aty = array.ty
        if not isinstance(aty, ArrayType):
            raise TypeMismatchError(f"Length of non-array {aty}")
        if not 0 <= axis < aty.rank:
            raise IRError(f"axis {axis} out of range for rank-{aty.rank} array")
        self.array = array
        self.axis = axis

    @property
    def ty(self) -> Type:
        return I64

    def children(self) -> Tuple[Node, ...]:
        return (self.array,)


class Alloc(Expr):
    """Allocate a fresh array of the given element type and shape.

    When an ``Alloc`` (or a materialized inner pattern) occurs inside an
    outer pattern body, every parallel instance performs a dynamic
    allocation — the exact overhead the preallocation optimization
    (Section V-A) removes.
    """

    def __init__(self, elem: Type, shape: Sequence[Expr]):
        if not shape:
            raise IRError("Alloc requires at least one extent")
        self.elem = elem
        self.shape = tuple(shape)

    @property
    def ty(self) -> Type:
        return ArrayType(self.elem, len(self.shape))

    def children(self) -> Tuple[Node, ...]:
        return self.shape


# ---------------------------------------------------------------------------
# Statements and blocks
# ---------------------------------------------------------------------------


class Bind(Stmt):
    """A pure let-binding: evaluate ``value`` once, name it ``var``."""

    def __init__(self, var: Var, value: Expr):
        self.var = var
        self.value = value

    def children(self) -> Tuple[Node, ...]:
        return (self.value,)

    def __repr__(self) -> str:
        return f"Bind({self.var.name})"


class Store(Stmt):
    """An effectful element write: ``array[indices...] = value``."""

    def __init__(self, array: Expr, indices: Sequence[Expr], value: Expr):
        aty = array.ty
        if not isinstance(aty, ArrayType):
            raise TypeMismatchError(f"cannot store into non-array {aty}")
        if len(indices) != aty.rank:
            raise TypeMismatchError(
                f"rank-{aty.rank} array stored with {len(indices)} indices"
            )
        self.array = array
        self.indices = tuple(indices)
        self.value = value

    def children(self) -> Tuple[Node, ...]:
        return (self.array, *self.indices, self.value)


class If(Stmt):
    """A statement-level conditional with a static taken-probability."""

    def __init__(
        self,
        cond: Expr,
        then: Sequence[Stmt],
        otherwise: Sequence[Stmt] = (),
        prob: float = 0.5,
    ):
        if cond.ty != BOOL:
            raise TypeMismatchError("If condition must be bool")
        if not 0.0 <= prob <= 1.0:
            raise IRError(f"branch probability must be in [0,1], got {prob}")
        self.cond = cond
        self.then = tuple(then)
        self.otherwise = tuple(otherwise)
        self.prob = prob

    def children(self) -> Tuple[Node, ...]:
        return (self.cond, *self.then, *self.otherwise)


class ExprStmt(Stmt):
    """Evaluate an expression for its effect (e.g. a nested Foreach)."""

    def __init__(self, expr: Expr):
        self.expr = expr

    def children(self) -> Tuple[Node, ...]:
        return (self.expr,)


class Block(Expr):
    """A sequence of statements followed by a result expression.

    Blocks are how imperfect nesting is expressed: statements before the
    trailing pattern are the "memory accesses outside the innermost
    pattern" that drive the shared-memory optimization (Section V-B).
    """

    def __init__(self, stmts: Sequence[Stmt], result: Expr):
        self.stmts = tuple(stmts)
        self.result = result

    @property
    def ty(self) -> Type:
        return self.result.ty

    def children(self) -> Tuple[Node, ...]:
        return (*self.stmts, self.result)

    def __repr__(self) -> str:
        return f"Block({len(self.stmts)} stmts)"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def const(value: Union[int, float, bool], ty: Optional[ScalarType] = None) -> Const:
    """Shorthand for :class:`Const`."""
    return Const(value, ty)


def add(lhs: Expr, rhs: Expr) -> BinOp:
    return BinOp("+", lhs, rhs)


def sub(lhs: Expr, rhs: Expr) -> BinOp:
    return BinOp("-", lhs, rhs)


def mul(lhs: Expr, rhs: Expr) -> BinOp:
    return BinOp("*", lhs, rhs)


def div(lhs: Expr, rhs: Expr) -> BinOp:
    return BinOp("/", lhs, rhs)
