"""JSON serialization for IR trees and programs.

The differential-testing harness stores failing programs as *replayable
artifacts*: a reproducer file carries the serialized program alongside the
generator spec that produced it, so a failure found in a long fuzz run can
be re-executed (and re-shrunk) without re-running the generator.  The
format is also handy for golden tests and for shipping programs between
processes.

Round-trip contract: ``program_from_dict(program_to_dict(p))`` is
structurally equal to ``p`` (:func:`repro.ir.traversal.structurally_equal`)
and evaluates identically.  Node *identity* is not preserved — rebuilt
trees are fresh objects — which is fine everywhere identity matters only
per-occurrence (the analyses re-run on the rebuilt tree).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import re
from typing import Any, Dict, Mapping, Optional

from ..errors import IRError
from .expr import (
    Alloc,
    ArrayRead,
    BinOp,
    Bind,
    Block,
    Call,
    Cast,
    Cmp,
    Const,
    Expr,
    ExprStmt,
    FieldRead,
    If,
    Length,
    Node,
    Param,
    RandomIndex,
    Select,
    Stmt,
    Store,
    UnOp,
    Var,
)
from .functions import FnCall
from .patterns import Filter, Foreach, GroupBy, Map, Program, Reduce, ZipWith
from .types import ArrayType, ScalarType, StructType, Type

#: Bumped on any incompatible format change; loaders check it.
FORMAT_VERSION = 1

#: Version of the *pipeline behavior* (analysis + search + optimizer +
#: codegen), as opposed to the serialization schema above.  The compile
#: service's content-addressed artifact store keys every artifact on
#: :func:`compile_digest`, which covers both versions — bump this when a
#: change makes previously generated artifacts (mappings, CUDA, costs)
#: stale even though the IR format is unchanged, and every cached
#: artifact is transparently invalidated.
PIPELINE_VERSION = 3

_SCALARS = {"f32", "f64", "i32", "i64", "bool"}


# -- types -----------------------------------------------------------------


def type_to_dict(ty: Type) -> Dict[str, Any]:
    if isinstance(ty, ScalarType):
        return {"t": "scalar", "name": ty.name}
    if isinstance(ty, ArrayType):
        return {"t": "array", "elem": type_to_dict(ty.elem), "rank": ty.rank}
    if isinstance(ty, StructType):
        return {
            "t": "struct",
            "name": ty.name,
            "fields": [[n, type_to_dict(ft)] for n, ft in ty.fields],
        }
    raise IRError(f"cannot serialize type {ty!r}")


def type_from_dict(data: Dict[str, Any]) -> Type:
    kind = data["t"]
    if kind == "scalar":
        from . import types as _types

        name = data["name"]
        if name not in _SCALARS:
            raise IRError(f"unknown scalar type {name!r}")
        return getattr(_types, name.upper() if name != "bool" else "BOOL")
    if kind == "array":
        return ArrayType(type_from_dict(data["elem"]), data["rank"])
    if kind == "struct":
        return StructType(
            data["name"],
            tuple((n, type_from_dict(ft)) for n, ft in data["fields"]),
        )
    raise IRError(f"unknown type tag {kind!r}")


# -- nodes -----------------------------------------------------------------


def node_to_dict(node: Node) -> Dict[str, Any]:
    """Serialize any IR node (expression, statement, or pattern)."""
    if isinstance(node, Const):
        return {"n": "const", "value": node.value, "ty": type_to_dict(node.ty)}
    if isinstance(node, Var):
        return {"n": "var", "name": node.name, "ty": type_to_dict(node.ty)}
    if isinstance(node, Param):
        return {"n": "param", "name": node.name, "ty": type_to_dict(node.ty)}
    if isinstance(node, RandomIndex):
        return {
            "n": "rand",
            "size": node_to_dict(node.size),
            "seed_hint": node.seed_hint,
        }
    if isinstance(node, BinOp):
        return {
            "n": "binop",
            "op": node.op,
            "lhs": node_to_dict(node.lhs),
            "rhs": node_to_dict(node.rhs),
        }
    if isinstance(node, UnOp):
        return {"n": "unop", "op": node.op, "operand": node_to_dict(node.operand)}
    if isinstance(node, Cmp):
        return {
            "n": "cmp",
            "op": node.op,
            "lhs": node_to_dict(node.lhs),
            "rhs": node_to_dict(node.rhs),
        }
    if isinstance(node, Select):
        return {
            "n": "select",
            "cond": node_to_dict(node.cond),
            "if_true": node_to_dict(node.if_true),
            "if_false": node_to_dict(node.if_false),
            "prob": node.prob,
        }
    if isinstance(node, Call):
        return {"n": "call", "fn": node.fn, "args": [node_to_dict(a) for a in node.args]}
    if isinstance(node, FnCall):
        return {
            "n": "fncall",
            "name": node.name,
            "args": [node_to_dict(a) for a in node.args],
        }
    if isinstance(node, Cast):
        return {
            "n": "cast",
            "operand": node_to_dict(node.operand),
            "ty": type_to_dict(node.ty),
        }
    if isinstance(node, ArrayRead):
        return {
            "n": "read",
            "array": node_to_dict(node.array),
            "indices": [node_to_dict(i) for i in node.indices],
        }
    if isinstance(node, FieldRead):
        return {
            "n": "field",
            "struct": node_to_dict(node.struct),
            "field": node.field_name,
        }
    if isinstance(node, Length):
        return {"n": "len", "array": node_to_dict(node.array), "axis": node.axis}
    if isinstance(node, Alloc):
        return {
            "n": "alloc",
            "elem": type_to_dict(node.elem),
            "shape": [node_to_dict(s) for s in node.shape],
        }
    if isinstance(node, Block):
        return {
            "n": "block",
            "stmts": [node_to_dict(s) for s in node.stmts],
            "result": node_to_dict(node.result),
        }
    if isinstance(node, Bind):
        return {
            "n": "bind",
            "var": node_to_dict(node.var),
            "value": node_to_dict(node.value),
        }
    if isinstance(node, Store):
        return {
            "n": "store",
            "array": node_to_dict(node.array),
            "indices": [node_to_dict(i) for i in node.indices],
            "value": node_to_dict(node.value),
        }
    if isinstance(node, If):
        return {
            "n": "if",
            "cond": node_to_dict(node.cond),
            "then": [node_to_dict(s) for s in node.then],
            "otherwise": [node_to_dict(s) for s in node.otherwise],
            "prob": node.prob,
        }
    if isinstance(node, ExprStmt):
        return {"n": "exprstmt", "expr": node_to_dict(node.expr)}
    # -- patterns (checked before Map's subclasses shadow each other) ------
    if isinstance(node, Foreach):
        return {
            "n": "foreach",
            "size": node_to_dict(node.size),
            "index": node_to_dict(node.index),
            "body": [node_to_dict(s) for s in node.body],
        }
    if isinstance(node, Filter):
        return {
            "n": "filter",
            "size": node_to_dict(node.size),
            "index": node_to_dict(node.index),
            "pred": node_to_dict(node.pred),
            "value": node_to_dict(node.value),
        }
    if isinstance(node, Reduce):
        data: Dict[str, Any] = {
            "n": "reduce",
            "size": node_to_dict(node.size),
            "index": node_to_dict(node.index),
            "body": node_to_dict(node.body),
            "op": node.op,
        }
        if node.combine is not None:
            lhs, rhs, combine = node.combine
            data["combine"] = [
                node_to_dict(lhs),
                node_to_dict(rhs),
                node_to_dict(combine),
            ]
        return data
    if isinstance(node, GroupBy):
        return {
            "n": "groupby",
            "size": node_to_dict(node.size),
            "index": node_to_dict(node.index),
            "key": node_to_dict(node.key),
            "value": node_to_dict(node.value),
        }
    if isinstance(node, Map):  # covers ZipWith via the kind tag
        return {
            "n": "zipwith" if isinstance(node, ZipWith) else "map",
            "size": node_to_dict(node.size),
            "index": node_to_dict(node.index),
            "body": node_to_dict(node.body),
        }
    raise IRError(f"cannot serialize node {type(node).__name__}")


def node_from_dict(data: Dict[str, Any]) -> Node:
    """Rebuild an IR node from its serialized form."""
    kind = data["n"]
    if kind == "const":
        return Const(data["value"], type_from_dict(data["ty"]))
    if kind == "var":
        return Var(data["name"], type_from_dict(data["ty"]))
    if kind == "param":
        return Param(data["name"], type_from_dict(data["ty"]))
    if kind == "rand":
        return RandomIndex(_expr(data["size"]), data.get("seed_hint", 0))
    if kind == "binop":
        return BinOp(data["op"], _expr(data["lhs"]), _expr(data["rhs"]))
    if kind == "unop":
        return UnOp(data["op"], _expr(data["operand"]))
    if kind == "cmp":
        return Cmp(data["op"], _expr(data["lhs"]), _expr(data["rhs"]))
    if kind == "select":
        return Select(
            _expr(data["cond"]),
            _expr(data["if_true"]),
            _expr(data["if_false"]),
            data.get("prob", 0.5),
        )
    if kind == "call":
        return Call(data["fn"], [_expr(a) for a in data["args"]])
    if kind == "fncall":
        return FnCall(data["name"], [_expr(a) for a in data["args"]])
    if kind == "cast":
        ty = type_from_dict(data["ty"])
        if not isinstance(ty, ScalarType):
            raise IRError("cast target must be scalar")
        return Cast(_expr(data["operand"]), ty)
    if kind == "read":
        return ArrayRead(_expr(data["array"]), [_expr(i) for i in data["indices"]])
    if kind == "field":
        return FieldRead(_expr(data["struct"]), data["field"])
    if kind == "len":
        return Length(_expr(data["array"]), data.get("axis", 0))
    if kind == "alloc":
        return Alloc(type_from_dict(data["elem"]), [_expr(s) for s in data["shape"]])
    if kind == "block":
        return Block([_stmt(s) for s in data["stmts"]], _expr(data["result"]))
    if kind == "bind":
        var = node_from_dict(data["var"])
        assert isinstance(var, Var)
        return Bind(var, _expr(data["value"]))
    if kind == "store":
        return Store(
            _expr(data["array"]),
            [_expr(i) for i in data["indices"]],
            _expr(data["value"]),
        )
    if kind == "if":
        return If(
            _expr(data["cond"]),
            [_stmt(s) for s in data["then"]],
            [_stmt(s) for s in data["otherwise"]],
            data.get("prob", 0.5),
        )
    if kind == "exprstmt":
        return ExprStmt(_expr(data["expr"]))
    if kind in ("map", "zipwith"):
        cls = ZipWith if kind == "zipwith" else Map
        return cls(_expr(data["size"]), _index(data), _expr(data["body"]))
    if kind == "reduce":
        combine = None
        op = data.get("op", "+")
        if "combine" in data:
            lhs = node_from_dict(data["combine"][0])
            rhs = node_from_dict(data["combine"][1])
            assert isinstance(lhs, Var) and isinstance(rhs, Var)
            combine = (lhs, rhs, _expr(data["combine"][2]))
        return Reduce(_expr(data["size"]), _index(data), _expr(data["body"]), op, combine)
    if kind == "filter":
        return Filter(
            _expr(data["size"]), _index(data), _expr(data["pred"]), _expr(data["value"])
        )
    if kind == "groupby":
        return GroupBy(
            _expr(data["size"]), _index(data), _expr(data["key"]), _expr(data["value"])
        )
    if kind == "foreach":
        return Foreach(
            _expr(data["size"]), _index(data), [_stmt(s) for s in data["body"]]
        )
    raise IRError(f"unknown node tag {kind!r}")


def _expr(data: Dict[str, Any]) -> Expr:
    node = node_from_dict(data)
    if not isinstance(node, Expr):
        raise IRError(f"expected expression, got {type(node).__name__}")
    return node


def _stmt(data: Dict[str, Any]) -> Stmt:
    node = node_from_dict(data)
    if not isinstance(node, Stmt):
        raise IRError(f"expected statement, got {type(node).__name__}")
    return node


def _index(data: Dict[str, Any]) -> Var:
    var = node_from_dict(data["index"])
    if not isinstance(var, Var):
        raise IRError("pattern index must deserialize to a Var")
    return var


# -- programs --------------------------------------------------------------


def program_to_dict(program: Program) -> Dict[str, Any]:
    """Serialize a full program (params, result, hints, shapes)."""
    return {
        "version": FORMAT_VERSION,
        "name": program.name,
        "params": [node_to_dict(p) for p in program.params],
        "result": node_to_dict(program.result),
        "size_hints": dict(program.size_hints),
        "array_shapes": {
            name: [node_to_dict(e) for e in shape]
            for name, shape in program.array_shapes.items()
        },
    }


def program_from_dict(data: Dict[str, Any]) -> Program:
    """Rebuild a program; validates well-formedness on the way out."""
    version = data.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise IRError(
            f"serialized program has format version {version}, "
            f"this build reads {FORMAT_VERSION}"
        )
    params = []
    for pdata in data["params"]:
        param = node_from_dict(pdata)
        if not isinstance(param, Param):
            raise IRError("program parameter must deserialize to a Param")
        params.append(param)
    program = Program(
        data["name"],
        tuple(params),
        _expr(data["result"]),
        dict(data.get("size_hints", {})),
        {
            name: tuple(_expr(e) for e in shape)
            for name, shape in data.get("array_shapes", {}).items()
        },
    )
    from .validate import validate_program

    validate_program(program)
    return program


def dumps(program: Program, indent: int = 2) -> str:
    """Serialize a program to a JSON string."""
    return json.dumps(program_to_dict(program), indent=indent)


def loads(text: str) -> Program:
    """Load a program from a JSON string."""
    return program_from_dict(json.loads(text))


# -- canonical digests ------------------------------------------------------


def canonical_json(data: Any) -> str:
    """The order-stable JSON encoding digests are computed over.

    Keys are sorted at every nesting level and separators carry no
    whitespace, so two dicts built in different insertion orders encode
    identically.  ``allow_nan=False`` keeps the encoding deterministic
    across platforms (NaN payloads would also make equal-looking inputs
    unequal).
    """
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


#: Node tags that introduce a bound index variable (``index`` field).
_PATTERN_TAGS = ("map", "zipwith", "reduce", "filter", "groupby", "foreach")


def _collect_binders(node: Any, order: list) -> None:
    """Record every binder name in deterministic traversal order."""
    if isinstance(node, list):
        for item in node:
            _collect_binders(item, order)
        return
    if not isinstance(node, dict):
        return
    tag = node.get("n")
    if tag in _PATTERN_TAGS:
        order.append(node["index"]["name"])
    elif tag == "bind":
        order.append(node["var"]["name"])
    if tag == "reduce" and "combine" in node:
        order.append(node["combine"][0]["name"])
        order.append(node["combine"][1]["name"])
    for key in sorted(node):
        _collect_binders(node[key], order)


def _rename_vars(node: Any, mapping: Dict[str, str]) -> Any:
    """Rewrite every ``var`` occurrence through ``mapping`` (params and
    free names pass through untouched)."""
    if isinstance(node, list):
        return [_rename_vars(item, mapping) for item in node]
    if not isinstance(node, dict):
        return node
    out = {key: _rename_vars(value, mapping) for key, value in node.items()}
    if out.get("n") == "var":
        out["name"] = mapping.get(out["name"], out["name"])
    return out


#: Shape of the canonical binder names the alpha-rename introduces.
_CANON_NAME_RE = re.compile(r"%b\d+")


def _collect_names(node: Any, names: set) -> None:
    """Record every ``var``/``param`` occurrence name (free or bound)."""
    if isinstance(node, list):
        for item in node:
            _collect_names(item, names)
        return
    if not isinstance(node, dict):
        return
    if node.get("n") in ("var", "param"):
        names.add(node["name"])
    for key in sorted(node):
        _collect_names(node[key], names)


def _flat_rename_is_sound(data: Dict[str, Any], order: list) -> bool:
    """Whether the flat binder-rename map is an alpha-renaming of ``data``.

    The flat map renames *every* ``var`` occurrence of a binder name, so
    it preserves semantics only when (a) binder names are pairwise
    distinct — no shadowing for the flat map to mis-merge — and (b) no
    binder name doubles as a free name (a parameter, a ``size_hints`` /
    ``array_shapes`` key, or a variable inside a shape expression),
    which the rename would otherwise capture.  Canonical ``%b<k>`` names
    must also not already occur anywhere, or renamed binders could
    collide with genuinely distinct names.
    """
    binders = set(order)
    if len(binders) != len(order):
        return False
    reserved: set = {p["name"] for p in data["params"]}
    reserved.update(data.get("size_hints") or {})
    reserved.update(data.get("array_shapes") or {})
    _collect_names(data.get("array_shapes") or {}, reserved)
    if binders & reserved:
        return False
    all_names = binders | reserved
    _collect_names(data["result"], all_names)
    return not any(_CANON_NAME_RE.fullmatch(name) for name in all_names)


def canonical_program_dict(program: Program) -> Dict[str, Any]:
    """:func:`program_to_dict` with bound variables alpha-renamed.

    The builder gensyms binder names from a process-wide counter, so two
    builds of the *same* program serialize with different index/temp
    names (``i0`` vs ``i1``).  Digests must not see that: every bound
    variable (pattern indices, ``bind`` targets, ``reduce`` combiner
    operands) is renamed to ``%b<k>`` in deterministic traversal order.
    Free names — parameters, symbolic sizes — are untouched, so their
    correspondence with ``size_hints``/``array_shapes`` keys survives.

    Binder names are globally unique within a *built* program (that is
    the symbol table's contract), which is what makes a flat rename map
    sound — there is no shadowing to respect.  Client-supplied IR
    (``program_ir`` over the wire) is under no such contract, so the
    contract is checked rather than assumed: when binder names are
    shadowed, collide with free names, or already look canonical, the
    program is digested with its names as-is.  The fallback never
    renames, so it can never canonicalize two semantically different
    programs onto one digest; the only cost is that alpha-equivalent
    spellings of such programs hash apart (a cache split, not a wrong
    artifact).
    """
    data = program_to_dict(program)
    order: list = []
    _collect_binders(data["params"], order)
    _collect_binders(data["result"], order)
    for name in sorted(data.get("array_shapes", {})):
        _collect_binders(data["array_shapes"][name], order)
    if not _flat_rename_is_sound(data, order):
        return data
    mapping: Dict[str, str] = {}
    for name in order:
        if name not in mapping:
            mapping[name] = f"%b{len(mapping)}"
    return _rename_vars(data, mapping)


def canonicalize_program(program: Program) -> Program:
    """Rebuild ``program`` with deterministic binder names.

    :func:`canonical_program_dict` keeps gensym noise out of *digests*,
    but the pipeline compiles the raw program, so generated CUDA would
    still spell loop indices ``i1`` in one process and ``i3`` in another
    — two backends serving one digest would disagree byte-for-byte.
    This renames every binder to ``_b<k>`` (a valid C identifier, unlike
    the digest form's ``%b<k>``) in the same traversal order, making
    codegen a pure function of the digest.

    Guarded by the same soundness contract as the digest rename, plus a
    check that no ``_b<k>`` target already occurs as any name; when
    either fails the program is returned unchanged — correctness first,
    determinism where it is provable.
    """
    data = program_to_dict(program)
    order: list = []
    _collect_binders(data["params"], order)
    _collect_binders(data["result"], order)
    for name in sorted(data.get("array_shapes", {})):
        _collect_binders(data["array_shapes"][name], order)
    if not _flat_rename_is_sound(data, order):
        return program
    mapping: Dict[str, str] = {}
    for name in order:
        if name not in mapping:
            mapping[name] = f"_b{len(mapping)}"
    if set(mapping.values()) & set(mapping):
        return program
    all_names: set = {p["name"] for p in data["params"]}
    all_names.update(data.get("size_hints") or {})
    all_names.update(data.get("array_shapes") or {})
    _collect_names(data.get("array_shapes") or {}, all_names)
    _collect_names(data["result"], all_names)
    if set(mapping.values()) & all_names:
        return program
    return program_from_dict(_rename_vars(data, mapping))


def compile_digest(
    program: Program,
    device: Any = None,
    flags: Any = None,
    strategy: Optional[str] = None,
    sizes: Optional[Mapping[str, int]] = None,
) -> str:
    """Canonical content digest of one compilation's inputs.

    Covers everything the pipeline's output depends on: the serialized
    program (binder names canonicalized — see
    :func:`canonical_program_dict`), the device description (every field
    of the :class:`~repro.gpusim.device.GpuDevice` dataclass, so two
    devices that differ only in, say, shared-memory size hash apart),
    the :class:`~repro.optim.pipeline.OptimizationFlags`, the strategy,
    the size bindings, and both schema stamps (:data:`FORMAT_VERSION`,
    :data:`PIPELINE_VERSION`) — bumping either changes every digest,
    which is exactly the invalidation rule the artifact store relies on.

    Semantically equal inputs digest equal: the encoding is
    :func:`canonical_json`, so dict insertion order (size hints, array
    shapes, sizes) never leaks into the hash, and binder gensym counters
    never leak in via the program.
    """

    def _fields(value: Any) -> Any:
        if value is None:
            return None
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return {
                "__class__": type(value).__qualname__,
                **{
                    f.name: _fields(getattr(value, f.name))
                    for f in dataclasses.fields(value)
                },
            }
        return value

    payload = {
        "format_version": FORMAT_VERSION,
        "pipeline_version": PIPELINE_VERSION,
        "program": canonical_program_dict(program),
        "device": _fields(device),
        "flags": _fields(flags),
        "strategy": strategy,
        "sizes": None if sizes is None else {k: int(v) for k, v in sizes.items()},
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
