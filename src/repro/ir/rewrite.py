"""Generic bottom-up IR rewriting.

The optimizers (:mod:`repro.optim`) express themselves as node-local
transforms applied by :func:`rewrite`.  The rewriter reconstructs only the
spine above changed nodes, preserving identity of untouched subtrees so that
per-occurrence analysis results remain valid where nothing moved.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import IRError
from .expr import (
    Alloc,
    ArrayRead,
    BinOp,
    Bind,
    Block,
    Call,
    Cast,
    Cmp,
    Const,
    Expr,
    ExprStmt,
    FieldRead,
    If,
    Length,
    Node,
    Param,
    RandomIndex,
    Select,
    Store,
    UnOp,
    Var,
)
from .patterns import Filter, Foreach, GroupBy, Map, Reduce, ZipWith

Transform = Callable[[Node], Optional[Node]]


def rewrite(node: Node, transform: Transform) -> Node:
    """Apply ``transform`` bottom-up; ``None`` means "keep this node".

    Children are rewritten first, the node is rebuilt if any child changed,
    and finally ``transform`` sees the (possibly rebuilt) node and may
    replace it.
    """
    rebuilt = _rebuild(node, transform)
    replacement = transform(rebuilt)
    return replacement if replacement is not None else rebuilt


def substitute(node: Node, mapping: Dict[Node, Node]) -> Node:
    """Replace occurrences of specific node objects (by identity)."""

    def transform(n: Node) -> Optional[Node]:
        return mapping.get(n)

    return rewrite(node, transform)


def substitute_var(node: Node, name: str, replacement: Expr) -> Node:
    """Replace every free occurrence of variable ``name``.

    Occurrences shadowed by an inner binder of the same name are left
    untouched (capture-avoiding in the shadowing direction; the caller is
    responsible for not introducing captures via ``replacement``).
    """

    def transform(n: Node) -> Optional[Node]:
        if isinstance(n, Var) and n.name == name:
            return replacement
        return None

    return _rewrite_scoped(node, name, transform)


def _rewrite_scoped(node: Node, name: str, transform: Transform) -> Node:
    from .patterns import PatternExpr

    if isinstance(node, PatternExpr) and node.index.name == name:
        return node  # shadowed below this binder
    if isinstance(node, Block):
        new_stmts = []
        changed = False
        shadowed = False
        for stmt in node.stmts:
            if shadowed:
                new_stmts.append(stmt)
                continue
            new_stmt = _rewrite_scoped(stmt, name, transform)
            changed = changed or new_stmt is not stmt
            new_stmts.append(new_stmt)
            if isinstance(stmt, Bind) and stmt.var.name == name:
                shadowed = True
        new_result = node.result if shadowed else _rewrite_scoped(
            node.result, name, transform
        )
        changed = changed or new_result is not node.result
        return Block(tuple(new_stmts), new_result) if changed else node
    rebuilt = _rebuild(node, lambda n: _scoped_transform(n, name, transform))
    replacement = transform(rebuilt)
    return replacement if replacement is not None else rebuilt


def _scoped_transform(n: Node, name: str, transform: Transform) -> Optional[Node]:
    result = _rewrite_scoped(n, name, transform)
    return result if result is not n else None


def _rebuild(node: Node, transform: Transform) -> Node:
    """Rebuild ``node`` with each child rewritten; preserve identity if
    nothing changed."""

    def go(child: Node) -> Node:
        return rewrite(child, transform)

    if isinstance(node, (Const, Var, Param)):
        return node
    if isinstance(node, RandomIndex):
        size = go(node.size)
        return node if size is node.size else RandomIndex(size, node.seed_hint)
    if isinstance(node, BinOp):
        lhs, rhs = go(node.lhs), go(node.rhs)
        if lhs is node.lhs and rhs is node.rhs:
            return node
        return BinOp(node.op, lhs, rhs)
    if isinstance(node, UnOp):
        operand = go(node.operand)
        return node if operand is node.operand else UnOp(node.op, operand)
    if isinstance(node, Cmp):
        lhs, rhs = go(node.lhs), go(node.rhs)
        if lhs is node.lhs and rhs is node.rhs:
            return node
        return Cmp(node.op, lhs, rhs)
    if isinstance(node, Select):
        cond, t, f = go(node.cond), go(node.if_true), go(node.if_false)
        if cond is node.cond and t is node.if_true and f is node.if_false:
            return node
        return Select(cond, t, f, node.prob)
    if isinstance(node, Call):
        args = tuple(go(a) for a in node.args)
        if all(a is b for a, b in zip(args, node.args)):
            return node
        return Call(node.fn, args)
    if isinstance(node, Cast):
        operand = go(node.operand)
        return node if operand is node.operand else Cast(operand, node.ty)
    from .functions import FnCall

    if isinstance(node, FnCall):
        args = tuple(go(a) for a in node.args)
        if all(a is b for a, b in zip(args, node.args)):
            return node
        return FnCall(node.name, args)
    if isinstance(node, ArrayRead):
        array = go(node.array)
        indices = tuple(go(i) for i in node.indices)
        if array is node.array and all(a is b for a, b in zip(indices, node.indices)):
            return node
        return ArrayRead(array, indices)
    if isinstance(node, FieldRead):
        struct = go(node.struct)
        return node if struct is node.struct else FieldRead(struct, node.field_name)
    if isinstance(node, Length):
        array = go(node.array)
        return node if array is node.array else Length(array, node.axis)
    if isinstance(node, Alloc):
        shape = tuple(go(s) for s in node.shape)
        if all(a is b for a, b in zip(shape, node.shape)):
            return node
        return Alloc(node.elem, shape)
    if isinstance(node, Bind):
        value = go(node.value)
        return node if value is node.value else Bind(node.var, value)
    if isinstance(node, Store):
        array = go(node.array)
        indices = tuple(go(i) for i in node.indices)
        value = go(node.value)
        if (
            array is node.array
            and value is node.value
            and all(a is b for a, b in zip(indices, node.indices))
        ):
            return node
        return Store(array, indices, value)
    if isinstance(node, If):
        cond = go(node.cond)
        then = tuple(go(s) for s in node.then)
        otherwise = tuple(go(s) for s in node.otherwise)
        if (
            cond is node.cond
            and all(a is b for a, b in zip(then, node.then))
            and all(a is b for a, b in zip(otherwise, node.otherwise))
        ):
            return node
        return If(cond, then, otherwise, node.prob)
    if isinstance(node, ExprStmt):
        expr = go(node.expr)
        return node if expr is node.expr else ExprStmt(expr)
    if isinstance(node, Block):
        stmts = tuple(go(s) for s in node.stmts)
        result = go(node.result)
        if result is node.result and all(a is b for a, b in zip(stmts, node.stmts)):
            return node
        return Block(stmts, result)
    if isinstance(node, ZipWith):
        size, body = go(node.size), go(node.body)
        if size is node.size and body is node.body:
            return node
        return ZipWith(size, node.index, body)
    if isinstance(node, Map):
        size, body = go(node.size), go(node.body)
        if size is node.size and body is node.body:
            return node
        return Map(size, node.index, body)
    if isinstance(node, Reduce):
        size, body = go(node.size), go(node.body)
        combine = node.combine
        if combine is not None:
            new_combine_body = go(combine[2])
            if new_combine_body is not combine[2]:
                combine = (combine[0], combine[1], new_combine_body)
        if size is node.size and body is node.body and combine is node.combine:
            return node
        return Reduce(size, node.index, body, node.op, combine)
    if isinstance(node, Filter):
        size, pred, value = go(node.size), go(node.pred), go(node.value)
        if size is node.size and pred is node.pred and value is node.value:
            return node
        return Filter(size, node.index, pred, value)
    if isinstance(node, GroupBy):
        size, key, value = go(node.size), go(node.key), go(node.value)
        if size is node.size and key is node.key and value is node.value:
            return node
        return GroupBy(size, node.index, key, value)
    if isinstance(node, Foreach):
        size = go(node.size)
        body = tuple(go(s) for s in node.body)
        if size is node.size and all(a is b for a, b in zip(body, node.body)):
            return node
        return Foreach(size, node.index, body)
    raise IRError(f"rewrite does not know node class {type(node).__name__}")
