"""Type system for the pattern IR.

The paper's language supports scalar types, arrays, and structs
(Section III).  Structs compose other types, which is how higher-level data
structures such as CSR graphs are expressed (a struct of three arrays).

Types are immutable value objects with structural equality so they can be
compared, hashed, and used as dictionary keys during analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Tuple

import numpy as np

from ..errors import TypeMismatchError


class Type:
    """Base class for all IR types."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return str(self)


@dataclass(frozen=True)
class ScalarType(Type):
    """A primitive numeric or boolean type.

    Attributes:
        name: canonical short name (``f32``, ``f64``, ``i32``, ``i64``,
            ``bool``).
        size_bytes: storage footprint, used by the coalescing model.
    """

    name: str
    size_bytes: int

    def __str__(self) -> str:
        return self.name

    @property
    def np_dtype(self) -> np.dtype:
        """The NumPy dtype used by the functional interpreter."""
        return np.dtype(_NUMPY_DTYPES[self.name])

    @property
    def cuda_name(self) -> str:
        """The CUDA C type name used by the code generator."""
        return _CUDA_NAMES[self.name]

    @property
    def is_float(self) -> bool:
        return self.name in ("f32", "f64")

    @property
    def is_integer(self) -> bool:
        return self.name in ("i32", "i64")


_NUMPY_DTYPES = {
    "f32": np.float32,
    "f64": np.float64,
    "i32": np.int32,
    "i64": np.int64,
    "bool": np.bool_,
}

_CUDA_NAMES = {
    "f32": "float",
    "f64": "double",
    "i32": "int",
    "i64": "long long",
    "bool": "bool",
}

F32 = ScalarType("f32", 4)
F64 = ScalarType("f64", 8)
I32 = ScalarType("i32", 4)
I64 = ScalarType("i64", 8)
BOOL = ScalarType("bool", 1)

SCALAR_TYPES: Tuple[ScalarType, ...] = (F32, F64, I32, I64, BOOL)


@dataclass(frozen=True)
class ArrayType(Type):
    """A dense rectangular array of scalars (or structs).

    Rank-``r`` arrays are stored linearized; the logical-to-physical index
    translation is owned by the layout machinery (``repro.optim.layout``),
    which is what lets the preallocation optimization change layout without
    touching the logical IR.
    """

    elem: Type
    rank: int = 1

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise TypeMismatchError(f"array rank must be >= 1, got {self.rank}")

    def __str__(self) -> str:
        return f"{self.elem}[{','.join(':' * 0 or ':' for _ in range(self.rank))}]".replace(
            "[]", "[" + ",".join([":"] * self.rank) + "]"
        )


@dataclass(frozen=True)
class StructType(Type):
    """A named record type composing other types.

    ``fields`` preserves declaration order; field access is by name via
    :class:`repro.ir.expr.FieldRead`.
    """

    name: str
    fields: Tuple[Tuple[str, Type], ...]

    @staticmethod
    def of(name: str, fields: Mapping[str, Type]) -> "StructType":
        """Build a struct type from a mapping (order preserved)."""
        return StructType(name, tuple(fields.items()))

    def field_type(self, field_name: str) -> Type:
        for fname, ftype in self.fields:
            if fname == field_name:
                return ftype
        raise TypeMismatchError(f"struct {self.name} has no field {field_name!r}")

    def field_names(self) -> Tuple[str, ...]:
        return tuple(fname for fname, _ in self.fields)

    def __str__(self) -> str:
        inner = ", ".join(f"{n}: {t}" for n, t in self.fields)
        return f"{self.name}{{{inner}}}"


def common_scalar(lhs: Type, rhs: Type) -> ScalarType:
    """Return the promoted scalar type for a binary arithmetic operation.

    Promotion follows C-like rules restricted to the supported scalar set:
    float beats int, wider beats narrower.  Raises
    :class:`TypeMismatchError` if either side is not scalar.
    """
    if not isinstance(lhs, ScalarType) or not isinstance(rhs, ScalarType):
        raise TypeMismatchError(f"expected scalar operands, got {lhs} and {rhs}")
    if lhs == rhs:
        return lhs
    order = {"bool": 0, "i32": 1, "i64": 2, "f32": 3, "f64": 4}
    winner = lhs if order[lhs.name] >= order[rhs.name] else rhs
    # i64 + f32 promotes to f64 to avoid precision loss, matching NumPy.
    if {lhs.name, rhs.name} == {"i64", "f32"}:
        return F64
    return winner


def element_type(ty: Type) -> Type:
    """Return the element type of an array type (error otherwise)."""
    if not isinstance(ty, ArrayType):
        raise TypeMismatchError(f"expected an array type, got {ty}")
    return ty.elem
