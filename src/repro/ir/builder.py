"""Front-end DSL: a thin wrapper for building pattern IR (Section III).

The paper demonstrates its analysis on a small data-parallel language that
wraps the IR; this module is that wrapper.  Applications construct programs
through handle objects with operator overloading::

    b = Builder("sumRows")
    m = b.matrix("m", F64, rows="R", cols="C")
    out = m.map_rows(lambda row: row.reduce("+"))
    prog = b.build(out)

Collection operations are lowered on the spot to index-oriented pattern
nodes: ``row.reduce`` above becomes ``Reduce(C, j, ArrayRead(m, (i, j)))``
nested in ``Map(R, i, ...)`` — the canonical form every analysis consumes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import IRError, TypeMismatchError
from .expr import (
    ArrayRead,
    BinOp,
    Bind,
    Block,
    Call,
    Cast,
    Cmp,
    Const,
    Expr,
    ExprStmt,
    FieldRead,
    If,
    Length,
    Param,
    RandomIndex,
    Select,
    Stmt,
    Store,
    UnOp,
    Var,
)
from .patterns import Filter, Foreach, GroupBy, Map, Program, Reduce, ZipWith
from .symbols import fresh_name
from .types import F64, I64, ArrayType, ScalarType, StructType, Type

Liftable = Union["EH", Expr, int, float, bool]


def lift(value: Liftable) -> Expr:
    """Convert a handle, node, or Python number into an expression."""
    if isinstance(value, EH):
        return value.expr
    if isinstance(value, Expr):
        return value
    if isinstance(value, (bool, int, float)):
        return Const(value)
    raise TypeMismatchError(f"cannot lift {value!r} into the IR")


class EH:
    """Expression handle: wraps an :class:`Expr` with Python operators."""

    def __init__(self, expr: Expr):
        self.expr = expr

    @property
    def ty(self) -> Type:
        return self.expr.ty

    # -- arithmetic ---------------------------------------------------
    def __add__(self, other: Liftable) -> "EH":
        return EH(BinOp("+", self.expr, lift(other)))

    def __radd__(self, other: Liftable) -> "EH":
        return EH(BinOp("+", lift(other), self.expr))

    def __sub__(self, other: Liftable) -> "EH":
        return EH(BinOp("-", self.expr, lift(other)))

    def __rsub__(self, other: Liftable) -> "EH":
        return EH(BinOp("-", lift(other), self.expr))

    def __mul__(self, other: Liftable) -> "EH":
        return EH(BinOp("*", self.expr, lift(other)))

    def __rmul__(self, other: Liftable) -> "EH":
        return EH(BinOp("*", lift(other), self.expr))

    def __truediv__(self, other: Liftable) -> "EH":
        return EH(BinOp("/", self.expr, lift(other)))

    def __rtruediv__(self, other: Liftable) -> "EH":
        return EH(BinOp("/", lift(other), self.expr))

    def __floordiv__(self, other: Liftable) -> "EH":
        return EH(BinOp("//", self.expr, lift(other)))

    def __mod__(self, other: Liftable) -> "EH":
        return EH(BinOp("%", self.expr, lift(other)))

    def __neg__(self) -> "EH":
        return EH(UnOp("-", self.expr))

    # -- comparisons --------------------------------------------------
    def __lt__(self, other: Liftable) -> "EH":
        return EH(Cmp("<", self.expr, lift(other)))

    def __le__(self, other: Liftable) -> "EH":
        return EH(Cmp("<=", self.expr, lift(other)))

    def __gt__(self, other: Liftable) -> "EH":
        return EH(Cmp(">", self.expr, lift(other)))

    def __ge__(self, other: Liftable) -> "EH":
        return EH(Cmp(">=", self.expr, lift(other)))

    def eq(self, other: Liftable) -> "EH":
        """Element equality (named method; ``__eq__`` keeps identity)."""
        return EH(Cmp("==", self.expr, lift(other)))

    def ne(self, other: Liftable) -> "EH":
        return EH(Cmp("!=", self.expr, lift(other)))

    # -- misc ---------------------------------------------------------
    def cast(self, ty: ScalarType) -> "EH":
        return EH(Cast(self.expr, ty))

    def where(self, if_true: Liftable, if_false: Liftable, prob: float = 0.5) -> "EH":
        """``self ? if_true : if_false`` — self must be boolean."""
        return EH(Select(self.expr, lift(if_true), lift(if_false), prob))


def _fn(name: str) -> Callable[..., EH]:
    def apply(*args: Liftable) -> EH:
        return EH(Call(name, [lift(a) for a in args]))

    apply.__name__ = name
    apply.__doc__ = f"The {name} intrinsic."
    return apply


sqrt = _fn("sqrt")
exp = _fn("exp")
log = _fn("log")
pow_ = _fn("pow")
abs_ = _fn("abs")
floor = _fn("floor")
ceil = _fn("ceil")
sin = _fn("sin")
cos = _fn("cos")
tanh = _fn("tanh")


def fn_call(name: str, *args: Liftable) -> EH:
    """Call a registered device function (see :mod:`repro.ir.functions`)."""
    from .functions import FnCall

    return EH(FnCall(name, [lift(a) for a in args]))


def minimum(a: Liftable, b: Liftable) -> EH:
    """Elementwise minimum of two scalars."""
    return EH(BinOp("min", lift(a), lift(b)))


def maximum(a: Liftable, b: Liftable) -> EH:
    """Elementwise maximum of two scalars."""
    return EH(BinOp("max", lift(a), lift(b)))


def let(value: Liftable, body: Callable[[EH], Liftable], name: str = "v") -> EH:
    """Bind ``value`` once and use it in ``body`` (emits a Block/Bind).

    Bindings are what make a nest *imperfect*: statements evaluated outside
    the innermost pattern, which is the trigger for the shared-memory
    optimization (Section V-B).
    """
    value_expr = lift(value)
    var = Var(fresh_name(name), value_expr.ty)
    result = lift(body(EH(var)))
    if isinstance(result, Block):
        return EH(Block((Bind(var, value_expr),) + result.stmts, result.result))
    return EH(Block((Bind(var, value_expr),), result))


def let_vec(
    value: "Vec", body: Callable[["Vec"], Liftable], name: str = "arr"
) -> EH:
    """Bind an array-valued pattern result and use it as a collection.

    This is how the paper's Figure 10/15 temporaries are written: the
    binding materializes the inner pattern's output, creating the dynamic
    allocation that the preallocation optimization then removes.
    """
    var = Var(fresh_name(name), value.expr.ty)
    vec = Vec(var, value.length)
    result = lift(body(vec))
    if isinstance(result, Block):
        return EH(Block((Bind(var, value.expr),) + result.stmts, result.result))
    return EH(Block((Bind(var, value.expr),), result))


def random_index(size: Liftable, seed_hint: int = 0) -> EH:
    """A uniformly random index in ``[0, size)`` (marks random access)."""
    return EH(RandomIndex(lift(size), seed_hint))


def range_map(
    size: Liftable, fn: Callable[[EH], Liftable], index_name: str = "i"
) -> EH:
    """Map over the index domain ``[0, size)``; fn receives the index.

    Returns a :class:`Vec` when the element type is scalar (so the result
    supports the collection API); nested maps (array-valued bodies) return
    a plain handle suitable for ``Builder.build``.
    """
    idx = Var(fresh_name(index_name), I64)
    size_expr = lift(size)
    body = lift(fn(EH(idx)))
    node = Map(size_expr, idx, body)
    if isinstance(node.ty, ArrayType) and node.ty.rank == 1:
        return Vec(node, size_expr)
    return EH(node)


def range_reduce(
    size: Liftable,
    fn: Callable[[EH], Liftable],
    op: str = "+",
    index_name: str = "i",
) -> EH:
    """Reduce over the index domain ``[0, size)``; fn receives the index."""
    idx = Var(fresh_name(index_name), I64)
    body = lift(fn(EH(idx)))
    return EH(Reduce(lift(size), idx, body, op))


def range_foreach(
    size: Liftable,
    fn: Callable[[EH], Sequence[Stmt]],
    index_name: str = "i",
) -> Foreach:
    """Effectful loop over the index domain; fn receives the index."""
    idx = Var(fresh_name(index_name), I64)
    stmts = tuple(fn(EH(idx)))
    return Foreach(lift(size), idx, stmts)


def if_then(
    cond: Liftable,
    then: Sequence[Stmt],
    otherwise: Sequence[Stmt] = (),
    prob: float = 0.5,
) -> If:
    """Statement-level conditional for Foreach bodies."""
    return If(lift(cond), then, otherwise, prob)


def store(target: "Vec", index: Liftable, value: Liftable) -> Store:
    """``target[index] = value`` statement for Foreach bodies."""
    return Store(target.expr, (lift(index),), lift(value))


def store2(target: "Mat", i: Liftable, j: Liftable, value: Liftable) -> Store:
    """``target[i, j] = value`` statement for Foreach bodies."""
    return Store(target.expr, (lift(i), lift(j)), lift(value))


class Vec(EH):
    """Handle for a rank-1 collection; exposes the Table-I pattern API."""

    def __init__(self, expr: Expr, length: Optional[Expr] = None):
        if not isinstance(expr.ty, ArrayType) or expr.ty.rank != 1:
            raise TypeMismatchError(f"Vec requires a rank-1 array, got {expr.ty}")
        super().__init__(expr)
        self.length = length if length is not None else Length(expr, 0)

    @property
    def elem_ty(self) -> Type:
        return self.expr.ty.elem  # type: ignore[union-attr]

    def __getitem__(self, index: Liftable) -> EH:
        if isinstance(self.expr, Map):
            from .rewrite import substitute_var

            return EH(
                substitute_var(
                    self.expr.body, self.expr.index.name, lift(index)
                )
            )
        return EH(ArrayRead(self.expr, (lift(index),)))

    def _element(self, idx: Var) -> EH:
        """The element at ``idx`` — fused through an unmaterialized Map.

        When this Vec wraps a Map/ZipWith node directly (not a let-bound
        variable), consuming patterns fuse with it instead of reading a
        materialized intermediate, matching the Delite-style fusion the
        paper's front end performs.  Materialization requires an explicit
        :func:`let_vec`.
        """
        if isinstance(self.expr, Map):
            from .rewrite import substitute_var

            return EH(
                substitute_var(self.expr.body, self.expr.index.name, idx)
            )
        return EH(ArrayRead(self.expr, (idx,)))

    def map(self, fn: Callable[[EH], Liftable], index_name: str = "i") -> "Vec":
        """``map`` — new collection from a pure per-element function."""
        idx = Var(fresh_name(index_name), I64)
        body = lift(fn(self._element(idx)))
        return Vec(Map(self.length, idx, body), self.length)

    def map_indexed(self, fn: Callable[[EH], Liftable], index_name: str = "i") -> "Vec":
        """``map`` where the function sees the *index* instead of the value."""
        idx = Var(fresh_name(index_name), I64)
        body = lift(fn(EH(idx)))
        return Vec(Map(self.length, idx, body), self.length)

    def zip_with(
        self, other: "Vec", fn: Callable[[EH, EH], Liftable], index_name: str = "i"
    ) -> "Vec":
        """``zipWith`` — combine two equal-length collections pairwise."""
        idx = Var(fresh_name(index_name), I64)
        body = lift(fn(self._element(idx), other[EH(idx)]))
        return Vec(ZipWith(self.length, idx, body), self.length)

    def reduce(self, op: str = "+", index_name: str = "i") -> EH:
        """``reduce`` with a built-in associative operator."""
        idx = Var(fresh_name(index_name), I64)
        body = self._element(idx).expr
        return EH(Reduce(self.length, idx, body, op))

    def map_reduce(
        self,
        fn: Callable[[EH], Liftable],
        op: str = "+",
        index_name: str = "i",
    ) -> EH:
        """Fused ``map`` then ``reduce`` (a reduce whose body applies fn)."""
        idx = Var(fresh_name(index_name), I64)
        body = lift(fn(self._element(idx)))
        return EH(Reduce(self.length, idx, body, op))

    def reduce_fn(
        self,
        fn: Callable[[EH, EH], Liftable],
        index_name: str = "i",
    ) -> EH:
        """``reduce`` with a custom associative combiner."""
        idx = Var(fresh_name(index_name), I64)
        body = self._element(idx).expr
        elem_ty = body.ty
        lhs = Var(fresh_name("a"), elem_ty)
        rhs = Var(fresh_name("b"), elem_ty)
        combine_expr = lift(fn(EH(lhs), EH(rhs)))
        return EH(
            Reduce(self.length, idx, body, "custom", (lhs, rhs, combine_expr))
        )

    def filter(self, pred: Callable[[EH], Liftable], index_name: str = "i") -> "Vec":
        """``filter`` — keep elements whose predicate holds."""
        idx = Var(fresh_name(index_name), I64)
        elem = self._element(idx)
        node = Filter(self.length, idx, lift(pred(elem)), elem.expr)
        return Vec(node)

    def group_by(
        self, key: Callable[[EH], Liftable], index_name: str = "i"
    ) -> EH:
        """``groupBy`` — bucket elements by an integer key function."""
        idx = Var(fresh_name(index_name), I64)
        elem = self._element(idx)
        return EH(GroupBy(self.length, idx, lift(key(elem)), elem.expr))

    def foreach(
        self,
        fn: Callable[[EH, EH], Sequence[Stmt]],
        index_name: str = "i",
    ) -> Foreach:
        """``foreach`` — effectful per-element function.

        ``fn(elem, idx)`` returns the statements to execute per iteration.
        """
        idx = Var(fresh_name(index_name), I64)
        stmts = tuple(fn(self[EH(idx)], EH(idx)))
        return Foreach(self.length, idx, stmts)


class Mat(EH):
    """Handle for a rank-2 collection with row/column pattern entry points."""

    def __init__(self, expr: Expr, rows: Expr, cols: Expr):
        if not isinstance(expr.ty, ArrayType) or expr.ty.rank != 2:
            raise TypeMismatchError(f"Mat requires a rank-2 array, got {expr.ty}")
        super().__init__(expr)
        self.rows = rows
        self.cols = cols

    @property
    def elem_ty(self) -> Type:
        return self.expr.ty.elem  # type: ignore[union-attr]

    def __getitem__(self, ij: Tuple[Liftable, Liftable]) -> EH:
        i, j = ij
        return EH(ArrayRead(self.expr, (lift(i), lift(j))))

    def row(self, i: Liftable) -> "SliceView":
        """A view of row ``i`` supporting the vector pattern API."""
        return SliceView(self, lift(i), axis=1)

    def col(self, j: Liftable) -> "SliceView":
        """A view of column ``j`` supporting the vector pattern API."""
        return SliceView(self, lift(j), axis=0)

    def map_rows(
        self, fn: Callable[["SliceView"], Liftable], index_name: str = "i"
    ) -> EH:
        """``mapRows`` — outer Map over rows; fn receives the row view."""
        idx = Var(fresh_name(index_name), I64)
        body = lift(fn(self.row(EH(idx))))
        node = Map(self.rows, idx, body)
        if node.ty.rank == 1:
            return Vec(node, self.rows)
        return EH(node)

    def map_cols(
        self, fn: Callable[["SliceView"], Liftable], index_name: str = "j"
    ) -> EH:
        """``mapCols`` — outer Map over columns; fn receives the col view."""
        idx = Var(fresh_name(index_name), I64)
        body = lift(fn(self.col(EH(idx))))
        node = Map(self.cols, idx, body)
        if node.ty.rank == 1:
            return Vec(node, self.cols)
        return EH(node)

    def map_elements(
        self,
        fn: Callable[[EH, EH], Liftable],
        index_names: Tuple[str, str] = ("i", "j"),
    ) -> Vec:
        """Nested Map over all (i, j); fn receives the two indices."""
        outer_idx = Var(fresh_name(index_names[0]), I64)
        inner_idx = Var(fresh_name(index_names[1]), I64)
        body = lift(fn(EH(outer_idx), EH(inner_idx)))
        inner = Map(self.cols, inner_idx, body)
        return Vec(Map(self.rows, outer_idx, inner), self.rows)

    def foreach_elements(
        self,
        fn: Callable[[EH, EH], Sequence[Stmt]],
        index_names: Tuple[str, str] = ("i", "j"),
    ) -> Foreach:
        """Nested Foreach over all (i, j) for in-place updates."""
        outer_idx = Var(fresh_name(index_names[0]), I64)
        inner_idx = Var(fresh_name(index_names[1]), I64)
        stmts = tuple(fn(EH(outer_idx), EH(inner_idx)))
        inner = Foreach(self.cols, inner_idx, stmts)
        return Foreach(self.rows, outer_idx, (ExprStmt(inner),))


class SliceView:
    """A 1-D view of a matrix row or column.

    ``axis`` is the *free* axis: 1 for a row view (column index varies),
    0 for a column view (row index varies).  Element access produces a
    two-index :class:`ArrayRead` on the underlying matrix, preserving the
    information the locality analysis needs.
    """

    def __init__(self, mat: Mat, fixed: Expr, axis: int):
        if axis not in (0, 1):
            raise IRError(f"axis must be 0 or 1, got {axis}")
        self.mat = mat
        self.fixed = fixed
        self.axis = axis
        self.length = mat.cols if axis == 1 else mat.rows

    def _indices(self, free: Expr) -> Tuple[Expr, Expr]:
        if self.axis == 1:
            return (self.fixed, free)
        return (free, self.fixed)

    def __getitem__(self, index: Liftable) -> EH:
        return EH(ArrayRead(self.mat.expr, self._indices(lift(index))))

    @property
    def elem_ty(self) -> Type:
        return self.mat.elem_ty

    def map(self, fn: Callable[[EH], Liftable], index_name: str = "k") -> Vec:
        idx = Var(fresh_name(index_name), I64)
        body = lift(fn(self[EH(idx)]))
        return Vec(Map(self.length, idx, body), self.length)

    def zip_with(
        self, other: Union[Vec, "SliceView"], fn: Callable[[EH, EH], Liftable],
        index_name: str = "k",
    ) -> Vec:
        idx = Var(fresh_name(index_name), I64)
        body = lift(fn(self[EH(idx)], other[EH(idx)]))
        return Vec(ZipWith(self.length, idx, body), self.length)

    def reduce(self, op: str = "+", index_name: str = "k") -> EH:
        idx = Var(fresh_name(index_name), I64)
        body = ArrayRead(self.mat.expr, self._indices(idx))
        return EH(Reduce(self.length, idx, body, op))

    def map_reduce(
        self, fn: Callable[[EH], Liftable], op: str = "+", index_name: str = "k"
    ) -> EH:
        idx = Var(fresh_name(index_name), I64)
        body = lift(fn(self[EH(idx)]))
        return EH(Reduce(self.length, idx, body, op))


class Builder:
    """Accumulates program parameters and builds the final Program."""

    def __init__(self, name: str):
        self.name = name
        self._params: List[Param] = []
        self._size_hints: Dict[str, int] = {}
        self._array_shapes: Dict[str, Tuple[Expr, ...]] = {}

    def _add(self, param: Param) -> Param:
        if any(p.name == param.name for p in self._params):
            raise IRError(f"duplicate parameter {param.name!r}")
        self._params.append(param)
        return param

    def size(self, name: str, hint: Optional[int] = None) -> EH:
        """Declare an integer size parameter with an optional analysis hint."""
        param = self._add(Param(name, I64))
        if hint is not None:
            self._size_hints[name] = hint
        return EH(param)

    def scalar(self, name: str, ty: ScalarType) -> EH:
        """Declare a scalar input parameter."""
        return EH(self._add(Param(name, ty)))

    def vector(
        self, name: str, elem: ScalarType, length: Union[str, Liftable]
    ) -> Vec:
        """Declare a rank-1 array parameter.

        ``length`` may be the name of a (new or existing) size parameter or
        any integer expression.
        """
        length_expr = self._size_expr(length)
        param = self._add(Param(name, ArrayType(elem, 1)))
        self._array_shapes[name] = (length_expr,)
        return Vec(param, length_expr)

    def matrix(
        self,
        name: str,
        elem: ScalarType,
        rows: Union[str, Liftable],
        cols: Union[str, Liftable],
    ) -> Mat:
        """Declare a rank-2 array parameter (row-major logical layout)."""
        rows_expr = self._size_expr(rows)
        cols_expr = self._size_expr(cols)
        param = self._add(Param(name, ArrayType(elem, 2)))
        self._array_shapes[name] = (rows_expr, cols_expr)
        return Mat(param, rows_expr, cols_expr)

    def struct(self, name: str, ty: StructType) -> "StructHandle":
        """Declare a struct parameter (e.g. a CSR graph)."""
        handle = StructHandle(self._add(Param(name, ty)))
        handle._builder = self
        return handle

    def _size_expr(self, size: Union[str, Liftable]) -> Expr:
        if isinstance(size, str):
            for p in self._params:
                if p.name == size:
                    return p
            return self._add(Param(size, I64))
        return lift(size)

    def set_size_hint(self, name: str, value: int) -> None:
        """Provide the representative value used when a size is dynamic."""
        self._size_hints[name] = value

    def build(self, result: Liftable, validate: bool = True) -> Program:
        """Finalize the program (optionally validating well-formedness)."""
        from ..observability import get_tracer, instrumented_stage

        with instrumented_stage("ir.build", inject=False, program=self.name):
            program = Program(
                self.name,
                tuple(self._params),
                lift(result),
                dict(self._size_hints),
                dict(self._array_shapes),
            )
            if validate:
                from .validate import validate_program

                with get_tracer().span("ir.validate", program=self.name):
                    validate_program(program)
        return program


class StructHandle(EH):
    """Handle for a struct parameter; fields are accessed by name."""

    _builder: Optional["Builder"] = None

    def field(self, name: str) -> EH:
        return EH(FieldRead(self.expr, name))

    def field_vector(self, name: str, length: Liftable) -> Vec:
        """Access an array field, supplying its logical length.

        The length is registered as the field array's shape so the access
        analysis can size footprints and strides correctly.
        """
        length_expr = lift(length)
        if self._builder is not None and isinstance(self.expr, Param):
            key = f"{self.expr.name}.{name}"
            self._builder._array_shapes.setdefault(key, (length_expr,))
        return Vec(FieldRead(self.expr, name), length_expr)
