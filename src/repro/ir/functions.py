"""Registry of user-defined scalar device functions.

Some pattern bodies contain inherently sequential scalar computations (the
canonical example is Mandelbrot's escape-time loop).  These are not parallel
patterns — they run entirely inside one thread — so the IR models them as
opaque named functions with:

* a vectorized NumPy implementation (for the functional interpreter),
* a floating-point-operation estimate (for the compute-cost model),
* CUDA C source (for the code generator).

Registered functions are invoked through :class:`FnCall`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

from ..errors import IRError
from .expr import Expr, Node
from .types import ScalarType, Type


@dataclass(frozen=True)
class DeviceFunction:
    """A named scalar function usable inside pattern bodies."""

    name: str
    arity: int
    result_ty: ScalarType
    #: Vectorized implementation: takes NumPy arrays/scalars, returns same.
    impl: Callable
    #: Estimated floating-point (or equivalent) operations per invocation.
    flops: float
    #: CUDA C body used by codegen, as a ``__device__`` function definition.
    cuda_source: str = ""


_REGISTRY: Dict[str, DeviceFunction] = {}


def register_function(fn: DeviceFunction) -> DeviceFunction:
    """Register (or replace) a device function by name."""
    _REGISTRY[fn.name] = fn
    return fn


def get_function(name: str) -> DeviceFunction:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise IRError(f"unknown device function {name!r}")


def has_function(name: str) -> bool:
    return name in _REGISTRY


class FnCall(Expr):
    """A call to a registered device function."""

    def __init__(self, name: str, args: Sequence[Expr]):
        fn = get_function(name)
        if len(args) != fn.arity:
            raise IRError(
                f"device function {name} takes {fn.arity} args, got {len(args)}"
            )
        self.name = name
        self.args = tuple(args)
        self._fn = fn

    @property
    def fn(self) -> DeviceFunction:
        return self._fn

    @property
    def ty(self) -> Type:
        return self._fn.result_ty

    def children(self) -> Tuple[Node, ...]:
        return self.args

    def __repr__(self) -> str:
        return f"FnCall({self.name})"
