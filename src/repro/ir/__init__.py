"""Pattern intermediate representation (Section III of the paper).

Public surface:

* :mod:`repro.ir.types` — scalar/array/struct types.
* :mod:`repro.ir.expr` — expression and statement nodes.
* :mod:`repro.ir.patterns` — the six parallel patterns and ``Program``.
* :mod:`repro.ir.builder` — the front-end DSL used by applications.
* :mod:`repro.ir.traversal` / :mod:`repro.ir.rewrite` — analysis substrate.
"""

from .types import (  # noqa: F401
    BOOL,
    F32,
    F64,
    I32,
    I64,
    ArrayType,
    ScalarType,
    StructType,
    Type,
)
from .expr import (  # noqa: F401
    Alloc,
    ArrayRead,
    BinOp,
    Bind,
    Block,
    Call,
    Cast,
    Cmp,
    Const,
    Expr,
    ExprStmt,
    FieldRead,
    If,
    Length,
    Node,
    Param,
    RandomIndex,
    Select,
    Stmt,
    Store,
    UnOp,
    Var,
)
from .patterns import (  # noqa: F401
    ALL_PATTERN_CLASSES,
    Filter,
    Foreach,
    GroupBy,
    Map,
    PatternExpr,
    Program,
    Reduce,
    ZipWith,
)
from .builder import Builder, EH, Mat, SliceView, Vec, fn_call, lift  # noqa: F401
from .functions import (  # noqa: F401
    DeviceFunction,
    FnCall,
    get_function,
    has_function,
    register_function,
)
from .printer import pretty, pretty_program  # noqa: F401
from .traversal import (  # noqa: F401
    child_patterns,
    find_instances,
    find_patterns,
    max_nest_depth,
    pattern_paths,
    structurally_equal,
    walk,
)
from .validate import validate_expr, validate_program  # noqa: F401
