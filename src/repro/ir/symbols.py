"""Fresh-name generation for IR binders.

The front-end builder introduces index variables and temporaries; giving each
a unique name keeps printed IR and generated CUDA unambiguous without
requiring alpha-renaming passes later.
"""

from __future__ import annotations

import itertools
import threading


class SymbolTable:
    """Thread-safe fresh-name generator.

    Names are ``<prefix><counter>`` (e.g. ``i0``, ``i1``, ``tmp7``).  A
    process-wide default instance backs :func:`fresh_name`; tests may create
    isolated tables for deterministic output.
    """

    def __init__(self) -> None:
        self._counters: dict[str, itertools.count] = {}
        self._lock = threading.Lock()

    def fresh(self, prefix: str = "t") -> str:
        """Return a name with the given prefix that was never returned before."""
        with self._lock:
            counter = self._counters.setdefault(prefix, itertools.count())
            return f"{prefix}{next(counter)}"

    def reset(self) -> None:
        """Forget all counters (test isolation only)."""
        with self._lock:
            self._counters.clear()


_DEFAULT = SymbolTable()


def fresh_name(prefix: str = "t") -> str:
    """Return a fresh name from the process-wide symbol table."""
    return _DEFAULT.fresh(prefix)


def reset_names() -> None:
    """Reset the process-wide symbol table (intended for tests)."""
    _DEFAULT.reset()
