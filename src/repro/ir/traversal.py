"""Generic IR traversal utilities.

These walkers are the substrate for every analysis: nest extraction, access
collection, constraint generation, and the optimizers all express themselves
as traversals over ``Node.children()``.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple, Type as PyType, TypeVar

from .expr import BinOp, Block, Call, Cast, Cmp, Const, Node, Param, Var
from .patterns import PatternExpr

T = TypeVar("T", bound=Node)


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and every transitive child, pre-order."""
    stack: List[Node] = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(current.children()))


def find_instances(node: Node, cls: PyType[T]) -> List[T]:
    """Collect all nodes of the given class, in pre-order."""
    return [n for n in walk(node) if isinstance(n, cls)]


def find_patterns(node: Node, include_root: bool = True) -> List[PatternExpr]:
    """Collect all pattern nodes under (and optionally including) ``node``."""
    found = find_instances(node, PatternExpr)
    if not include_root and found and found[0] is node:
        return found[1:]
    return found


def child_patterns(pattern: PatternExpr) -> List[PatternExpr]:
    """Patterns nested *directly* inside a pattern's body.

    A pattern P is a direct child of Q when it appears in Q's body with no
    other pattern in between — these are exactly the patterns one nest
    level deeper than Q.
    """
    result: List[PatternExpr] = []
    stack: List[Node] = list(reversed(pattern.body_nodes()))
    while stack:
        current = stack.pop()
        if isinstance(current, PatternExpr):
            result.append(current)
            continue  # deeper patterns belong to the child's subtree
        stack.extend(reversed(current.children()))
    return result


def pattern_paths(root: PatternExpr) -> List[Tuple[PatternExpr, ...]]:
    """Enumerate all root-to-pattern nest paths.

    Each returned tuple starts at ``root`` and ends at some (possibly the
    same) pattern; the tuple length minus one is that pattern's nest level.
    """
    paths: List[Tuple[PatternExpr, ...]] = []

    def visit(path: Tuple[PatternExpr, ...]) -> None:
        paths.append(path)
        for child in child_patterns(path[-1]):
            visit(path + (child,))

    visit((root,))
    return paths


def max_nest_depth(root: PatternExpr) -> int:
    """The number of nest levels under ``root`` (1 for a flat pattern)."""
    return max(len(p) for p in pattern_paths(root))


def free_vars(node: Node) -> List[Var]:
    """Variables read under ``node`` that are not bound under ``node``.

    Pattern index variables and ``Bind`` targets introduce bindings; any
    other :class:`Var` occurrence is free.  Used by the validator and by
    codegen to compute kernel parameters.
    """
    from .expr import Bind

    bound: set = set()
    seen: List[Var] = []
    order: List[Var] = []

    def visit(current: Node, local_bound: frozenset) -> None:
        if isinstance(current, Var):
            if current.name not in local_bound and current not in seen:
                seen.append(current)
                order.append(current)
            return
        new_bound = local_bound
        if isinstance(current, PatternExpr):
            new_bound = local_bound | {current.index.name}
            if hasattr(current, "combine") and getattr(current, "combine", None):
                lhs, rhs, _ = current.combine  # type: ignore[attr-defined]
                new_bound = new_bound | {lhs.name, rhs.name}
        if isinstance(current, Block):
            inner = new_bound
            for stmt in current.stmts:
                if isinstance(stmt, Bind):
                    visit(stmt.value, inner)
                    inner = inner | {stmt.var.name}
                else:
                    visit(stmt, inner)
            visit(current.result, inner)
            return
        for child in current.children():
            visit(child, new_bound)

    visit(node, frozenset())
    return order


def structurally_equal(a: Node, b: Node) -> bool:
    """Structural equality modulo binder names (alpha-equivalence).

    Nodes use identity equality by design; tests use this helper to compare
    rewritten trees against expected shapes.
    """
    return _structural(a, b, {})


def _structural(a: Node, b: Node, renaming: dict) -> bool:
    if type(a) is not type(b):
        # ZipWith is-a Map but prints/compares as its own class.
        return False
    if isinstance(a, Const):
        return a.value == b.value and a.ty == b.ty  # type: ignore[union-attr]
    if isinstance(a, Var):
        return renaming.get(a.name, a.name) == b.name  # type: ignore[union-attr]
    if isinstance(a, Param):
        return a.name == b.name and a.ty == b.ty  # type: ignore[union-attr]
    if isinstance(a, BinOp) and a.op != b.op:  # type: ignore[union-attr]
        return False
    if isinstance(a, Cmp) and a.op != b.op:  # type: ignore[union-attr]
        return False
    if isinstance(a, Call) and a.fn != b.fn:  # type: ignore[union-attr]
        return False
    if isinstance(a, Cast) and a.ty != b.ty:  # type: ignore[union-attr]
        return False
    inner = renaming
    if isinstance(a, PatternExpr):
        inner = dict(renaming)
        inner[a.index.name] = b.index.name  # type: ignore[union-attr]
    from .expr import Bind

    if isinstance(a, Block):
        if len(a.stmts) != len(b.stmts):  # type: ignore[union-attr]
            return False
        inner = dict(renaming)
        for sa, sb in zip(a.stmts, b.stmts):  # type: ignore[union-attr]
            if isinstance(sa, Bind) != isinstance(sb, Bind):
                return False
            if isinstance(sa, Bind):
                if not _structural(sa.value, sb.value, inner):
                    return False
                inner[sa.var.name] = sb.var.name
            elif not _structural(sa, sb, inner):
                return False
        return _structural(a.result, b.result, inner)  # type: ignore[union-attr]
    ca, cb = a.children(), b.children()
    if len(ca) != len(cb):
        return False
    return all(_structural(x, y, inner) for x, y in zip(ca, cb))


def count_nodes(node: Node) -> int:
    """Total number of nodes in the tree (diagnostics/metrics)."""
    return sum(1 for _ in walk(node))
