"""Parallel-pattern nodes (Table I of the paper) and the Program container.

Each pattern binds an index variable over a rectangular domain ``[0, size)``
and carries a body written in terms of that index.  Collection-oriented
front-end forms (``xs map f``) are lowered to this index-oriented canonical
form by :mod:`repro.ir.builder`: element access becomes an explicit
:class:`~repro.ir.expr.ArrayRead` on the bound index, which is what makes
memory-access analysis possible.

Patterns are themselves expressions, so nesting is direct: a ``Map`` whose
body contains a ``Reduce`` is the paper's two-level nest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import IRError, TypeMismatchError
from .expr import Const, Expr, Node, Stmt, Var
from .types import ArrayType, ScalarType, Type

#: Built-in associative reduction operators and their identities.
REDUCE_OPS = {
    "+": 0,
    "*": 1,
    "min": None,  # identity depends on element type (+inf / INT_MAX)
    "max": None,  # identity depends on element type (-inf / INT_MIN)
}


class PatternExpr(Expr):
    """Base class for all parallel-pattern nodes.

    Attributes:
        size: the domain extent (an index-typed expression; a
            :class:`~repro.ir.expr.Const` when statically known).
        index: the variable bound to the domain index inside the body.
    """

    size: Expr
    index: Var

    #: Whether combining partial results requires global synchronization
    #: when this pattern's own domain is parallelized (Table II hard
    #: constraint).  Overridden per subclass.
    needs_global_sync: bool = False

    #: Whether the output size is known only at run time (Filter/GroupBy),
    #: which also forces Span(all) (Section IV-A).
    dynamic_output_size: bool = False

    @property
    def static_size(self) -> Optional[int]:
        """The domain size if it is a compile-time constant, else None."""
        if isinstance(self.size, Const):
            return int(self.size.value)
        return None

    def body_nodes(self) -> Tuple[Node, ...]:
        """The nodes making up the pattern body (excluding size/index)."""
        raise NotImplementedError


def _check_index(index: Var) -> None:
    if not isinstance(index.ty, ScalarType) or not index.ty.is_integer:
        raise TypeMismatchError(f"pattern index {index.name} must be integer-typed")


class Map(PatternExpr):
    """Construct a new collection by applying a pure function per element.

    ``Map(size=N, index=i, body=e)`` evaluates ``e`` for ``i`` in ``[0, N)``
    and collects the results.  If the body produces arrays, the result is a
    nested array (a rank-(r+1) array once materialized).
    """

    def __init__(self, size: Expr, index: Var, body: Expr):
        _check_index(index)
        self.size = size
        self.index = index
        self.body = body

    @property
    def ty(self) -> Type:
        body_ty = self.body.ty
        if isinstance(body_ty, ArrayType):
            return ArrayType(body_ty.elem, body_ty.rank + 1)
        return ArrayType(body_ty, 1)

    def children(self) -> Tuple[Node, ...]:
        return (self.size, self.body)

    def body_nodes(self) -> Tuple[Node, ...]:
        return (self.body,)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.index.name} < {self.size!r})"


class ZipWith(Map):
    """Apply a pure function to pairs drawn from two equal-length inputs.

    Structurally a :class:`Map` whose body reads two collections at the
    bound index; kept as a distinct node for Table-I fidelity and for the
    printer.  All analyses treat it exactly as a Map.
    """


class Foreach(PatternExpr):
    """Apply an effectful function per element; produces no value.

    The body is a statement sequence; the writes it performs must be
    disjoint across iterations for the pattern to be a valid parallel
    Foreach (checked best-effort by :mod:`repro.ir.validate`).
    """

    needs_global_sync = False

    def __init__(self, size: Expr, index: Var, body: Sequence[Stmt]):
        _check_index(index)
        if not body:
            raise IRError("Foreach body must contain at least one statement")
        self.size = size
        self.index = index
        self.body = tuple(body)

    @property
    def ty(self) -> Type:
        raise TypeMismatchError("Foreach produces no value")

    def children(self) -> Tuple[Node, ...]:
        return (self.size, *self.body)

    def body_nodes(self) -> Tuple[Node, ...]:
        return self.body


class Filter(PatternExpr):
    """Keep the values whose predicate holds, preserving order.

    Compaction requires a scan across the whole domain, so parallelizing a
    Filter requires global synchronization and its output size is dynamic —
    both properties force ``Span(all)`` on its level.
    """

    needs_global_sync = True
    dynamic_output_size = True

    def __init__(self, size: Expr, index: Var, pred: Expr, value: Expr):
        _check_index(index)
        from .types import BOOL  # local import to avoid cycle noise

        if pred.ty != BOOL:
            raise TypeMismatchError("Filter predicate must be bool")
        self.size = size
        self.index = index
        self.pred = pred
        self.value = value

    @property
    def ty(self) -> Type:
        vty = self.value.ty
        if isinstance(vty, ArrayType):
            return ArrayType(vty.elem, vty.rank + 1)
        return ArrayType(vty, 1)

    def children(self) -> Tuple[Node, ...]:
        return (self.size, self.pred, self.value)

    def body_nodes(self) -> Tuple[Node, ...]:
        return (self.pred, self.value)


class Reduce(PatternExpr):
    """Fold the domain with an associative binary operator.

    Either a built-in operator (``op`` in :data:`REDUCE_OPS`) or a custom
    combiner given as ``(lhs_var, rhs_var, combine_expr)``.  Associativity
    of custom combiners is the caller's obligation (as in the paper's
    language) and is spot-checked by the validator on sample inputs.
    """

    needs_global_sync = True

    def __init__(
        self,
        size: Expr,
        index: Var,
        body: Expr,
        op: str = "+",
        combine: Optional[Tuple[Var, Var, Expr]] = None,
    ):
        _check_index(index)
        if combine is None and op not in REDUCE_OPS:
            raise IRError(f"unknown reduction operator {op!r}")
        if combine is not None and op != "custom":
            raise IRError("custom combiner requires op='custom'")
        if not isinstance(body.ty, ScalarType):
            raise TypeMismatchError("Reduce body must produce a scalar")
        self.size = size
        self.index = index
        self.body = body
        self.op = op
        self.combine = combine

    @property
    def ty(self) -> Type:
        return self.body.ty

    def children(self) -> Tuple[Node, ...]:
        extra: Tuple[Node, ...] = ()
        if self.combine is not None:
            extra = (self.combine[2],)
        return (self.size, self.body, *extra)

    def body_nodes(self) -> Tuple[Node, ...]:
        return (self.body,)

    def __repr__(self) -> str:
        return f"Reduce({self.index.name} < {self.size!r}, op={self.op})"


class GroupBy(PatternExpr):
    """Group values by a computed key.

    The result is a pair of parallel arrays (unique keys, per-key buckets).
    Like Filter, the output shape is dynamic and bucket insertion requires
    global coordination, so parallelizing a GroupBy forces ``Span(all)``.
    """

    needs_global_sync = True
    dynamic_output_size = True

    def __init__(self, size: Expr, index: Var, key: Expr, value: Expr):
        _check_index(index)
        if not isinstance(key.ty, ScalarType) or not key.ty.is_integer:
            raise TypeMismatchError("GroupBy key must be integer-typed")
        self.size = size
        self.index = index
        self.key = key
        self.value = value

    @property
    def ty(self) -> Type:
        vty = self.value.ty
        if isinstance(vty, ArrayType):
            return ArrayType(vty.elem, vty.rank + 2)
        return ArrayType(vty, 2)

    def children(self) -> Tuple[Node, ...]:
        return (self.size, self.key, self.value)

    def body_nodes(self) -> Tuple[Node, ...]:
        return (self.key, self.value)


ALL_PATTERN_CLASSES = (Map, ZipWith, Foreach, Filter, Reduce, GroupBy)


@dataclass
class Program:
    """A compilable unit: named inputs plus a result expression.

    ``result`` is usually a pattern expression (the outermost level-0
    pattern); ``size_hints`` optionally binds non-constant size parameters
    to representative values for the analysis (Section IV-C lets users
    provide size information; 1000 is assumed otherwise).
    """

    name: str
    params: Tuple["Param", ...]  # noqa: F821 - forward ref to expr.Param
    result: Expr
    size_hints: dict = None  # type: ignore[assignment]
    #: Shape expressions per array parameter name (filled by the builder);
    #: lets the access analysis compute strides for multi-dim params.
    array_shapes: dict = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.size_hints is None:
            self.size_hints = {}
        if self.array_shapes is None:
            self.array_shapes = {}

    def param(self, name: str):
        """Look up a parameter by name."""
        for p in self.params:
            if p.name == name:
                return p
        raise IRError(f"program {self.name} has no parameter {name!r}")
