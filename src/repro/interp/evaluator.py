"""Functional interpreter: executes pattern IR over NumPy values.

The interpreter is the reproduction's *correctness oracle*: pattern
semantics here match the codegen templates, but execution is mapping-
independent by construction, so any mapping decision must produce the same
values.  Tests compare interpreter output against straight NumPy reference
implementations of each application.

Evaluation strategy: pattern bodies that are pure expressions (no nested
patterns, statements, or randomness) evaluate *vectorized* — the index
variable is bound to ``np.arange(size)`` and NumPy broadcasting does the
rest.  Everything else falls back to a per-iteration loop, which keeps the
interpreter simple and general; test-sized inputs make this affordable.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..errors import ExecutionError
from ..ir.expr import (
    Alloc,
    ArrayRead,
    BinOp,
    Bind,
    Block,
    Call,
    Cast,
    Cmp,
    Const,
    Expr,
    ExprStmt,
    FieldRead,
    If,
    Length,
    Node,
    Param,
    RandomIndex,
    Select,
    Stmt,
    Store,
    UnOp,
    Var,
)
from ..ir.functions import FnCall
from ..ir.patterns import (
    Filter,
    Foreach,
    GroupBy,
    Map,
    PatternExpr,
    Program,
    Reduce,
)
from ..ir.types import ScalarType
from .env import Env

_BINOPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.true_divide,
    "//": np.floor_divide,
    "%": np.mod,
    "min": np.minimum,
    "max": np.maximum,
    "&": np.bitwise_and,
    "|": np.bitwise_or,
    "^": np.bitwise_xor,
}

_CMPOPS = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "==": np.equal,
    "!=": np.not_equal,
}

_CALLS = {
    "sqrt": np.sqrt,
    "exp": np.exp,
    "log": np.log,
    "pow": np.power,
    "abs": np.abs,
    "floor": np.floor,
    "ceil": np.ceil,
    "sin": np.sin,
    "cos": np.cos,
    "tanh": np.tanh,
}

_REDUCERS = {
    "+": np.add.reduce,
    "*": np.multiply.reduce,
    "min": np.minimum.reduce,
    "max": np.maximum.reduce,
}

_REDUCE_INIT = {
    "+": 0.0,
    "*": 1.0,
}


def _is_vectorizable(node: Node) -> bool:
    """Pure expression bodies evaluate in one NumPy shot."""
    if isinstance(node, (PatternExpr, Block, Store, If, Alloc, RandomIndex)):
        return False
    return all(_is_vectorizable(child) for child in node.children())


def _array_reads_of(node: Node):
    """Yield every ArrayRead under an expression (pre-order)."""
    if isinstance(node, ArrayRead):
        yield node
    for child in node.children():
        yield from _array_reads_of(child)


class Evaluator:
    """Evaluates a :class:`~repro.ir.patterns.Program` on concrete inputs.

    ``vectorize=False`` forces the per-iteration loop path even for bodies
    the vectorized fast path could handle.  The two paths are semantically
    equivalent by contract; the differential-testing harness exercises both
    and compares (the interpreter is the correctness oracle, so it must be
    self-consistent before it can arbitrate mapping invariance).
    """

    def __init__(self, program: Program, seed: int = 0, vectorize: bool = True):
        self.program = program
        self.rng = np.random.default_rng(seed)
        self.vectorize = vectorize

    def _vectorizable(self, node: Node) -> bool:
        return self.vectorize and _is_vectorizable(node)

    def run(self, **inputs: Any) -> Any:
        """Execute the program; inputs are keyed by parameter name.

        Arrays should be NumPy arrays; struct parameters are dictionaries
        of field name to value.
        """
        from ..observability import instrumented_stage

        with instrumented_stage(
            "interpreter", span_name="interpret", program=self.program.name
        ):
            env = Env()
            for param in self.program.params:
                if param.name not in inputs:
                    raise ExecutionError(
                        f"missing input {param.name!r} for {self.program.name}"
                    )
                env.bind(param.name, inputs[param.name])
            return self.eval_expr(self.program.result, env)

    # -- expressions ------------------------------------------------------

    def eval_expr(self, node: Expr, env: Env) -> Any:
        if isinstance(node, Const):
            return node.value
        if isinstance(node, (Var, Param)):
            try:
                return env.lookup(node.name)
            except KeyError:
                raise ExecutionError(f"unbound name {node.name!r}")
        if isinstance(node, BinOp):
            lhs = self.eval_expr(node.lhs, env)
            rhs = self.eval_expr(node.rhs, env)
            return _BINOPS[node.op](lhs, rhs)
        if isinstance(node, UnOp):
            value = self.eval_expr(node.operand, env)
            return np.logical_not(value) if node.op == "not" else np.negative(value)
        if isinstance(node, Cmp):
            lhs = self.eval_expr(node.lhs, env)
            rhs = self.eval_expr(node.rhs, env)
            return _CMPOPS[node.op](lhs, rhs)
        if isinstance(node, Select):
            cond = self.eval_expr(node.cond, env)
            if_true = self.eval_expr(node.if_true, env)
            if_false = self.eval_expr(node.if_false, env)
            return np.where(cond, if_true, if_false) if np.ndim(cond) else (
                if_true if cond else if_false
            )
        if isinstance(node, Call):
            args = [self.eval_expr(a, env) for a in node.args]
            return _CALLS[node.fn](*args)
        if isinstance(node, FnCall):
            args = [self.eval_expr(a, env) for a in node.args]
            return node.fn.impl(*args)
        if isinstance(node, Cast):
            value = self.eval_expr(node.operand, env)
            dtype = node.ty.np_dtype
            return np.asarray(value).astype(dtype) if np.ndim(value) else (
                dtype.type(value)
            )
        if isinstance(node, ArrayRead):
            base = self.eval_expr(node.array, env)
            idx = tuple(self._as_index(self.eval_expr(i, env)) for i in node.indices)
            return base[idx if len(idx) > 1 else idx[0]]
        if isinstance(node, FieldRead):
            struct = self.eval_expr(node.struct, env)
            try:
                return struct[node.field_name]
            except (KeyError, TypeError):
                raise ExecutionError(
                    f"struct value has no field {node.field_name!r}"
                )
        if isinstance(node, Length):
            base = self.eval_expr(node.array, env)
            return np.asarray(base).shape[node.axis]
        if isinstance(node, Alloc):
            shape = tuple(int(self.eval_expr(s, env)) for s in node.shape)
            dtype = (
                node.elem.np_dtype
                if isinstance(node.elem, ScalarType)
                else np.float64
            )
            return np.zeros(shape, dtype=dtype)
        if isinstance(node, RandomIndex):
            size = int(self.eval_expr(node.size, env))
            return int(self.rng.integers(0, max(1, size)))
        if isinstance(node, Block):
            inner = env.child()
            for stmt in node.stmts:
                self.exec_stmt(stmt, inner)
            return self.eval_expr(node.result, inner)
        if isinstance(node, PatternExpr):
            return self.eval_pattern(node, env)
        raise ExecutionError(f"cannot evaluate {type(node).__name__}")

    @staticmethod
    def _as_index(value: Any) -> Any:
        if np.ndim(value):
            return np.asarray(value).astype(np.int64)
        return int(value)

    # -- statements -------------------------------------------------------

    def exec_stmt(self, stmt: Stmt, env: Env) -> None:
        if isinstance(stmt, Bind):
            env.bind(stmt.var.name, self.eval_expr(stmt.value, env))
            return
        if isinstance(stmt, Store):
            base = self.eval_expr(stmt.array, env)
            idx = tuple(
                self._as_index(self.eval_expr(i, env)) for i in stmt.indices
            )
            value = self.eval_expr(stmt.value, env)
            base[idx if len(idx) > 1 else idx[0]] = value
            return
        if isinstance(stmt, If):
            cond = self.eval_expr(stmt.cond, env)
            branch = stmt.then if cond else stmt.otherwise
            for inner in branch:
                self.exec_stmt(inner, env)
            return
        if isinstance(stmt, ExprStmt):
            self.eval_expr(stmt.expr, env)
            return
        raise ExecutionError(f"cannot execute {type(stmt).__name__}")

    # -- patterns ---------------------------------------------------------

    def eval_pattern(self, pattern: PatternExpr, env: Env) -> Any:
        size = int(self.eval_expr(pattern.size, env))
        if isinstance(pattern, Map):  # covers ZipWith
            return self._eval_map(pattern, env, size)
        if isinstance(pattern, Reduce):
            return self._eval_reduce(pattern, env, size)
        if isinstance(pattern, Filter):
            return self._eval_filter(pattern, env, size)
        if isinstance(pattern, GroupBy):
            return self._eval_groupby(pattern, env, size)
        if isinstance(pattern, Foreach):
            return self._eval_foreach(pattern, env, size)
        raise ExecutionError(f"unknown pattern {type(pattern).__name__}")

    def _eval_map(self, pattern: Map, env: Env, size: int) -> np.ndarray:
        if self._vectorizable(pattern.body):
            inner = env.child()
            inner.bind(pattern.index.name, np.arange(size, dtype=np.int64))
            result = self.eval_expr(pattern.body, inner)
            if np.ndim(result) == 0:
                result = np.full(size, result)
            return np.asarray(result)
        values = []
        for i in range(size):
            inner = env.child()
            inner.bind(pattern.index.name, i)
            values.append(self.eval_expr(pattern.body, inner))
        if not values:
            return np.zeros(0)
        try:
            return np.stack([np.asarray(v) for v in values])
        except ValueError:
            ragged = np.empty(len(values), dtype=object)
            for i, v in enumerate(values):
                ragged[i] = v
            return ragged

    def _eval_reduce(self, pattern: Reduce, env: Env, size: int) -> Any:
        if pattern.op != "custom" and self._vectorizable(pattern.body):
            inner = env.child()
            inner.bind(pattern.index.name, np.arange(size, dtype=np.int64))
            values = self.eval_expr(pattern.body, inner)
            if np.ndim(values) == 0:
                values = np.full(size, values)
            if size == 0:
                if pattern.op in _REDUCE_INIT:
                    return _REDUCE_INIT[pattern.op]
                raise ExecutionError(
                    f"empty {pattern.op}-reduce has no identity"
                )
            return _REDUCERS[pattern.op](np.asarray(values))
        acc = None
        for i in range(size):
            inner = env.child()
            inner.bind(pattern.index.name, i)
            value = self.eval_expr(pattern.body, inner)
            if acc is None:
                acc = value
            elif pattern.op == "custom":
                lhs, rhs, combine = pattern.combine  # type: ignore[misc]
                combine_env = env.child()
                combine_env.bind(lhs.name, acc)
                combine_env.bind(rhs.name, value)
                acc = self.eval_expr(combine, combine_env)
            else:
                acc = _BINOPS[pattern.op](acc, value)
        if acc is None:
            if pattern.op in _REDUCE_INIT:
                return _REDUCE_INIT[pattern.op]
            raise ExecutionError(f"empty {pattern.op}-reduce has no identity")
        return acc

    def _eval_filter(self, pattern: Filter, env: Env, size: int) -> np.ndarray:
        if self._vectorizable(pattern.pred) and self._vectorizable(pattern.value):
            inner = env.child()
            inner.bind(pattern.index.name, np.arange(size, dtype=np.int64))
            mask = np.asarray(self.eval_expr(pattern.pred, inner))
            values = self.eval_expr(pattern.value, inner)
            if np.ndim(values) == 0:
                values = np.full(size, values)
            if np.ndim(mask) == 0:
                mask = np.full(size, bool(mask))
            return np.asarray(values)[mask]
        kept = []
        for i in range(size):
            inner = env.child()
            inner.bind(pattern.index.name, i)
            if self.eval_expr(pattern.pred, inner):
                kept.append(self.eval_expr(pattern.value, inner))
        return np.asarray(kept)

    def _eval_groupby(self, pattern: GroupBy, env: Env, size: int) -> Dict[int, np.ndarray]:
        groups: Dict[int, list] = {}
        if self._vectorizable(pattern.key) and self._vectorizable(pattern.value):
            inner = env.child()
            inner.bind(pattern.index.name, np.arange(size, dtype=np.int64))
            keys = np.asarray(self.eval_expr(pattern.key, inner))
            values = self.eval_expr(pattern.value, inner)
            if np.ndim(values) == 0:
                values = np.full(size, values)
            values = np.asarray(values)
            if np.ndim(keys) == 0:
                keys = np.full(size, keys)
            for key in np.unique(keys):
                groups[int(key)] = values[keys == key]
            return groups
        for i in range(size):
            inner = env.child()
            inner.bind(pattern.index.name, i)
            key = int(self.eval_expr(pattern.key, inner))
            groups.setdefault(key, []).append(self.eval_expr(pattern.value, inner))
        return {k: np.asarray(v) for k, v in groups.items()}

    def _eval_foreach(self, pattern: Foreach, env: Env, size: int) -> None:
        if self.vectorize and self._try_vectorized_foreach(pattern, env, size):
            return None
        for i in range(size):
            inner = env.child()
            inner.bind(pattern.index.name, i)
            for stmt in pattern.body:
                self.exec_stmt(stmt, inner)
        return None

    # -- vectorized foreach fast path --------------------------------------

    def _try_vectorized_foreach(
        self, pattern: Foreach, env: Env, size: int
    ) -> bool:
        """Scatter all iterations at once when provably equivalent.

        Supported bodies: flat sequences of ``Store`` and one-level ``If``
        whose branches contain only Stores, with every expression
        vectorizable.  Safety: sequential semantics let iteration j read
        values written by iterations < j; the batched evaluation is
        equivalent only if no iteration reads a position a *different*
        iteration writes.  With concrete index values in hand, that
        aliasing condition is checked numerically; any overlap (e.g. BFS's
        neighbor updates) falls back to the sequential loop.
        """
        stores: list = []  # (mask_expr_or_None, negate, Store)
        for stmt in pattern.body:
            if isinstance(stmt, Store):
                stores.append((None, False, stmt))
            elif isinstance(stmt, If):
                if not _is_vectorizable(stmt.cond):
                    return False
                for inner in stmt.then:
                    if not isinstance(inner, Store):
                        return False
                    stores.append((stmt.cond, False, inner))
                for inner in stmt.otherwise:
                    if not isinstance(inner, Store):
                        return False
                    stores.append((stmt.cond, True, inner))
            else:
                return False
        if not stores:
            return False
        for cond, _neg, store in stores:
            if not all(_is_vectorizable(i) for i in store.indices):
                return False
            if not _is_vectorizable(store.value):
                return False

        if size == 0:
            return True

        inner = env.child()
        indices = np.arange(size, dtype=np.int64)
        inner.bind(pattern.index.name, indices)

        # Statement-order hazard: a later store reading an array an
        # earlier store writes would need per-iteration interleaving.
        written_ids: set = set()
        for cond, _neg, store in stores:
            exprs = [store.value, *store.indices]
            if cond is not None:
                exprs.append(cond)
            for expr in exprs:
                for read in _array_reads_of(expr):
                    read_base = self.eval_expr(read.array, inner)
                    if id(read_base) in written_ids:
                        return False
            written_ids.add(id(self.eval_expr(store.array, inner)))

        # Phase A: evaluate every index, value, and mask before touching
        # any target (guarded out-of-bounds reads fall back to the loop).
        try:
            planned = []
            write_positions: dict = {}
            for cond, neg, store in stores:
                base = self.eval_expr(store.array, inner)
                base_arr = np.asarray(base)
                idx_values = [
                    np.broadcast_to(
                        np.asarray(self.eval_expr(i, inner)), (size,)
                    ).astype(np.int64)
                    for i in store.indices
                ]
                flat = np.zeros(size, dtype=np.int64)
                stride = 1
                for axis in range(len(idx_values) - 1, -1, -1):
                    flat = flat + idx_values[axis] * stride
                    stride *= base_arr.shape[axis]
                value = np.array(
                    np.broadcast_to(
                        np.asarray(self.eval_expr(store.value, inner)),
                        (size,),
                    )
                )
                if cond is not None:
                    mask = np.broadcast_to(
                        np.asarray(self.eval_expr(cond, inner)), (size,)
                    ).astype(bool)
                    if neg:
                        mask = ~mask
                else:
                    mask = np.ones(size, dtype=bool)
                planned.append((store, base, idx_values, flat, value, mask))
                write_positions.setdefault(id(base), []).append(flat)

            # Cross-iteration aliasing: reads of a stored array may only
            # hit the same iteration's own write position.
            for cond, neg, store in stores:
                exprs = [store.value, *store.indices]
                if cond is not None:
                    exprs.append(cond)
                for expr in exprs:
                    for read in _array_reads_of(expr):
                        read_base = self.eval_expr(read.array, inner)
                        if id(read_base) not in write_positions:
                            continue
                        shape = np.asarray(read_base).shape
                        read_flat = np.zeros(size, dtype=np.int64)
                        stride = 1
                        for axis in range(len(read.indices) - 1, -1, -1):
                            axis_idx = np.broadcast_to(
                                np.asarray(
                                    self.eval_expr(read.indices[axis], inner)
                                ),
                                (size,),
                            ).astype(np.int64)
                            read_flat = read_flat + axis_idx * stride
                            stride *= shape[axis]
                        for written in write_positions[id(read_base)]:
                            foreign = read_flat[read_flat != written]
                            if foreign.size and np.isin(
                                foreign, written
                            ).any():
                                return False
        except IndexError:
            return False

        # Phase B: scatter (NumPy assigns in index order: last write wins,
        # matching the sequential loop).
        for store, base, idx_values, flat, value, mask in planned:
            target = np.asarray(base)
            selected = tuple(iv[mask] for iv in idx_values)
            target[selected if len(selected) > 1 else selected[0]] = value[mask]
        return True


def run_program(
    program: Program, seed: int = 0, vectorize: bool = True, **inputs: Any
) -> Any:
    """One-call convenience wrapper around :class:`Evaluator`."""
    return Evaluator(program, seed=seed, vectorize=vectorize).run(**inputs)
