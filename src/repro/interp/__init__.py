"""Functional interpreter: the reproduction's correctness oracle."""

from .env import Env  # noqa: F401
from .evaluator import Evaluator, run_program  # noqa: F401
