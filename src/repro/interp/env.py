"""Evaluation environments for the functional interpreter."""

from __future__ import annotations

from typing import Any, Dict, Optional

class Env:
    """A chained name -> value environment.

    Lookup walks the chain outward; binding always writes the innermost
    frame, so pattern bodies can shadow outer names without copying.
    """

    __slots__ = ("_frame", "_parent")

    def __init__(self, parent: Optional["Env"] = None):
        self._frame: Dict[str, Any] = {}
        self._parent = parent

    def child(self) -> "Env":
        return Env(self)

    def bind(self, name: str, value: Any) -> None:
        self._frame[name] = value

    def lookup(self, name: str) -> Any:
        env: Optional[Env] = self
        while env is not None:
            if name in env._frame:
                return env._frame[name]
            env = env._parent
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        env: Optional[Env] = self
        while env is not None:
            if name in env._frame:
                return True
            env = env._parent
        return False
