"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``info``
    Package overview and modeled devices.
``apps``
    List the registered benchmark applications.
``map <app> [k=v ...]``
    Show the analysis for an app: constraints, chosen mapping per kernel,
    and the simulated cost breakdown.
``cuda <app> [k=v ...] [--strategy S] [--host] [-o FILE]``
    Dump the generated CUDA for an app (optionally with the host driver).
``figures [ids ...]``
    Print experiment tables (all by default).
``experiments [-o FILE]``
    Regenerate EXPERIMENTS.md.
``difftest [--seed N] [--budget N] [--out DIR] [--corpus FILE ...]``
    Differential-execution fuzzing: generate random pattern programs and
    check every strategy/optimization combination against the interpreter.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional


def _parse_sizes(pairs: List[str]) -> Dict[str, int]:
    sizes: Dict[str, int] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"expected k=v size binding, got {pair!r}")
        key, _, value = pair.partition("=")
        sizes[key] = int(value)
    return sizes


def cmd_info(_args: argparse.Namespace) -> int:
    import repro
    from repro.gpusim.device import DEVICES

    print(f"repro {repro.__version__} — Locality-Aware Mapping of Nested "
          "Parallel Patterns on GPUs (MICRO 2014 reproduction)")
    print()
    print("modeled devices:")
    for name, device in DEVICES.items():
        print(
            f"  {name}: {device.num_sms} SMs, "
            f"{device.max_threads_per_sm} threads/SM, "
            f"DOP window [{device.min_dop}, {device.max_dop}]"
        )
    print()
    print("see also: python -m repro apps | map | cuda | figures")
    return 0


def cmd_apps(_args: argparse.Namespace) -> int:
    from repro.apps import ALL_APPS

    width = max(len(name) for name in ALL_APPS)
    for name, app in sorted(ALL_APPS.items()):
        params = ", ".join(f"{k}={v}" for k, v in app.default_params.items())
        print(f"{name:<{width}}  levels={app.levels}  defaults: {params}")
    return 0


def _resolve_app(name: str):
    from repro.apps import ALL_APPS

    try:
        return ALL_APPS[name]
    except KeyError:
        known = ", ".join(sorted(ALL_APPS))
        raise SystemExit(f"unknown app {name!r}; known: {known}")


def cmd_map(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_program
    from repro.gpusim import decide_mapping, default_device

    from repro.apps import merge_params

    app = _resolve_app(args.app)
    sizes = merge_params(app, _parse_sizes(args.sizes))
    device = default_device()
    pa = analyze_program(app.build(), **sizes)
    for index, ka in enumerate(pa.kernels):
        print(f"=== kernel {index} (depth {ka.depth}, "
              f"sizes {ka.level_sizes()}) ===")
        decision = decide_mapping(ka, args.strategy, device)
        if args.explain:
            from repro.analysis import explain_mapping

            print(
                explain_mapping(
                    ka, decision.mapping, search_result=decision.search
                ).render()
            )
        else:
            print(ka.constraints.describe())
            print(f"mapping: {decision.mapping}")
        print(decision.cost(device, pa.env).describe())
        print()
    return 0


def cmd_cuda(args: argparse.Namespace) -> int:
    from repro.codegen import compile_program, generate_host_driver

    from repro.apps import merge_params

    app = _resolve_app(args.app)
    sizes = merge_params(app, _parse_sizes(args.sizes))
    module = compile_program(app.build(), args.strategy, **sizes)
    source = (
        generate_host_driver(module, sizes) if args.host else module.source
    )
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(source)
        print(f"wrote {args.output}")
    else:
        print(source)
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.figures import EXPERIMENTS, run_experiment

    ids = args.ids or list(EXPERIMENTS)
    for eid in ids:
        result = run_experiment(eid)
        if args.plot:
            from repro.figures.plots import render_experiment_bars

            print(render_experiment_bars(result))
        else:
            print(result.render())
        print()
        if args.csv_dir:
            import os

            os.makedirs(args.csv_dir, exist_ok=True)
            path = os.path.join(args.csv_dir, f"{eid}.csv")
            result.write_csv(path)
            print(f"[wrote {path}]")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.runtime import GpuSession

    from repro.apps import merge_params

    app = _resolve_app(args.app)
    sizes = merge_params(app, _parse_sizes(args.sizes))
    compiled = GpuSession(strategy=args.strategy).compile(
        app.build(), **sizes
    )
    text = compiled.report()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.figures.runner import write_experiments_md

    write_experiments_md(args.output)
    print(f"wrote {args.output}")
    return 0


def cmd_difftest(args: argparse.Namespace) -> int:
    from repro.difftest import (
        load_corpus,
        run_campaign,
        save_corpus,
    )
    from repro.difftest.runner import load_reproducer

    if args.replay:
        from repro.difftest import check_spec

        code = 0
        for path in args.replay:
            original, shrunk = load_reproducer(path)
            report = check_spec(shrunk, seed=args.seed)
            print(f"replay {path}: {shrunk.describe()}")
            print(f"  {report.describe()}")
            if not report.ok:
                code = 1
        return code

    corpus = []
    for path in args.corpus or []:
        corpus.extend(load_corpus(path))

    result = run_campaign(
        seed=args.seed,
        budget=args.budget,
        corpus=corpus or None,
        out_dir=args.out,
        progress=print if args.verbose else None,
    )
    if args.save_corpus:
        from repro.difftest import ProgramGenerator, canonical_specs

        generator = ProgramGenerator(seed=args.seed)
        specs = canonical_specs() + [
            generator.random_spec() for _ in range(args.budget)
        ]
        save_corpus(specs, args.save_corpus)
        print(f"wrote corpus of {len(specs)} specs to {args.save_corpus}")
    print(result.describe())
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package overview").set_defaults(fn=cmd_info)
    sub.add_parser("apps", help="list benchmark apps").set_defaults(
        fn=cmd_apps
    )

    p_map = sub.add_parser("map", help="show analysis for an app")
    p_map.add_argument("app")
    p_map.add_argument("sizes", nargs="*", help="size bindings k=v")
    p_map.add_argument("--strategy", default="multidim")
    p_map.add_argument(
        "--explain", action="store_true",
        help="per-constraint accounting of the mapping's score",
    )
    p_map.set_defaults(fn=cmd_map)

    p_cuda = sub.add_parser("cuda", help="dump generated CUDA for an app")
    p_cuda.add_argument("app")
    p_cuda.add_argument("sizes", nargs="*", help="size bindings k=v")
    p_cuda.add_argument("--strategy", default="multidim")
    p_cuda.add_argument("--host", action="store_true",
                        help="include the host driver (complete .cu)")
    p_cuda.add_argument("-o", "--output", default=None)
    p_cuda.set_defaults(fn=cmd_cuda)

    p_fig = sub.add_parser("figures", help="print experiment tables")
    p_fig.add_argument("ids", nargs="*")
    p_fig.add_argument(
        "--csv-dir", default=None,
        help="also write each experiment's rows as CSV into this directory",
    )
    p_fig.add_argument(
        "--plot", action="store_true",
        help="render bar charts instead of tables",
    )
    p_fig.set_defaults(fn=cmd_figures)

    p_rep = sub.add_parser(
        "report", help="markdown compilation report for an app"
    )
    p_rep.add_argument("app")
    p_rep.add_argument("sizes", nargs="*", help="size bindings k=v")
    p_rep.add_argument("--strategy", default="multidim")
    p_rep.add_argument("-o", "--output", default=None)
    p_rep.set_defaults(fn=cmd_report)

    p_exp = sub.add_parser("experiments", help="regenerate EXPERIMENTS.md")
    p_exp.add_argument("-o", "--output", default="EXPERIMENTS.md")
    p_exp.set_defaults(fn=cmd_experiments)

    p_dt = sub.add_parser(
        "difftest", help="differential-execution fuzzing campaign"
    )
    p_dt.add_argument("--seed", type=int, default=0,
                      help="campaign seed (default 0)")
    p_dt.add_argument("--budget", type=int, default=50,
                      help="number of random programs (default 50); "
                      "coverage templates run in addition")
    p_dt.add_argument("--out", default=None,
                      help="directory for failing-reproducer artifacts")
    p_dt.add_argument("--corpus", action="append", default=None,
                      metavar="FILE",
                      help="also replay specs from a corpus file "
                      "(repeatable)")
    p_dt.add_argument("--save-corpus", default=None, metavar="FILE",
                      help="write this campaign's spec stream to a "
                      "corpus file")
    p_dt.add_argument("--replay", action="append", default=None,
                      metavar="FILE",
                      help="re-check the shrunk spec from a reproducer "
                      "artifact instead of running a campaign")
    p_dt.add_argument("-v", "--verbose", action="store_true",
                      help="print a line per checked program")
    p_dt.set_defaults(fn=cmd_difftest)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout piped into a pager/head that exited early; not an error.
        return 0
