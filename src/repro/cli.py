"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``info``
    Package overview and modeled devices.
``apps``
    List the registered benchmark applications.
``map <app> [k=v ...]``
    Show the analysis for an app: constraints, chosen mapping per kernel,
    and the simulated cost breakdown.
``cuda <app> [k=v ...] [--strategy S] [--host] [-o FILE]``
    Dump the generated CUDA for an app (optionally with the host driver).
``figures [ids ...]``
    Print experiment tables (all by default).
``experiments [-o FILE]``
    Regenerate EXPERIMENTS.md.
``difftest [--seed N] [--budget N] [--out DIR] [--corpus FILE ...]``
    Differential-execution fuzzing: generate random pattern programs and
    check every strategy/optimization combination against the interpreter.
``chaos [app] [--stage S] [--kind K] [--out DIR]``
    Run the fault-injection matrix through the pipeline and verify every
    cell degrades gracefully or fails typed-with-report.
``replay-failure FILE [FILE ...]``
    Re-execute the pipeline failures recorded in report artifacts.
``trace <app> [k=v ...] [--detail] [-o FILE] [--provenance FILE]``
    Compile, cost-estimate, and run an app with tracing on; write a
    Chrome trace-event JSON (loadable in Perfetto / chrome://tracing)
    and optionally the mapping-provenance artifact.
``stats [app] [k=v ...] [--json] [--url URL]``
    Compile an app with metrics on and print the registry snapshot:
    cache hit rates, search counters, per-stage wall time, cost sums.
    With ``--url``, query a running compile server's ``/v1/stats``
    instead (queue depth, hit/miss counters, latency percentiles).
``explain FILE``
    Render a saved mapping-provenance artifact: ranked candidates with
    per-constraint verdicts — why each kernel's mapping won.
``serve [--port P] [--workers N] [--cache-dir DIR] [--trace FILE]``
    Run the compile service: JSON-over-HTTP, worker pool with bounded
    admission, single-flight dedup, persistent artifact cache.
``submit <app|--program FILE> [k=v ...] [--url URL] [--deadline-s S]``
    Send one compile request to a running server.  Server-side pipeline
    failures download the replayable failure report and print the local
    ``repro replay-failure`` invocation.  ``--deadline-s`` propagates a
    request budget; work shed on an expired deadline exits 75.
``cache <stats|list|clear> [--cache-dir DIR] [--json]``
    Inspect or clear a compile server's on-disk artifact store.
``recipe <show|diff|replay|tune>``
    Transformation recipes — the content-hashed record of the
    optimization passes behind every compile: render one (from a file,
    a store digest, or a fresh compile), diff two, replay one
    pass-by-pass asserting byte-identical plans and CUDA, or autotune
    the pass ordering against the cost model.
``fleet <serve|submit|stats|top|trace|events|chaos>``
    The digest-sharded compile fleet: run a router over N backends,
    submit to it (``--deadline-s`` as above), query its stats, or run
    the fleet chaos campaigns (kill/hang/slow/partition a backend and
    assert zero lost tickets plus prober readmission).

Exit codes: 0 success, 1 check failed, 2 configuration error, 3
analysis/search error, 4 codegen error, 5 execution/simulation error,
70 internal error, 75 service unavailable (admission queue full /
server unreachable / deadline shed).
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional

from .errors import ReproError, RuntimeConfigError, exit_code_for


def _parse_sizes(pairs: List[str]) -> Dict[str, int]:
    sizes: Dict[str, int] = {}
    for pair in pairs:
        if "=" not in pair:
            raise RuntimeConfigError(
                f"expected k=v size binding, got {pair!r}"
            )
        key, _, value = pair.partition("=")
        try:
            sizes[key] = int(value)
        except ValueError:
            raise RuntimeConfigError(
                f"size binding {pair!r} needs an integer value"
            )
    return sizes


def cmd_info(_args: argparse.Namespace) -> int:
    import repro
    from repro.gpusim.device import DEVICES

    print(f"repro {repro.__version__} — Locality-Aware Mapping of Nested "
          "Parallel Patterns on GPUs (MICRO 2014 reproduction)")
    print()
    print("modeled devices:")
    for name, device in DEVICES.items():
        print(
            f"  {name}: {device.num_sms} SMs, "
            f"{device.max_threads_per_sm} threads/SM, "
            f"DOP window [{device.min_dop}, {device.max_dop}]"
        )
    print()
    print("see also: python -m repro apps | map | cuda | figures")
    return 0


def cmd_apps(_args: argparse.Namespace) -> int:
    from repro.apps import ALL_APPS

    width = max(len(name) for name in ALL_APPS)
    for name, app in sorted(ALL_APPS.items()):
        params = ", ".join(f"{k}={v}" for k, v in app.default_params.items())
        print(f"{name:<{width}}  levels={app.levels}  defaults: {params}")
    return 0


def _resolve_app(name: str):
    from repro.apps import resolve_app

    return resolve_app(name)


def cmd_map(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_program
    from repro.gpusim import decide_mapping, default_device
    from repro.optim.pipeline import OptimizationFlags

    from repro.apps import merge_params

    app = _resolve_app(args.app)
    sizes = merge_params(app, _parse_sizes(args.sizes))
    flags = OptimizationFlags.from_names(getattr(args, "disable_opt", None))
    device = default_device()
    pa = analyze_program(app.build(), **sizes)
    for index, ka in enumerate(pa.kernels):
        print(f"=== kernel {index} (depth {ka.depth}, "
              f"sizes {ka.level_sizes()}) ===")
        decision = decide_mapping(
            ka, args.strategy, device, engine=getattr(args, "engine", None),
            flags=flags,
        )
        if args.explain:
            from repro.analysis import explain_mapping

            print(
                explain_mapping(
                    ka, decision.mapping, search_result=decision.search
                ).render()
            )
        else:
            print(ka.constraints.describe())
            print(f"mapping: {decision.mapping}")
        print(decision.cost(device, pa.env).describe())
        print()
    return 0


def cmd_cuda(args: argparse.Namespace) -> int:
    from repro.codegen import compile_program, generate_host_driver

    from repro.apps import merge_params

    app = _resolve_app(args.app)
    sizes = merge_params(app, _parse_sizes(args.sizes))
    module = compile_program(app.build(), args.strategy, **sizes)
    source = (
        generate_host_driver(module, sizes) if args.host else module.source
    )
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(source)
        print(f"wrote {args.output}")
    else:
        print(source)
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.figures import EXPERIMENTS, run_experiment

    ids = args.ids or list(EXPERIMENTS)
    for eid in ids:
        result = run_experiment(eid)
        if args.plot:
            from repro.figures.plots import render_experiment_bars

            print(render_experiment_bars(result))
        else:
            print(result.render())
        print()
        if args.csv_dir:
            import os

            os.makedirs(args.csv_dir, exist_ok=True)
            path = os.path.join(args.csv_dir, f"{eid}.csv")
            result.write_csv(path)
            print(f"[wrote {path}]")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.runtime import GpuSession

    from repro.apps import merge_params

    app = _resolve_app(args.app)
    sizes = merge_params(app, _parse_sizes(args.sizes))
    compiled = GpuSession(strategy=args.strategy).compile(
        app.build(), **sizes
    )
    text = compiled.report()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.figures.runner import write_experiments_md

    write_experiments_md(
        args.output,
        checkpoint_path=args.checkpoint,
        retries=args.retries,
        progress=print if args.verbose else None,
    )
    print(f"wrote {args.output}")
    return 0


def cmd_difftest(args: argparse.Namespace) -> int:
    from repro.difftest import (
        load_corpus,
        run_campaign,
        save_corpus,
    )
    from repro.difftest.runner import load_reproducer

    if args.replay:
        from repro.difftest import check_spec

        code = 0
        for path in args.replay:
            original, shrunk = load_reproducer(path)
            report = check_spec(shrunk, seed=args.seed)
            print(f"replay {path}: {shrunk.describe()}")
            print(f"  {report.describe()}")
            if not report.ok:
                code = 1
        return code

    corpus = []
    for path in args.corpus or []:
        corpus.extend(load_corpus(path))

    def run():
        return run_campaign(
            seed=args.seed,
            budget=args.budget,
            corpus=corpus or None,
            out_dir=args.out,
            progress=print if args.verbose else None,
            checkpoint_path=args.checkpoint,
            retries=args.retries,
        )

    if args.trace:
        from repro.observability import capture

        with capture() as obs:
            result = run()
        _write_trace(obs.tracer, args.trace)
    else:
        result = run()
    if args.save_corpus:
        from repro.difftest import ProgramGenerator, canonical_specs

        generator = ProgramGenerator(seed=args.seed)
        specs = canonical_specs() + [
            generator.random_spec() for _ in range(args.budget)
        ]
        save_corpus(specs, args.save_corpus)
        print(f"wrote corpus of {len(specs)} specs to {args.save_corpus}")
    print(result.describe())
    return 0 if result.ok else 1


def _clamped_sizes(app, overrides: Dict[str, int]) -> Dict[str, int]:
    """App sizes with unspecified defaults clamped to 64.

    The chaos and trace commands run the scalar-loop interpreter, which
    is about coverage, not scale — explicit ``k=v`` bindings still win.
    """
    from repro.apps import merge_params

    sizes = merge_params(app, overrides)
    for key, value in sizes.items():
        if key not in overrides:
            sizes[key] = min(int(value), 64)
    return sizes


def _write_trace(tracer, path: str) -> None:
    """Write and structurally validate a Chrome trace artifact."""
    from repro.observability import validate_chrome_trace

    tracer.write(path)
    problems = validate_chrome_trace(tracer.to_chrome())
    if problems:
        raise ReproError(
            f"trace artifact {path} failed validation: "
            + "; ".join(problems)
        )
    print(f"wrote {path} ({len(tracer.events())} events; load it in "
          "Perfetto or chrome://tracing)")


def cmd_trace(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.difftest.oracle import make_inputs
    from repro.observability import capture
    from repro.runtime import GpuSession

    app = _resolve_app(args.app)
    sizes = _clamped_sizes(app, _parse_sizes(args.sizes))
    with capture(detail=args.detail) as obs:
        program = app.build()
        program = dataclasses.replace(
            program, size_hints={**(program.size_hints or {}), **sizes}
        )
        compiled = GpuSession(strategy=args.strategy).compile(
            program, **sizes
        )
        compiled.estimate_cost()
        if not args.no_run:
            inputs = make_inputs(program, seed=args.seed)
            compiled.run(seed=args.seed, **inputs)
    stages = sorted(obs.tracer.span_names())
    print(f"traced {len(stages)} pipeline stage(s): {', '.join(stages)}")
    _write_trace(obs.tracer, args.output)
    if args.provenance:
        compiled.provenance().write(args.provenance)
        print(f"wrote {args.provenance} (render it with "
              f"`python -m repro explain {args.provenance}`)")
    if args.stats:
        print()
        print(obs.metrics.render())
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.observability import capture
    from repro.runtime import GpuSession

    if args.url:
        import json

        from repro.service import ServiceClient

        payload = ServiceClient(args.url, timeout=args.timeout).stats()
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            service = payload.get("service", {})
            print(f"compile service at {args.url}:")
            for key in sorted(service):
                print(f"  {key}: {service[key]}")
        return 0
    if not args.app:
        raise RuntimeConfigError(
            "stats needs an app to compile locally, or --url to query a "
            "running compile server"
        )
    app = _resolve_app(args.app)
    sizes = _clamped_sizes(app, _parse_sizes(args.sizes))
    with capture() as obs:
        compiled = GpuSession(strategy=args.strategy).compile(
            app.build(), **sizes
        )
        compiled.estimate_cost()
    if args.json:
        import json

        print(json.dumps(obs.metrics.to_dict(), indent=2))
    else:
        print(obs.metrics.render())
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.observability.provenance import load_provenance

    try:
        provenance = load_provenance(args.artifact)
    except (OSError, ValueError, KeyError) as exc:
        raise RuntimeConfigError(
            f"cannot load provenance artifact {args.artifact!r}: {exc}"
        )
    print(provenance.render())
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.resilience import FAULT_MATRIX, run_chaos_matrix

    app = _resolve_app(args.app)
    program = app.build()
    sizes = _clamped_sizes(app, _parse_sizes(args.sizes))
    pairs = [
        (stage, kind)
        for stage, kind in FAULT_MATRIX
        if (not args.stage or stage in args.stage)
        and (not args.kind or kind in args.kind)
    ]
    if not pairs:
        raise RuntimeConfigError(
            "no (stage, kind) pairs match the --stage/--kind filters"
        )

    def run() -> int:
        result = run_chaos_matrix(
            program,
            pairs=pairs,
            seed=args.seed,
            strategy=args.strategy,
            out_dir=args.out,
            progress=print if args.verbose else None,
            sizes=sizes,
        )
        print(result.describe())
        return 0 if result.ok else 1

    if args.trace:
        from repro.observability import capture

        with capture() as obs:
            code = run()
        _write_trace(obs.tracer, args.trace)
        return code
    return run()


def cmd_replay_failure(args: argparse.Namespace) -> int:
    from repro.resilience import load_failure_report, replay_failure_report

    code = 0
    for path in args.reports:
        try:
            report = load_failure_report(path)
        except (OSError, ValueError, KeyError) as exc:
            raise RuntimeConfigError(
                f"cannot load failure report {path!r}: {exc}"
            )
        print(f"replaying {path}:")
        print(report.describe())
        outcome = replay_failure_report(report)
        print(outcome.describe())
        if not outcome.reproduced:
            code = 1
        print()
    return code


def cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.observability import capture
    from repro.service import CompileService, ServiceConfig
    from repro.service.http import make_server, serve_forever

    cache_dir = (
        None if args.cache_dir.lower() in ("", "none") else args.cache_dir
    )
    config = ServiceConfig(
        workers=args.workers,
        queue_limit=args.queue_limit,
        cache_dir=cache_dir,
        deadline_s=args.deadline_s if args.deadline_s > 0 else None,
        max_nodes=args.max_nodes,
        provenance=not args.no_provenance,
    )
    with capture() as obs:
        service = CompileService(config)
        server = make_server(service, args.host, args.port)
        # SIGTERM must unwind the same path as Ctrl-C so the memo
        # snapshot and the trace artifact survive `kill` (CI does this).
        # Raising is mandatory here: server.shutdown() blocks on the
        # serve loop, which the handler itself is preempting — deadlock.
        def _terminate(*_args: object) -> None:
            raise KeyboardInterrupt

        signal.signal(signal.SIGTERM, _terminate)
        print(
            f"repro compile service listening on {server.url} "
            f"(workers={config.workers}, queue_limit={config.queue_limit}, "
            f"cache={config.cache_dir or 'disabled'})",
            flush=True,
        )
        try:
            serve_forever(server)
        except KeyboardInterrupt:
            pass
        finally:
            service.close()
    if args.trace:
        _write_trace(obs.tracer, args.trace)
    stats = service.stats()
    print(
        f"served {stats['requests']} request(s): "
        f"{stats['cache_hits']} hit(s), {stats['cache_misses']} miss(es), "
        f"{stats['coalesced']} coalesced, {stats['errors']} error(s)"
    )
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    import json
    import sys

    from repro.service import ServiceClient

    request = _submit_request(args)
    outcome = ServiceClient(args.url, timeout=args.timeout).compile(request)
    if args.json:
        print(json.dumps(outcome.to_dict(), indent=2))
    if outcome.ok:
        if not args.json:
            artifact = outcome.artifact or {}
            cost = (artifact.get("cost") or {}).get("total_us")
            print(f"{outcome.status}  digest={outcome.digest[:16]}…  "
                  f"latency={outcome.latency_ms:.2f}ms"
                  + (f"  cost={cost:.1f}us" if cost is not None else ""))
            if outcome.trace_id:
                print(f"  trace_id={outcome.trace_id}  "
                      f"(fetch: repro fleet trace {outcome.trace_id})")
            for line in artifact.get("mappings", []):
                print(f"  {line}")
        return 0
    error = outcome.error
    print(
        f"error: {error.error_type}: {error.message}", file=sys.stderr
    )
    if error.failure_report is not None:
        from repro.resilience import FailureReport
        from repro.resilience.reports import write_failure_report

        path = write_failure_report(
            FailureReport.from_dict(error.failure_report), args.report_dir
        )
        print(
            f"failure report written to {path}; replay locally with "
            f"`python -m repro replay-failure {path}`",
            file=sys.stderr,
        )
    return error.exit_code


def _submit_request(args: argparse.Namespace):
    """Build the CompileRequest shared by ``submit`` and ``fleet submit``."""
    import json

    from repro.service import CompileRequest

    app = args.app
    sizes_args = list(args.sizes)
    # With --program the app positional is unused, so argparse puts the
    # first k=v binding there; reclaim it as a size.
    if args.program is not None and app is not None and "=" in app:
        sizes_args.insert(0, app)
        app = None
    if (app is None) == (args.program is None):
        raise RuntimeConfigError(
            "submit needs an app name or --program FILE (not both)"
        )
    program_ir = None
    if args.program:
        try:
            with open(args.program) as fh:
                program_ir = json.load(fh)
        except (OSError, ValueError) as exc:
            raise RuntimeConfigError(
                f"cannot load serialized program {args.program!r}: {exc}"
            )
    deadline_s = getattr(args, "deadline_s", None)
    from repro.optim.pipeline import OptimizationFlags

    return CompileRequest(
        app=app,
        program_ir=program_ir,
        sizes=_parse_sizes(sizes_args),
        strategy=args.strategy,
        device=args.device,
        flags=OptimizationFlags.from_names(
            getattr(args, "disable_opt", None)
        ),
        deadline_s=deadline_s if deadline_s and deadline_s > 0 else None,
    )


def cmd_fleet_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.observability import capture
    from repro.service import FleetConfig, local_fleet
    from repro.service.http import make_server, serve_forever

    cache_dir = (
        None if args.cache_dir.lower() in ("", "none") else args.cache_dir
    )
    fleet_config = FleetConfig(
        lru_capacity=args.lru_capacity,
        retries=args.retries,
        dispatchers=args.dispatchers,
        cache_dir=cache_dir,
        probe_interval_s=args.probe_interval_s,
        hedge_delay_s=(
            args.hedge_delay_s
            if args.hedge_delay_s is not None and args.hedge_delay_s >= 0
            else None
        ),
    )
    with capture() as obs:
        if args.subprocess:
            # Deployment shape: each backend is a separate `repro serve`
            # process, so traces stitch across real process boundaries.
            from repro.service import spawn_http_fleet

            if cache_dir is None:
                raise RuntimeConfigError(
                    "--subprocess requires a shared --cache-dir"
                )
            extra = ["--queue-limit", str(args.queue_limit)]
            if args.deadline_s > 0:
                extra += ["--deadline-s", str(args.deadline_s)]
            if args.no_provenance:
                extra.append("--no-provenance")
            router = spawn_http_fleet(
                args.backends,
                cache_dir,
                args.log_dir,
                fleet_config=fleet_config,
                workers=args.workers,
                extra_args=extra,
            )
        else:
            router = local_fleet(
                args.backends,
                cache_dir,
                fleet_config=fleet_config,
                workers=args.workers,
                queue_limit=args.queue_limit,
                deadline_s=args.deadline_s if args.deadline_s > 0 else None,
                provenance=not args.no_provenance,
            )
        server = make_server(router, args.host, args.port)

        def _terminate(*_args: object) -> None:
            raise KeyboardInterrupt

        signal.signal(signal.SIGTERM, _terminate)
        print(
            f"repro compile fleet listening on {server.url} "
            f"(backends={args.backends}, workers/backend={args.workers}, "
            f"lru={fleet_config.lru_capacity}, "
            f"cache={cache_dir or 'disabled'})",
            flush=True,
        )
        try:
            serve_forever(server)
        except KeyboardInterrupt:
            pass
        finally:
            router.close()
    if args.trace:
        _write_trace(obs.tracer, args.trace)
    stats = router.stats()
    print(
        f"routed {stats['requests']} request(s): "
        f"{stats['lru_hits']} LRU hit(s), {stats['store_hits']} store "
        f"hit(s), {stats['misses']} dispatched, "
        f"{stats['coalesced']} coalesced, {stats['reroutes']} "
        f"rerouted, {stats['errors']} error(s)"
    )
    return 0


def cmd_fleet_submit(args: argparse.Namespace) -> int:
    import json
    import threading

    from repro.service import ServiceClient
    from repro.service.service import latency_summary

    request = _submit_request(args)
    payload = request.to_dict()
    count = max(1, args.count)
    outcomes = [None] * count
    failures = [None] * count

    def one(index: int) -> None:
        client = ServiceClient(
            args.url, timeout=args.timeout, retries=args.retries
        )
        try:
            outcomes[index] = client.compile(payload)
        except ReproError as exc:
            failures[index] = exc

    threads = [
        threading.Thread(target=one, args=(i,)) for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if count == 1:
        if failures[0] is not None:
            raise failures[0]
        outcome = outcomes[0]
        if args.json:
            print(json.dumps(outcome.to_dict(), indent=2))
        else:
            print(
                f"{outcome.status}  digest={outcome.digest[:16]}…  "
                f"latency={outcome.latency_ms:.2f}ms"
                + (
                    f"  served_by={outcome.served_by}"
                    if outcome.served_by
                    else ""
                )
            )
            if outcome.trace_id:
                print(f"  trace_id={outcome.trace_id}  "
                      f"(fetch: repro fleet trace {outcome.trace_id} "
                      f"--url {args.url})")
        return 0 if outcome.ok else outcome.error.exit_code
    done = [o for o in outcomes if o is not None]
    statuses: dict = {}
    served: dict = {}
    for outcome in done:
        statuses[outcome.status] = statuses.get(outcome.status, 0) + 1
        if outcome.served_by:
            served[outcome.served_by] = served.get(outcome.served_by, 0) + 1
    latencies = sorted(o.latency_ms for o in done)
    summary = {
        "submitted": count,
        "completed": len(done),
        "transport_failures": sum(1 for f in failures if f is not None),
        "statuses": statuses,
        "served_by": served,
        "digests": len({o.digest for o in done}),
        "latency_ms": latency_summary(latencies),
    }
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(
            f"{summary['completed']}/{count} completed "
            f"({summary['transport_failures']} transport failure(s)); "
            f"statuses={statuses}; served_by={served}; "
            f"p50={summary['latency_ms']['p50']:.2f}ms "
            f"p99={summary['latency_ms']['p99']:.2f}ms"
        )
    failed = [o for o in done if not o.ok]
    if failures != [None] * count or failed:
        return 1
    return 0


def cmd_fleet_stats(args: argparse.Namespace) -> int:
    import json

    from repro.service import ServiceClient

    payload = ServiceClient(args.url, timeout=args.timeout).stats()
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        service = payload.get("service", {})
        print(f"compile fleet at {args.url}:")
        for key in sorted(service):
            if key in ("backends", "reroutes_saturation",
                       "reroutes_transport"):
                continue
            value = service[key]
            if key == "reroutes":
                # The split tells an operator which knob to turn: a
                # saturated fleet needs capacity, a broken one repair.
                value = (
                    f"{value} (saturation "
                    f"{service.get('reroutes_saturation', 0)}, transport "
                    f"{service.get('reroutes_transport', 0)})"
                )
            print(f"  {key}: {value}")
        for name in sorted(service.get("backends") or {}):
            entry = service["backends"][name]
            breaker = entry.get("breaker") or {}
            state = (
                breaker.get("state") if isinstance(breaker, dict)
                else breaker
            )
            print(
                f"  backend {name}: alive={entry.get('alive')} "
                f"breaker={state} served={entry.get('served', 0)} "
                f"failures={entry.get('failures', 0)} "
                f"(saturation {entry.get('failures_saturation', 0)}, "
                f"transport {entry.get('failures_transport', 0)}) "
                f"rerouted_from={entry.get('reroutes_from', 0)}"
            )
    return 0


def cmd_fleet_trace(args: argparse.Namespace) -> int:
    import json
    import sys

    from repro.observability import validate_chrome_trace
    from repro.service import ServiceClient

    client = ServiceClient(args.url, timeout=args.timeout)
    document = client.trace(args.trace_id, raw=args.raw)
    if document is None:
        print(
            f"error: no events for trace {args.trace_id!r} at {args.url}",
            file=sys.stderr,
        )
        return 1
    if not args.raw:
        problems = validate_chrome_trace(document)
        if problems:
            print(
                f"error: stitched trace failed validation: "
                f"{'; '.join(problems)}",
                file=sys.stderr,
            )
            return 1
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(document, fh, indent=2)
            fh.write("\n")
        events = document.get("events" if args.raw else "traceEvents", [])
        kind = "fragment" if args.raw else "stitched trace"
        print(
            f"wrote {args.output} ({kind}, {len(events)} events; "
            "load it in https://ui.perfetto.dev)"
        )
    else:
        print(json.dumps(document, indent=2))
    return 0


def cmd_fleet_top(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient
    from repro.service.dashboard import run_fleet_top

    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        return run_fleet_top(
            client,
            interval_s=args.interval_s,
            iterations=1 if args.once else None,
            clear=not args.once,
        )
    except KeyboardInterrupt:
        return 0


def cmd_fleet_events(args: argparse.Namespace) -> int:
    import json
    import time as _time

    from repro.service import ServiceClient

    client = ServiceClient(args.url, timeout=args.timeout)

    def emit(events: list) -> None:
        for event in events:
            if args.json:
                print(json.dumps(event))
            else:
                seq = event.get("seq")
                kind = event.get("kind", "?")
                rest = " ".join(
                    f"{k}={v}"
                    for k, v in sorted(event.items())
                    if k not in ("seq", "kind", "ts") and v is not None
                )
                print(f"#{seq} {kind}  {rest}")

    snapshot = client.events(since=args.since)
    emit(snapshot.get("events", []))
    dropped = snapshot.get("dropped", 0)
    if dropped and not args.json:
        print(f"({dropped} earlier event(s) dropped by the bounded log)")
    if not args.follow:
        return 0
    cursor = snapshot.get("next_seq", 0)
    try:
        while True:
            _time.sleep(args.interval_s)
            snapshot = client.events(since=cursor - 1)
            emit(snapshot.get("events", []))
            cursor = max(cursor, snapshot.get("next_seq", cursor))
    except KeyboardInterrupt:
        return 0


def cmd_fleet_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.resilience.faults import FLEET_FAULT_KINDS
    from repro.resilience.fleet_chaos import run_fleet_chaos_matrix

    kinds = args.kind or list(FLEET_FAULT_KINDS)
    unknown = [k for k in kinds if k not in FLEET_FAULT_KINDS]
    if unknown:
        raise RuntimeConfigError(
            f"unknown fleet fault kind(s) {', '.join(unknown)}; "
            f"known: {', '.join(FLEET_FAULT_KINDS)}"
        )
    result = run_fleet_chaos_matrix(
        kinds=kinds,
        seed=args.seed,
        wave=args.wave,
        progress=print if args.verbose else None,
        out_dir=args.out,
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.describe())
    return 0 if result.ok else 1


def cmd_cache(args: argparse.Namespace) -> int:
    import json

    from repro.service import ArtifactStore

    store = ArtifactStore(args.cache_dir)
    if args.action == "clear":
        cleared = store.clear()
        print(f"cleared {cleared} artifact(s) from {args.cache_dir}")
        return 0
    if args.action == "list":
        digests = sorted(store.digests())
        if args.json:
            print(json.dumps(digests, indent=2))
        else:
            for digest in digests:
                print(digest)
            print(f"{len(digests)} artifact(s) in {args.cache_dir}")
        return 0
    stats = store.stats()
    if args.json:
        print(json.dumps(stats, indent=2))
    else:
        print(f"artifact store at {args.cache_dir}:")
        for key in sorted(stats):
            print(f"  {key}: {stats[key]}")
    return 0


def _load_recipe_ref(ref: str, cache_dir: Optional[str]):
    """Resolve a recipe reference: a JSON file, or a content digest in an
    artifact store (the recipe subtree, or embedded in an artifact)."""
    import os

    from repro.optim.passes import Recipe, load_recipe
    from repro.service.store import is_valid_digest

    if os.path.isfile(ref):
        return load_recipe(ref)
    if is_valid_digest(ref):
        from repro.service import ArtifactStore

        if not cache_dir or not os.path.isdir(cache_dir):
            raise RuntimeConfigError(
                f"{ref!r} looks like a content digest but there is no "
                f"artifact store at {cache_dir!r} (pass --cache-dir)"
            )
        store = ArtifactStore(cache_dir)
        data = store.get_recipe(ref)
        if data is not None:
            return Recipe.from_json(data)
        artifact = store.get(ref)
        if artifact is not None and artifact.recipe is not None:
            return Recipe.from_json(artifact.recipe)
        raise RuntimeConfigError(
            f"no recipe for digest {ref} in {cache_dir}"
        )
    raise RuntimeConfigError(
        f"recipe reference {ref!r} is neither a readable file nor a "
        "64-hex content digest"
    )


def _recipe_program(recipe, program_file: Optional[str]):
    """The source program a recipe replays against.

    ``--program FILE`` supplies serialized IR; otherwise the recipe's
    program name is resolved as a registered app.  Either way the IR is
    canonicalized, matching what the service compiled (binder names are
    part of the plan-state digests).
    """
    from repro.ir.serialize import canonicalize_program

    if program_file is not None:
        import json

        from repro.ir.serialize import program_from_dict

        try:
            with open(program_file) as fh:
                program = program_from_dict(json.load(fh))
        except (OSError, ValueError) as exc:
            raise RuntimeConfigError(
                f"cannot load serialized program {program_file!r}: {exc}"
            )
        return canonicalize_program(program)
    from repro.apps import resolve_app

    return canonicalize_program(resolve_app(recipe.program).build())


def _compile_app_recipe(
    app_name: str,
    sizes_args: List[str],
    strategy: str,
    disable: Optional[List[str]],
):
    """Compile an app locally and return its emitted recipe."""
    from repro.apps import merge_params, resolve_app
    from repro.ir.serialize import canonicalize_program
    from repro.optim.pipeline import OptimizationFlags
    from repro.runtime import GpuSession

    app = resolve_app(app_name)
    sizes = merge_params(app, _parse_sizes(sizes_args))
    session = GpuSession(
        strategy=strategy, flags=OptimizationFlags.from_names(disable)
    )
    compiled = session.compile(canonicalize_program(app.build()), **sizes)
    return compiled.recipe()


def _render_recipe(recipe) -> str:
    lines = [
        f"recipe {recipe.content_digest()}",
        f"  program: {recipe.program}   device: {recipe.device}   "
        f"strategy: {recipe.strategy}",
        f"  pipeline_version: {recipe.pipeline_version}",
    ]
    if recipe.sizes:
        lines.append(
            "  sizes: "
            + ", ".join(f"{k}={v}" for k, v in sorted(recipe.sizes.items()))
        )
    if recipe.flags:
        lines.append(
            "  flags: "
            + ", ".join(
                f"{k}={'on' if v else 'off'}"
                for k, v in sorted(recipe.flags.items())
            )
        )
    for kernel in recipe.kernels:
        if kernel.degraded:
            lines.append(
                f"  kernel {kernel.index}: DEGRADED "
                "(plan substituted; not replayable)"
            )
            continue
        lines.append(
            f"  kernel {kernel.index}: plan {kernel.plan_digest[:12]}…"
        )
        for record in kernel.passes:
            status = (
                "applied" if record.applied
                else f"skipped ({record.skip_reason})"
            )
            params = f"  params={record.params}" if record.params else ""
            lines.append(
                f"    {record.name:<14} {status:<26} "
                f"{record.pre_digest[:8]} -> {record.post_digest[:8]}"
                f"{params}"
            )
    return "\n".join(lines)


def cmd_recipe_show(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.service.store import is_valid_digest

    ref = args.ref
    if os.path.isfile(ref) or is_valid_digest(ref):
        if args.sizes or args.disable_opt:
            raise RuntimeConfigError(
                "size bindings and --disable-opt only apply when REF is "
                "an app name (stored recipes are immutable records)"
            )
        recipe = _load_recipe_ref(ref, args.cache_dir)
    else:
        recipe = _compile_app_recipe(
            ref, list(args.sizes), args.strategy, args.disable_opt
        )
    if args.output:
        recipe.write(args.output)
        print(f"wrote {args.output}")
    if args.json:
        print(json.dumps(recipe.to_json(), indent=2, sort_keys=True))
    else:
        print(_render_recipe(recipe))
    return 0


def cmd_recipe_diff(args: argparse.Namespace) -> int:
    from repro.optim.passes import recipe_diff

    recipe_a = _load_recipe_ref(args.a, args.cache_dir)
    recipe_b = _load_recipe_ref(args.b, args.cache_dir)
    lines = recipe_diff(recipe_a, recipe_b)
    if not lines:
        print(
            f"recipes are identical (content digest "
            f"{recipe_a.content_digest()[:16]}…)"
        )
        return 0
    print(
        f"recipes differ ({recipe_a.content_digest()[:12]}… vs "
        f"{recipe_b.content_digest()[:12]}…):"
    )
    for line in lines:
        print(f"  {line}")
    return 1


def cmd_recipe_replay(args: argparse.Namespace) -> int:
    import json

    from repro.optim.passes import verify_recipe

    recipe = _load_recipe_ref(args.ref, args.cache_dir)
    program = _recipe_program(recipe, args.program)
    summary = verify_recipe(program, recipe)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(
            f"replayed {summary['replayed']}/{summary['kernels']} "
            f"kernel(s) byte-identically"
            + (
                f" ({summary['skipped_degraded']} degraded skipped)"
                if summary["skipped_degraded"]
                else ""
            )
        )
        print(f"  recipe digest: {summary['recipe_digest']}")
        print(f"  cuda bytes:    {summary['cuda_bytes']}")
        if summary["fresh_recipe_digest"] != summary["recipe_digest"]:
            print(
                "  note: a fresh compile emits a different recipe digest "
                f"({summary['fresh_recipe_digest'][:12]}…) — flags or "
                "pipeline version drifted since this recipe was recorded"
            )
    return 0


def cmd_recipe_tune(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import analyze_program
    from repro.apps import merge_params
    from repro.gpusim import decide_mapping, default_device
    from repro.optim.passes import autotune_pass_order
    from repro.resilience.budget import Budget

    app = _resolve_app(args.app)
    sizes = merge_params(app, _parse_sizes(args.sizes))
    device = default_device()
    pa = analyze_program(app.build(), **sizes)
    payload = []
    for index, ka in enumerate(pa.kernels):
        decision = decide_mapping(ka, args.strategy, device, optimize=False)
        budget = (
            Budget(max_nodes=args.budget) if args.budget else None
        )
        result = autotune_pass_order(
            ka,
            decision.mapping,
            device,
            env=pa.env,
            keep_top=args.top,
            budget=budget,
        )
        if args.json:
            payload.append({
                "kernel": index,
                "mapping": str(decision.mapping),
                "enumerated": result.enumerated,
                "distinct": result.distinct,
                "rejected_nonfinite": result.rejected_nonfinite,
                "degraded": result.degraded,
                "default": {
                    "passes": list(result.default.passes),
                    "time_us": result.default.time_us,
                },
                "best": {
                    "passes": list(result.best.passes),
                    "time_us": result.best.time_us,
                    "delta_us": result.best.delta_us,
                },
                "frontier": [
                    {
                        "passes": list(r.passes),
                        "time_us": r.time_us,
                        "delta_us": r.delta_us,
                        "equivalent_orderings": r.equivalent_orderings,
                        "mapping": r.mapping,
                    }
                    for r in result.frontier
                ],
            })
            continue
        print(
            f"=== kernel {index} (mapping {decision.mapping}) ==="
        )
        print(
            f"{result.enumerated} feasible ordering(s), "
            f"{result.distinct} distinct outcome(s) priced"
            + (
                f" [{result.degraded_reason}]" if result.degraded else ""
            )
        )
        for entry in result.frontier:
            print("  " + entry.describe())
        if result.improvement_us > 0:
            print(
                f"  best ordering beats the default by "
                f"{result.improvement_us:.3f} us"
            )
        else:
            print("  the default production ordering is already optimal")
        print()
    if args.json:
        print(json.dumps(payload, indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.config import SEARCH_ENGINES

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_engine_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--engine", default=None, choices=SEARCH_ENGINES,
            help="mapping-search engine (default: REPRO_SEARCH_ENGINE "
                 "env or auto-select by candidate-space size)",
        )

    sub.add_parser("info", help="package overview").set_defaults(fn=cmd_info)
    sub.add_parser("apps", help="list benchmark apps").set_defaults(
        fn=cmd_apps
    )

    def add_disable_opt_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--disable-opt", action="append", default=None, metavar="PASS",
            help="disable this optimization pass (repeatable; one of "
                 "prealloc, layout, shared_memory)",
        )

    p_map = sub.add_parser("map", help="show analysis for an app")
    p_map.add_argument("app")
    p_map.add_argument("sizes", nargs="*", help="size bindings k=v")
    p_map.add_argument("--strategy", default="multidim")
    p_map.add_argument(
        "--explain", action="store_true",
        help="per-constraint accounting of the mapping's score",
    )
    add_disable_opt_flag(p_map)
    add_engine_flag(p_map)
    p_map.set_defaults(fn=cmd_map)

    p_cuda = sub.add_parser("cuda", help="dump generated CUDA for an app")
    p_cuda.add_argument("app")
    p_cuda.add_argument("sizes", nargs="*", help="size bindings k=v")
    p_cuda.add_argument("--strategy", default="multidim")
    p_cuda.add_argument("--host", action="store_true",
                        help="include the host driver (complete .cu)")
    p_cuda.add_argument("-o", "--output", default=None)
    p_cuda.set_defaults(fn=cmd_cuda)

    p_fig = sub.add_parser("figures", help="print experiment tables")
    p_fig.add_argument("ids", nargs="*")
    p_fig.add_argument(
        "--csv-dir", default=None,
        help="also write each experiment's rows as CSV into this directory",
    )
    p_fig.add_argument(
        "--plot", action="store_true",
        help="render bar charts instead of tables",
    )
    p_fig.set_defaults(fn=cmd_figures)

    p_rep = sub.add_parser(
        "report", help="markdown compilation report for an app"
    )
    p_rep.add_argument("app")
    p_rep.add_argument("sizes", nargs="*", help="size bindings k=v")
    p_rep.add_argument("--strategy", default="multidim")
    p_rep.add_argument("-o", "--output", default=None)
    p_rep.set_defaults(fn=cmd_report)

    p_exp = sub.add_parser("experiments", help="regenerate EXPERIMENTS.md")
    p_exp.add_argument("-o", "--output", default="EXPERIMENTS.md")
    p_exp.add_argument("--checkpoint", default=None, metavar="FILE",
                       help="resume/record sweep progress in this file")
    p_exp.add_argument("--retries", type=int, default=0,
                       help="retry a crashed experiment this many times "
                       "with jittered backoff (default 0)")
    p_exp.add_argument("-v", "--verbose", action="store_true",
                       help="print a line per finished experiment")
    p_exp.set_defaults(fn=cmd_experiments)

    p_dt = sub.add_parser(
        "difftest", help="differential-execution fuzzing campaign"
    )
    p_dt.add_argument("--seed", type=int, default=0,
                      help="campaign seed (default 0)")
    p_dt.add_argument("--budget", type=int, default=50,
                      help="number of random programs (default 50); "
                      "coverage templates run in addition")
    p_dt.add_argument("--out", default=None,
                      help="directory for failing-reproducer artifacts")
    p_dt.add_argument("--corpus", action="append", default=None,
                      metavar="FILE",
                      help="also replay specs from a corpus file "
                      "(repeatable)")
    p_dt.add_argument("--save-corpus", default=None, metavar="FILE",
                      help="write this campaign's spec stream to a "
                      "corpus file")
    p_dt.add_argument("--replay", action="append", default=None,
                      metavar="FILE",
                      help="re-check the shrunk spec from a reproducer "
                      "artifact instead of running a campaign")
    p_dt.add_argument("-v", "--verbose", action="store_true",
                      help="print a line per checked program")
    p_dt.add_argument("--checkpoint", default=None, metavar="FILE",
                      help="resume/record campaign progress in this file")
    p_dt.add_argument("--retries", type=int, default=0,
                      help="retry a crashed check this many times with "
                      "jittered backoff (default 0)")
    p_dt.add_argument("--trace", default=None, metavar="FILE",
                      help="record the campaign as a Chrome trace "
                      "artifact")
    p_dt.set_defaults(fn=cmd_difftest)

    p_ch = sub.add_parser(
        "chaos", help="run the fault-injection matrix through the pipeline"
    )
    p_ch.add_argument("app", nargs="?", default="sumRows")
    p_ch.add_argument("sizes", nargs="*", help="size bindings k=v "
                      "(unspecified sizes are clamped to 64)")
    p_ch.add_argument("--strategy", default="multidim")
    p_ch.add_argument("--seed", type=int, default=0)
    p_ch.add_argument("--stage", action="append", default=None,
                      help="only these stages (repeatable)")
    p_ch.add_argument("--kind", action="append", default=None,
                      help="only these fault kinds (repeatable)")
    p_ch.add_argument("--out", default=None,
                      help="directory for failure-report artifacts")
    p_ch.add_argument("--trace", default=None, metavar="FILE",
                      help="record the whole matrix run as a Chrome "
                      "trace artifact")
    p_ch.add_argument("-v", "--verbose", action="store_true",
                      help="print a line per matrix cell")
    p_ch.set_defaults(fn=cmd_chaos)

    p_rf = sub.add_parser(
        "replay-failure",
        help="re-execute pipeline failures from report artifacts",
    )
    p_rf.add_argument("reports", nargs="+", metavar="FILE",
                      help="failure-report JSON artifacts")
    p_rf.set_defaults(fn=cmd_replay_failure)

    p_tr = sub.add_parser(
        "trace", help="trace an app's compile/estimate/run pipeline"
    )
    p_tr.add_argument("app")
    p_tr.add_argument("sizes", nargs="*", help="size bindings k=v "
                      "(unspecified sizes are clamped to 64)")
    p_tr.add_argument("--strategy", default="multidim")
    p_tr.add_argument("--seed", type=int, default=0)
    p_tr.add_argument("--detail", action="store_true",
                      help="also record per-subtree search prune/visit "
                      "events (high volume)")
    p_tr.add_argument("--no-run", action="store_true",
                      help="skip the functional interpreter run")
    p_tr.add_argument("-o", "--output", default="trace.json",
                      help="trace artifact path (default trace.json)")
    p_tr.add_argument("--provenance", default=None, metavar="FILE",
                      help="also write the mapping-provenance JSON")
    p_tr.add_argument("--stats", action="store_true",
                      help="also print the metrics-registry snapshot")
    add_engine_flag(p_tr)
    p_tr.set_defaults(fn=cmd_trace)

    p_st = sub.add_parser(
        "stats", help="metrics-registry snapshot for one compile"
    )
    p_st.add_argument("app", nargs="?", default=None)
    p_st.add_argument("sizes", nargs="*", help="size bindings k=v "
                      "(unspecified sizes are clamped to 64)")
    p_st.add_argument("--strategy", default="multidim")
    p_st.add_argument("--json", action="store_true",
                      help="machine-readable snapshot")
    p_st.add_argument("--url", default=None, metavar="URL",
                      help="query a running compile server's /v1/stats "
                      "instead of compiling locally")
    p_st.add_argument("--timeout", type=float, default=30.0,
                      help="HTTP timeout for --url queries (seconds)")
    add_engine_flag(p_st)
    p_st.set_defaults(fn=cmd_stats)

    p_ex = sub.add_parser(
        "explain", help="render a saved mapping-provenance artifact"
    )
    p_ex.add_argument("artifact", metavar="FILE",
                      help="provenance JSON written by `repro trace "
                      "--provenance`")
    p_ex.set_defaults(fn=cmd_explain)

    from repro import config as _config

    p_sv = sub.add_parser(
        "serve", help="run the JSON-over-HTTP compile service"
    )
    p_sv.add_argument("--host", default=_config.DEFAULT_SERVICE_HOST)
    p_sv.add_argument("--port", type=int,
                      default=_config.DEFAULT_SERVICE_PORT,
                      help=f"TCP port; 0 picks an ephemeral one "
                      f"(default {_config.DEFAULT_SERVICE_PORT})")
    p_sv.add_argument("--workers", type=int,
                      default=_config.DEFAULT_SERVICE_WORKERS,
                      help="compile worker threads "
                      f"(default {_config.DEFAULT_SERVICE_WORKERS})")
    p_sv.add_argument("--queue-limit", type=int,
                      default=_config.DEFAULT_SERVICE_QUEUE_LIMIT,
                      help="bounded admission: in-flight + queued cap "
                      f"(default {_config.DEFAULT_SERVICE_QUEUE_LIMIT})")
    p_sv.add_argument("--cache-dir",
                      default=_config.DEFAULT_SERVICE_CACHE_DIR,
                      help="persistent artifact store root; 'none' "
                      "disables persistence "
                      f"(default {_config.DEFAULT_SERVICE_CACHE_DIR})")
    p_sv.add_argument("--deadline-s", type=float,
                      default=_config.DEFAULT_REQUEST_DEADLINE_S,
                      help="per-request search deadline with conservative "
                      "fallback; <=0 disables "
                      f"(default {_config.DEFAULT_REQUEST_DEADLINE_S})")
    p_sv.add_argument("--max-nodes", type=int, default=None,
                      help="per-request search node budget")
    p_sv.add_argument("--no-provenance", action="store_true",
                      help="skip storing mapping provenance in artifacts")
    p_sv.add_argument("--trace", default=None, metavar="FILE",
                      help="write a Chrome trace of every request on "
                      "shutdown")
    add_engine_flag(p_sv)
    p_sv.set_defaults(fn=cmd_serve)

    p_sub = sub.add_parser(
        "submit", help="send one compile request to a running server"
    )
    p_sub.add_argument("app", nargs="?", default=None)
    p_sub.add_argument("sizes", nargs="*", help="size bindings k=v")
    p_sub.add_argument("--program", default=None, metavar="FILE",
                       help="serialized program JSON instead of an app "
                       "name")
    p_sub.add_argument("--strategy", default="multidim")
    p_sub.add_argument("--device", default=None,
                       help="modeled device name (default: server's "
                       "default device)")
    p_sub.add_argument("--url", metavar="URL",
                       default=f"http://{_config.DEFAULT_SERVICE_HOST}:"
                       f"{_config.DEFAULT_SERVICE_PORT}")
    p_sub.add_argument("--timeout", type=float, default=120.0)
    p_sub.add_argument("--deadline-s", type=float, default=None,
                       help="request budget propagated to the server; "
                       "expired work is shed with a typed 504 outcome "
                       "and exit code 75 (<=0 or unset: no deadline)")
    p_sub.add_argument("--json", action="store_true",
                       help="print the full outcome JSON")
    p_sub.add_argument("--report-dir", default="failure-reports",
                       help="where server-side failure reports are saved "
                       "for replay (default failure-reports/)")
    add_disable_opt_flag(p_sub)
    p_sub.set_defaults(fn=cmd_submit)

    p_ca = sub.add_parser(
        "cache", help="inspect or clear the on-disk artifact store"
    )
    p_ca.add_argument("action", choices=("stats", "list", "clear"))
    p_ca.add_argument("--cache-dir",
                      default=_config.DEFAULT_SERVICE_CACHE_DIR)
    p_ca.add_argument("--json", action="store_true")
    p_ca.set_defaults(fn=cmd_cache)

    p_rc = sub.add_parser(
        "recipe",
        help="transformation recipes: show, diff, replay, tune pass order",
    )
    rc_sub = p_rc.add_subparsers(dest="recipe_command", required=True)

    rc_show = rc_sub.add_parser(
        "show",
        help="render a recipe from a JSON file, a store digest, or a "
        "fresh compile of an app",
    )
    rc_show.add_argument("ref", help="recipe JSON file, 64-hex content "
                         "digest, or registered app name")
    rc_show.add_argument("sizes", nargs="*",
                         help="size bindings k=v (app refs only)")
    rc_show.add_argument("--strategy", default="multidim")
    add_disable_opt_flag(rc_show)
    rc_show.add_argument("--cache-dir",
                         default=_config.DEFAULT_SERVICE_CACHE_DIR,
                         help="artifact store to resolve digest refs in")
    rc_show.add_argument("-o", "--output", default=None, metavar="FILE",
                         help="also write the recipe JSON here")
    rc_show.add_argument("--json", action="store_true")
    rc_show.set_defaults(fn=cmd_recipe_show)

    rc_diff = rc_sub.add_parser(
        "diff", help="compare two recipes (exit 1 when they differ)"
    )
    rc_diff.add_argument("a", help="recipe JSON file or store digest")
    rc_diff.add_argument("b", help="recipe JSON file or store digest")
    rc_diff.add_argument("--cache-dir",
                         default=_config.DEFAULT_SERVICE_CACHE_DIR)
    rc_diff.set_defaults(fn=cmd_recipe_diff)

    rc_rep = rc_sub.add_parser(
        "replay",
        help="re-execute a recipe pass-by-pass, checking every recorded "
        "state digest and asserting byte-identical plans and CUDA",
    )
    rc_rep.add_argument("ref", help="recipe JSON file or store digest")
    rc_rep.add_argument("--program", default=None, metavar="FILE",
                        help="serialized program JSON (default: resolve "
                        "the recipe's program name as a registered app)")
    rc_rep.add_argument("--cache-dir",
                        default=_config.DEFAULT_SERVICE_CACHE_DIR)
    rc_rep.add_argument("--json", action="store_true")
    rc_rep.set_defaults(fn=cmd_recipe_replay)

    rc_tn = rc_sub.add_parser(
        "tune",
        help="price every feasible pass ordering/subset per kernel and "
        "report modeled-cost deltas vs the production pipeline",
    )
    rc_tn.add_argument("app")
    rc_tn.add_argument("sizes", nargs="*", help="size bindings k=v")
    rc_tn.add_argument("--strategy", default="multidim")
    rc_tn.add_argument("--top", type=int, default=10,
                       help="frontier entries to report per kernel "
                       "(default 10)")
    rc_tn.add_argument("--budget", type=int, default=None,
                       help="max orderings executed per kernel; "
                       "exhaustion returns best-so-far (degraded)")
    rc_tn.add_argument("--json", action="store_true")
    rc_tn.set_defaults(fn=cmd_recipe_tune)

    p_fl = sub.add_parser(
        "fleet",
        help="digest-sharded compile fleet: router over N backends",
    )
    fl_sub = p_fl.add_subparsers(dest="fleet_command", required=True)

    fl_sv = fl_sub.add_parser(
        "serve", help="run a fleet of compile backends behind one router"
    )
    fl_sv.add_argument("--backends", type=int,
                       default=_config.DEFAULT_FLEET_BACKENDS,
                       help="in-process backend services "
                       f"(default {_config.DEFAULT_FLEET_BACKENDS})")
    fl_sv.add_argument("--host", default=_config.DEFAULT_SERVICE_HOST)
    fl_sv.add_argument("--port", type=int,
                       default=_config.DEFAULT_SERVICE_PORT,
                       help="router TCP port; 0 picks an ephemeral one")
    fl_sv.add_argument("--workers", type=int, default=2,
                       help="compile worker threads per backend "
                       "(default 2)")
    fl_sv.add_argument("--queue-limit", type=int,
                       default=_config.DEFAULT_SERVICE_QUEUE_LIMIT,
                       help="per-backend admission bound")
    fl_sv.add_argument("--lru-capacity", type=int,
                       default=_config.DEFAULT_FLEET_LRU_CAPACITY,
                       help="hot in-memory artifact entries; 0 disables "
                       f"(default {_config.DEFAULT_FLEET_LRU_CAPACITY})")
    fl_sv.add_argument("--retries", type=int,
                       default=_config.DEFAULT_FLEET_RETRIES,
                       help="reroute attempts on backend death/503 "
                       f"(default {_config.DEFAULT_FLEET_RETRIES})")
    fl_sv.add_argument("--dispatchers", type=int,
                       default=_config.DEFAULT_FLEET_DISPATCHERS,
                       help="router dispatch threads "
                       f"(default {_config.DEFAULT_FLEET_DISPATCHERS})")
    fl_sv.add_argument("--cache-dir",
                       default=_config.DEFAULT_SERVICE_CACHE_DIR,
                       help="shared artifact store root; 'none' disables")
    fl_sv.add_argument("--deadline-s", type=float,
                       default=_config.DEFAULT_REQUEST_DEADLINE_S,
                       help="per-request search deadline; <=0 disables")
    fl_sv.add_argument("--probe-interval-s", type=float,
                       default=_config.DEFAULT_FLEET_PROBE_INTERVAL_S,
                       help="background health-probe cadence driving "
                       "the per-backend circuit breakers; <=0 disables "
                       f"(default {_config.DEFAULT_FLEET_PROBE_INTERVAL_S})")
    fl_sv.add_argument("--hedge-delay-s", type=float, default=None,
                       help="hedge still-pending warm-cache requests to "
                       "the next ring node after this many seconds "
                       "(default: hedging disabled)")
    fl_sv.add_argument("--no-provenance", action="store_true")
    fl_sv.add_argument("--subprocess", action="store_true",
                       help="run each backend as its own `repro serve` "
                       "process (deployment shape: real sockets, "
                       "cross-process trace stitching)")
    fl_sv.add_argument("--log-dir", default="fleet-logs",
                       help="per-backend server logs for --subprocess "
                       "(default fleet-logs)")
    fl_sv.add_argument("--trace", default=None, metavar="FILE",
                       help="write a Chrome trace on shutdown")
    add_engine_flag(fl_sv)
    fl_sv.set_defaults(fn=cmd_fleet_serve)

    fl_sub_p = fl_sub.add_parser(
        "submit",
        help="send one request (or --count N concurrent copies) to a "
        "running fleet",
    )
    fl_sub_p.add_argument("app", nargs="?", default=None)
    fl_sub_p.add_argument("sizes", nargs="*", help="size bindings k=v")
    fl_sub_p.add_argument("--program", default=None, metavar="FILE")
    fl_sub_p.add_argument("--strategy", default="multidim")
    fl_sub_p.add_argument("--device", default=None)
    fl_sub_p.add_argument("--url", metavar="URL",
                          default=f"http://{_config.DEFAULT_SERVICE_HOST}:"
                          f"{_config.DEFAULT_SERVICE_PORT}")
    fl_sub_p.add_argument("--count", type=int, default=1,
                          help="concurrent identical submissions "
                          "(default 1)")
    fl_sub_p.add_argument("--retries", type=int, default=0,
                          help="client transport retries with jittered "
                          "backoff (default 0)")
    fl_sub_p.add_argument("--timeout", type=float, default=120.0)
    fl_sub_p.add_argument("--deadline-s", type=float, default=None,
                          help="request budget propagated through the "
                          "router to the backends; expired work is shed "
                          "with a typed 504 outcome and exit code 75")
    fl_sub_p.add_argument("--json", action="store_true")
    add_disable_opt_flag(fl_sub_p)
    fl_sub_p.set_defaults(fn=cmd_fleet_submit)

    fl_ch = fl_sub.add_parser(
        "chaos",
        help="run fleet fault campaigns: kill/hang/slow/partition a "
        "backend, assert zero lost tickets and prober readmission",
    )
    fl_ch.add_argument("--kind", action="append", default=None,
                       help="fault kind(s) to run (default: all of "
                       "kill, hang, slow, partition)")
    fl_ch.add_argument("--seed", type=int, default=0,
                       help="deterministic seed: picks the victim and "
                       "the request set (default 0)")
    fl_ch.add_argument("--wave", type=int, default=6,
                       help="requests per campaign wave (default 6)")
    fl_ch.add_argument("--out", default=None, metavar="DIR",
                       help="write a JSON report per failing campaign")
    fl_ch.add_argument("--json", action="store_true",
                       help="print the full result JSON")
    fl_ch.add_argument("-v", "--verbose", action="store_true",
                       help="print each campaign as it completes")
    fl_ch.set_defaults(fn=cmd_fleet_chaos)

    fl_st = fl_sub.add_parser(
        "stats", help="query a running fleet router's /v1/stats"
    )
    fl_st.add_argument("--url", metavar="URL",
                       default=f"http://{_config.DEFAULT_SERVICE_HOST}:"
                       f"{_config.DEFAULT_SERVICE_PORT}")
    fl_st.add_argument("--timeout", type=float, default=30.0)
    fl_st.add_argument("--json", action="store_true")
    fl_st.set_defaults(fn=cmd_fleet_stats)

    fl_tr = fl_sub.add_parser(
        "trace",
        help="fetch one request's stitched distributed trace by "
        "trace_id (Perfetto-loadable, with cross-process parent links)",
    )
    fl_tr.add_argument("trace_id", help="32-hex trace id printed by "
                       "submit / found in exemplars and events")
    fl_tr.add_argument("--url", metavar="URL",
                       default=f"http://{_config.DEFAULT_SERVICE_HOST}:"
                       f"{_config.DEFAULT_SERVICE_PORT}")
    fl_tr.add_argument("--timeout", type=float, default=30.0)
    fl_tr.add_argument("-o", "--output", default=None, metavar="FILE",
                       help="write the trace JSON here instead of stdout")
    fl_tr.add_argument("--raw", action="store_true",
                       help="fetch the server's unstitched fragment "
                       "instead of the stitched document")
    fl_tr.set_defaults(fn=cmd_fleet_trace)

    fl_top = fl_sub.add_parser(
        "top",
        help="live terminal dashboard: per-backend load, breaker "
        "state, hit/reroute/hedge rates, latency quantiles + exemplars",
    )
    fl_top.add_argument("--url", metavar="URL",
                        default=f"http://{_config.DEFAULT_SERVICE_HOST}:"
                        f"{_config.DEFAULT_SERVICE_PORT}")
    fl_top.add_argument("--timeout", type=float, default=10.0)
    fl_top.add_argument("--interval-s", type=float,
                        default=_config.DEFAULT_FLEET_TOP_INTERVAL_S,
                        help="refresh cadence "
                        f"(default {_config.DEFAULT_FLEET_TOP_INTERVAL_S})")
    fl_top.add_argument("--once", action="store_true",
                        help="render one frame and exit (no screen "
                        "clearing; scripts/CI)")
    fl_top.set_defaults(fn=cmd_fleet_top)

    fl_ev = fl_sub.add_parser(
        "events",
        help="dump the fleet's structured control-plane event log "
        "(breaker trips, reroutes, hedges, sheds, quarantines)",
    )
    fl_ev.add_argument("--url", metavar="URL",
                       default=f"http://{_config.DEFAULT_SERVICE_HOST}:"
                       f"{_config.DEFAULT_SERVICE_PORT}")
    fl_ev.add_argument("--timeout", type=float, default=10.0)
    fl_ev.add_argument("--since", type=int, default=None,
                       help="only events with seq > SINCE")
    fl_ev.add_argument("--follow", action="store_true",
                       help="poll for new events until interrupted")
    fl_ev.add_argument("--interval-s", type=float,
                       default=_config.DEFAULT_EVENT_FOLLOW_INTERVAL_S,
                       help="poll cadence with --follow "
                       f"(default {_config.DEFAULT_EVENT_FOLLOW_INTERVAL_S})")
    fl_ev.add_argument("--json", action="store_true",
                       help="one JSON object per line")
    fl_ev.set_defaults(fn=cmd_fleet_events)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    import sys

    args = build_parser().parse_args(argv)
    if getattr(args, "engine", None):
        # One switch for every compile path a command may reach (local
        # searches, GpuSession pipelines, the compile service): the
        # search resolves this environment override per invocation.
        import os

        from repro.config import SEARCH_ENGINE_ENV

        os.environ[SEARCH_ENGINE_ENV] = args.engine
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout piped into a pager/head that exited early; not an error.
        return 0
    except ReproError as exc:
        # Typed pipeline errors map onto distinct exit codes; a failure
        # report, when attached, tells the user how to replay the error.
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        report_path = getattr(exc, "failure_report_path", None)
        if report_path:
            print(
                f"failure report written to {report_path}; re-run with "
                f"`python -m repro replay-failure {report_path}`",
                file=sys.stderr,
            )
        elif getattr(exc, "failure_report", None) is not None:
            print(exc.failure_report.describe(), file=sys.stderr)
        return exit_code_for(exc)
