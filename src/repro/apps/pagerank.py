"""PageRank, the paper's showcase nested-pattern program (Figure 5).

One iteration: for each node (outer map), gather each neighbor's previous
rank over degree (inner map) and aggregate (inner reduce).  The graph is a
CSR struct-of-arrays — the paper's example of composing rich data
structures from structs and arrays (Section III).  The inner domain size is
``offsets[n+1] - offsets[n]``, which depends on the outer index: the
analysis classifies it launch-dynamic and forces ``Span(all)`` on level 1,
reproducing the warp-per-node style mapping of Hong et al. for graphs.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..ir.builder import Builder, let, range_map
from ..ir.patterns import Program
from ..ir.types import ArrayType, F64, I64, StructType
from .common import App

#: CSR graph: offsets[N+1], neighbor ids[E], per-node out-degree[N].
CSR_GRAPH = StructType.of(
    "CsrGraph",
    {
        "offsets": ArrayType(I64, 1),
        "nbrs": ArrayType(I64, 1),
        "degrees": ArrayType(F64, 1),
    },
)

DAMP = 0.85


def build_pagerank(**params: int) -> Program:
    """One PageRank iteration over a CSR graph."""
    b = Builder("pagerank")
    num_nodes = b.size("N")
    num_edges = b.size("E")
    graph = b.struct("graph", CSR_GRAPH)
    prev = b.vector("prev", F64, length="N")

    offsets = graph.field_vector("offsets", num_nodes + 1)
    nbrs = graph.field_vector("nbrs", num_edges)
    degrees = graph.field_vector("degrees", num_nodes)

    def per_node(n):
        start = offsets[n]
        deg = offsets[n + 1] - offsets[n]
        weights = range_map(
            deg,
            lambda j: let(
                nbrs[start + j],
                lambda w: prev[w] / degrees[w],
                name="w",
            ),
            index_name="j",
        )
        total = weights.reduce("+")
        return (1.0 - DAMP) / num_nodes.cast(F64) + DAMP * total

    out = range_map(num_nodes, per_node, index_name="n")
    b.set_size_hint("__default__", 16)  # average degree
    b.set_size_hint("__skew__", 4)      # zipf-ish degree imbalance
    return b.build(out)


def workload(
    rng: np.random.Generator, N: int = 4096, avg_degree: int = 16, **_: int
) -> Dict[str, Any]:
    """A synthetic power-law-ish digraph in CSR form."""
    degrees = np.maximum(
        1, rng.zipf(1.8, size=N).clip(max=8 * avg_degree)
    ).astype(np.int64)
    scale = max(1.0, degrees.mean() / avg_degree)
    degrees = np.maximum(1, (degrees / scale).astype(np.int64))
    offsets = np.zeros(N + 1, dtype=np.int64)
    offsets[1:] = np.cumsum(degrees)
    E = int(offsets[-1])
    nbrs = rng.integers(0, N, size=E).astype(np.int64)
    prev = np.full(N, 1.0 / N)
    out_degrees = np.bincount(nbrs, minlength=N).astype(np.float64)
    out_degrees[out_degrees == 0] = 1.0
    return {
        "graph": {
            "offsets": offsets,
            "nbrs": nbrs,
            "degrees": out_degrees,
        },
        "prev": prev,
        "N": N,
        "E": E,
    }


def reference(inputs: Dict[str, Any]) -> np.ndarray:
    graph = inputs["graph"]
    offsets, nbrs = graph["offsets"], graph["nbrs"]
    degrees, prev = graph["degrees"], inputs["prev"]
    N = inputs["N"]
    out = np.empty(N)
    for n in range(N):
        window = nbrs[offsets[n]: offsets[n + 1]]
        out[n] = (1.0 - DAMP) / N + DAMP * np.sum(prev[window] / degrees[window])
    return out


PAGERANK = App(
    name="pagerank",
    build=build_pagerank,
    workload=workload,
    reference=reference,
    default_params={"N": 4096, "E": 4096 * 16},
    levels=2,
)
