"""Rodinia-style Mandelbrot: two-level map with a sequential scalar core.

Each pixel runs the escape-time iteration — inherently sequential per
element, so it is modeled as a registered device function (see
:mod:`repro.ir.functions`) with a NumPy implementation for the interpreter,
a flop estimate for the cost model, and CUDA source for codegen.

This is also the Figure 17 subject: on a skewed (50, 20K) output the fixed
strategies underutilize the device while the mapping search (plus dynamic
launch adjustment) stays in the best-performance region.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..gpusim.device import GpuDevice
from ..ir.builder import Builder, fn_call, range_map
from ..ir.functions import DeviceFunction, register_function
from ..ir.patterns import Program
from ..ir.types import F64
from .common import App

MAX_ITER = 64

#: Comparable-to-manual factor: the paper reports MultiDim within a few
#: percent of hand-optimized CUDA for Mandelbrot (Figure 12).
MANUAL_FACTOR = 1.0


def _mandel_impl(cx, cy, max_iter):
    """Vectorized escape-time computation."""
    cx = np.asarray(cx, dtype=np.float64)
    cy = np.asarray(cy, dtype=np.float64)
    iters = int(np.max(max_iter)) if np.ndim(max_iter) else int(max_iter)
    shape = np.broadcast(cx, cy).shape
    zx = np.zeros(shape)
    zy = np.zeros(shape)
    count = np.zeros(shape)
    active = np.ones(shape, dtype=bool)
    for _ in range(iters):
        zx2, zy2 = zx * zx, zy * zy
        escaped = zx2 + zy2 > 4.0
        active &= ~escaped
        if not active.any():
            break
        new_zx = np.where(active, zx2 - zy2 + cx, zx)
        zy = np.where(active, 2.0 * zx * zy + cy, zy)
        zx = new_zx
        count = count + active
    result = count
    return result if shape else float(result)


_MANDEL_CUDA = """\
__device__ double mandel(double cx, double cy, double max_iter) {
    double zx = 0.0, zy = 0.0;
    int count = 0;
    for (int it = 0; it < (int)max_iter; it++) {
        double zx2 = zx * zx, zy2 = zy * zy;
        if (zx2 + zy2 > 4.0) break;
        double nzx = zx2 - zy2 + cx;
        zy = 2.0 * zx * zy + cy;
        zx = nzx;
        count++;
    }
    return (double)count;
}
"""

register_function(
    DeviceFunction(
        name="mandel",
        arity=3,
        result_ty=F64,
        impl=_mandel_impl,
        # ~8 flops per iteration; escape averages roughly half the budget.
        flops=8.0 * MAX_ITER / 2,
        cuda_source=_MANDEL_CUDA,
    )
)


def build_mandelbrot(**params: int) -> Program:
    """out[i][j] = escape_time(x0 + j*dx, y0 + i*dy)."""
    b = Builder("mandelbrot")
    height = b.size("H")
    width = b.size("W")
    x0 = b.scalar("x0", F64)
    y0 = b.scalar("y0", F64)
    dx = b.scalar("dx", F64)
    dy = b.scalar("dy", F64)
    out = range_map(
        height,
        lambda i: range_map(
            width,
            lambda j: fn_call(
                "mandel",
                x0 + j.cast(F64) * dx,
                y0 + i.cast(F64) * dy,
                float(MAX_ITER),
            ),
            index_name="j",
        ),
        index_name="i",
    )
    return b.build(out)


def build_mandelbrot_oriented(order: str = "R", **params: int) -> Program:
    """Figure 13 variant: explicit stores into a fixed row-major image.

    The (R) form walks rows outermost; the (C) form walks columns
    outermost.  Both store ``img[i, j]``, so the traversal order alone
    determines which index is sequential — the property fixed strategies
    cannot adapt to.
    """
    from ..ir.builder import range_foreach, store2
    from ..ir.expr import ExprStmt

    b = Builder(f"mandelbrot_{order}")
    height = b.size("H")
    width = b.size("W")
    img = b.matrix("img", F64, rows="H", cols="W")
    x0 = b.scalar("x0", F64)
    y0 = b.scalar("y0", F64)
    dx = b.scalar("dx", F64)
    dy = b.scalar("dy", F64)

    def pixel(i, j):
        return fn_call(
            "mandel",
            x0 + j.cast(F64) * dx,
            y0 + i.cast(F64) * dy,
            float(MAX_ITER),
        )

    if order == "R":
        body = range_foreach(
            height,
            lambda i: [
                ExprStmt(
                    range_foreach(
                        width,
                        lambda j: [store2(img, i, j, pixel(i, j))],
                        index_name="j",
                    )
                )
            ],
            index_name="i",
        )
    else:
        body = range_foreach(
            width,
            lambda j: [
                ExprStmt(
                    range_foreach(
                        height,
                        lambda i: [store2(img, i, j, pixel(i, j))],
                        index_name="i",
                    )
                )
            ],
            index_name="j",
        )
    return b.build(body)


def workload(
    rng: np.random.Generator, H: int = 512, W: int = 512, **_: int
) -> Dict[str, Any]:
    return {
        "H": H,
        "W": W,
        "x0": -2.0,
        "y0": -1.25,
        "dx": 2.5 / W,
        "dy": 2.5 / H,
    }


def reference(inputs: Dict[str, Any]) -> np.ndarray:
    H, W = inputs["H"], inputs["W"]
    ys = inputs["y0"] + np.arange(H)[:, None] * inputs["dy"]
    xs = inputs["x0"] + np.arange(W)[None, :] * inputs["dx"]
    cx = np.broadcast_to(xs, (H, W))
    cy = np.broadcast_to(ys, (H, W))
    return _mandel_impl(cx, cy, MAX_ITER)


def manual_time_us(device: GpuDevice, **params: int) -> float:
    from ..gpusim.simulator import simulate_program

    ours = simulate_program(
        build_mandelbrot(), "multidim", device, **params
    ).total_us
    return ours / MANUAL_FACTOR


MANDELBROT = App(
    name="mandelbrot",
    build=build_mandelbrot,
    workload=workload,
    reference=reference,
    default_params={"H": 2048, "W": 2048},
    levels=2,
    manual_time_us=manual_time_us,
)
