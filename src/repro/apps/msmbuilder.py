"""MSMBuilder trajectory clustering (Figure 14).

The performance-critical kernel of Markov-state-model construction: squared
Euclidean distances between every trajectory frame and every cluster
center.  Three nested patterns — frames x clusters x coordinates — each
with a relatively small domain (around 100 elements, per the paper), so a
1D mapping launches only ~100 threads and badly underutilizes the GPU,
while MultiDim parallelizes the product of all three levels (2.4x over the
hand-tuned SSE3 multi-core code, 8.7x over 1D).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..ir.builder import Builder, range_map
from ..ir.patterns import Program
from ..ir.types import F64
from .common import App


def build_msmbuilder(**params: int) -> Program:
    """dist[p][k] = sum_d (X[p,d] - Cent[k,d])^2 — a 3-level nest."""
    b = Builder("msmbuilder")
    frames = b.size("P")
    clusters = b.size("K")
    dims = b.size("D")
    x = b.matrix("X", F64, rows="P", cols="D")
    cent = b.matrix("Cent", F64, rows="K", cols="D")

    out = range_map(
        frames,
        lambda p: range_map(
            clusters,
            lambda k: x.row(p).zip_with(
                cent.row(k), lambda xv, cv: (xv - cv) * (xv - cv)
            ).reduce("+"),
            index_name="k",
        ),
        index_name="p",
    )
    return b.build(out)


def workload(
    rng: np.random.Generator, P: int = 100, K: int = 100, D: int = 100, **_: int
) -> Dict[str, Any]:
    return {
        "X": rng.random((P, D)),
        "Cent": rng.random((K, D)),
        "P": P,
        "K": K,
        "D": D,
    }


def reference(inputs: Dict[str, Any]) -> np.ndarray:
    x, cent = inputs["X"], inputs["Cent"]
    diff = x[:, None, :] - cent[None, :, :]
    return (diff * diff).sum(axis=2)


MSMBUILDER = App(
    name="msmbuilder",
    build=build_msmbuilder,
    workload=workload,
    reference=reference,
    default_params={"P": 2048, "K": 100, "D": 100},
    levels=3,
)
