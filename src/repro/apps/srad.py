"""Rodinia SRAD: speckle-reducing anisotropic diffusion (Figures 12, 13).

One step of the diffusion-coefficient computation: per pixel, directional
derivatives against the four neighbors feed a nonlinear coefficient.  Like
Hotspot it exists in row-major (R) and column-major (C) traversal variants
for the fixed-strategy comparison.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..gpusim.device import GpuDevice
from ..ir.builder import Builder, maximum, minimum, range_map
from ..ir.patterns import Program
from ..ir.types import F64
from .common import App

Q0 = 0.5
MANUAL_FACTOR = 1.05


def build_srad(order: str = "R", **params: int) -> Program:
    b = Builder(f"srad_{order}")
    rows = b.size("R")
    cols = b.size("C")
    img = b.matrix("img", F64, rows="R", cols="C")

    def cell(i, j):
        center = img[i, j]
        dn = img[maximum(i - 1, 0), j] - center
        ds = img[minimum(i + 1, rows - 1), j] - center
        dw = img[i, maximum(j - 1, 0)] - center
        de = img[i, minimum(j + 1, cols - 1)] - center
        g2 = (dn * dn + ds * ds + dw * dw + de * de) / (center * center)
        l = (dn + ds + dw + de) / center
        num = (0.5 * g2) - ((1.0 / 16.0) * (l * l))
        den = 1.0 + 0.25 * l
        qsqr = num / (den * den)
        denq = (qsqr - Q0) / (Q0 * (1.0 + Q0))
        c = 1.0 / (1.0 + denq)
        return minimum(maximum(c, 0.0), 1.0)

    if order == "R":
        out = range_map(
            rows,
            lambda i: range_map(cols, lambda j: cell(i, j), index_name="j"),
            index_name="i",
        )
    else:
        out = range_map(
            cols,
            lambda j: range_map(rows, lambda i: cell(i, j), index_name="i"),
            index_name="j",
        )
    return b.build(out)


def build_srad_update(order: str = "R", **params: int) -> Program:
    """SRAD phase 2: apply the diffusion update using the coefficients.

    ``img'[i,j] = img[i,j] + lambda/4 * div`` where the divergence sums
    the coefficient-weighted directional derivatives — the second kernel
    of Rodinia's SRAD iteration.
    """
    b = Builder(f"sradUpdate_{order}")
    rows = b.size("R")
    cols = b.size("C")
    img = b.matrix("img", F64, rows="R", cols="C")
    coeff = b.matrix("coeff", F64, rows="R", cols="C")
    lam = b.scalar("lam", F64)

    def cell(i, j):
        center = img[i, j]
        c_here = coeff[i, j]
        c_s = coeff[minimum(i + 1, rows - 1), j]
        c_e = coeff[i, minimum(j + 1, cols - 1)]
        dn = img[maximum(i - 1, 0), j] - center
        ds = img[minimum(i + 1, rows - 1), j] - center
        dw = img[i, maximum(j - 1, 0)] - center
        de = img[i, minimum(j + 1, cols - 1)] - center
        div = c_s * ds + c_here * dn + c_e * de + c_here * dw
        return center + (lam / 4.0) * div

    if order == "R":
        out = range_map(
            rows,
            lambda i: range_map(cols, lambda j: cell(i, j), index_name="j"),
            index_name="i",
        )
    else:
        out = range_map(
            cols,
            lambda j: range_map(rows, lambda i: cell(i, j), index_name="i"),
            index_name="j",
        )
    return b.build(out)


def reference_update(inputs: Dict[str, Any], order: str = "R") -> np.ndarray:
    img, coeff, lam = inputs["img"], inputs["coeff"], inputs["lam"]
    north = np.vstack([img[:1], img[:-1]])
    south = np.vstack([img[1:], img[-1:]])
    west = np.hstack([img[:, :1], img[:, :-1]])
    east = np.hstack([img[:, 1:], img[:, -1:]])
    c_s = np.vstack([coeff[1:], coeff[-1:]])
    c_e = np.hstack([coeff[:, 1:], coeff[:, -1:]])
    div = (
        c_s * (south - img)
        + coeff * (north - img)
        + c_e * (east - img)
        + coeff * (west - img)
    )
    result = img + (lam / 4.0) * div
    return result if order == "R" else result.T


def workload(
    rng: np.random.Generator, R: int = 1024, C: int = 1024, **_: int
) -> Dict[str, Any]:
    return {
        "img": rng.random((R, C)) + 0.5,
        "R": R,
        "C": C,
    }


def reference(inputs: Dict[str, Any], order: str = "R") -> np.ndarray:
    img = inputs["img"]
    north = np.vstack([img[:1], img[:-1]])
    south = np.vstack([img[1:], img[-1:]])
    west = np.hstack([img[:, :1], img[:, :-1]])
    east = np.hstack([img[:, 1:], img[:, -1:]])
    dn, ds = north - img, south - img
    dw, de = west - img, east - img
    g2 = (dn * dn + ds * ds + dw * dw + de * de) / (img * img)
    l = (dn + ds + dw + de) / img
    num = 0.5 * g2 - (1.0 / 16.0) * (l * l)
    den = 1.0 + 0.25 * l
    qsqr = num / (den * den)
    denq = (qsqr - Q0) / (Q0 * (1.0 + Q0))
    c = np.clip(1.0 / (1.0 + denq), 0.0, 1.0)
    return c if order == "R" else c.T


def manual_time_us(device: GpuDevice, **params: int) -> float:
    from ..gpusim.simulator import simulate_program

    ours = simulate_program(
        build_srad("R"), "multidim", device, **params
    ).total_us
    return ours / MANUAL_FACTOR


SRAD = App(
    name="srad",
    build=build_srad,
    workload=workload,
    reference=reference,
    default_params={"R": 2048, "C": 2048},
    levels=2,
    manual_time_us=manual_time_us,
)
