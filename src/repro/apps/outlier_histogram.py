"""Outlier filtering + histogram bucketing: Filter and GroupBy end to end.

Not one of the paper's evaluation apps, but it completes Table I coverage
at application level: both patterns that *force* ``Span(all)`` through the
dynamic-output-size rule, plus the atomic-compaction costs the simulator
charges them.  The workload is a sensor-reading cleanup: keep readings
within range (filter), then bucket the survivors by magnitude (groupBy).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..ir.builder import Builder
from ..ir.patterns import Program
from ..ir.types import F64, I64
from .common import App

NUM_BUCKETS = 16


def build_outlier_filter(**params: int) -> Program:
    """Keep readings with absolute value below the threshold."""
    b = Builder("outlierFilter")
    xs = b.vector("xs", F64, length="N")
    threshold = b.scalar("threshold", F64)
    from ..ir.builder import abs_

    return b.build(xs.filter(lambda e: abs_(e) < threshold))


def build_histogram(**params: int) -> Program:
    """Bucket readings by magnitude into NUM_BUCKETS groups."""
    b = Builder("histogram")
    xs = b.vector("xs", F64, length="N")
    scale = b.scalar("scale", F64)
    from ..ir.builder import maximum, minimum

    def bucket(e):
        raw = (e * scale).cast(I64)
        return minimum(maximum(raw, 0), NUM_BUCKETS - 1).cast(I64)

    return b.build(xs.group_by(bucket))


def workload(rng: np.random.Generator, N: int = 1 << 20, **_: int) -> Dict[str, Any]:
    return {
        "xs": rng.normal(0.0, 1.0, N),
        "threshold": 3.0,
        "scale": float(NUM_BUCKETS) / 6.0,
        "N": N,
    }


def reference_filter(inputs: Dict[str, Any]) -> np.ndarray:
    xs = inputs["xs"]
    return xs[np.abs(xs) < inputs["threshold"]]


def reference_histogram(inputs: Dict[str, Any]) -> Dict[int, np.ndarray]:
    xs = inputs["xs"]
    keys = np.clip((xs * inputs["scale"]).astype(np.int64), 0, NUM_BUCKETS - 1)
    return {int(k): xs[keys == k] for k in np.unique(keys)}


OUTLIER_FILTER = App(
    name="outlierFilter",
    build=build_outlier_filter,
    workload=workload,
    reference=reference_filter,
    default_params={"N": 1 << 20},
    levels=1,
)

HISTOGRAM = App(
    name="histogram",
    build=build_histogram,
    workload=workload,
    reference=reference_histogram,
    default_params={"N": 1 << 20},
    levels=1,
)
