"""Naive Bayes spam-classifier training (Figure 14).

Training runs two aggregations over the *same* document-term matrix with
opposite access patterns:

* words per document — a row-wise reduction (sequential along columns);
* per-word spam counts — a column-wise reduction weighted by the document
  label (sequential along rows).

A 1D mapping can coalesce only one of the two kernels; the mapping
analysis picks the right dimension assignment per kernel, optimizing both
(4.5x over 1D, 12.5x over multi-core; 15% better than multi-core even when
paying the input transfer, Section VI-E).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..ir.builder import Builder
from ..ir.expr import Bind, Block, Var
from ..ir.patterns import Program
from ..ir.symbols import fresh_name
from ..ir.types import F64
from .common import App


def build_words_per_doc(**params: int) -> Program:
    """Kernel 1 in isolation (row-wise): for correctness tests."""
    b = Builder("nbWordsPerDoc")
    m = b.matrix("m", F64, rows="DOCS", cols="WORDS")
    return b.build(m.map_rows(lambda row: row.reduce("+")))


def build_spam_counts(**params: int) -> Program:
    """Kernel 2 in isolation (column-wise, label-weighted)."""
    b = Builder("nbSpamCounts")
    m = b.matrix("m", F64, rows="DOCS", cols="WORDS")
    labels = b.vector("labels", F64, length="DOCS")
    return b.build(
        m.map_cols(
            lambda col: col.zip_with(labels, lambda c, l: c * l).reduce("+")
        )
    )


def build_naive_bayes(**params: int) -> Program:
    """Both training kernels in one program (the Figure 14 configuration).

    The result block binds each kernel's output; the scalar result exists
    only to give the program a value (experiments cost the two kernels,
    correctness tests use the isolated builders above).
    """
    b = Builder("naiveBayes")
    m = b.matrix("m", F64, rows="DOCS", cols="WORDS")
    labels = b.vector("labels", F64, length="DOCS")

    words_per_doc = m.map_rows(lambda row: row.reduce("+"))
    spam_counts = m.map_cols(
        lambda col: col.zip_with(labels, lambda c, l: c * l).reduce("+")
    )

    wpd_var = Var(fresh_name("wpd"), words_per_doc.expr.ty)
    spam_var = Var(fresh_name("spam"), spam_counts.expr.ty)
    from ..ir.expr import ArrayRead, BinOp, Const

    result = Block(
        (
            Bind(wpd_var, words_per_doc.expr),
            Bind(spam_var, spam_counts.expr),
        ),
        BinOp(
            "+",
            ArrayRead(wpd_var, (Const(0),)),
            ArrayRead(spam_var, (Const(0),)),
        ),
    )
    return b.build(result)


def workload(
    rng: np.random.Generator, DOCS: int = 8192, WORDS: int = 4096, **_: int
) -> Dict[str, Any]:
    m = rng.poisson(0.5, size=(DOCS, WORDS)).astype(np.float64)
    labels = (rng.random(DOCS) < 0.4).astype(np.float64)
    return {"m": m, "labels": labels, "DOCS": DOCS, "WORDS": WORDS}


def reference(inputs: Dict[str, Any]) -> Dict[str, np.ndarray]:
    m, labels = inputs["m"], inputs["labels"]
    return {
        "words_per_doc": m.sum(axis=1),
        "spam_counts": (m * labels[:, None]).sum(axis=0),
    }


def input_bytes(**params: int) -> float:
    """Bytes of training data transferred to the device (Section VI-E)."""
    docs = params.get("DOCS", 8192)
    words = params.get("WORDS", 4096)
    return float(docs) * float(words) * 8.0 + float(docs) * 8.0


NAIVE_BAYES = App(
    name="naiveBayes",
    build=build_naive_bayes,
    workload=workload,
    reference=reference,
    default_params={"DOCS": 16384, "WORDS": 8192},
    levels=2,
)
