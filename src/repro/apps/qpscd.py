"""QPSCD HogWild!: lock-free stochastic coordinate descent (Figure 14).

A quadratic-programming solver whose outer pattern iterates over *randomly
selected* rows while the inner pattern walks the chosen row sequentially
(dot product).  The outer access pattern is random — uncoalescable — so a
1D mapping is hopeless (worse than the CPU, per the paper), while MultiDim
assigns the sequential inner pattern to dimension x and wins 4.38x over the
multi-core reference and 8.95x over 1D.

The synthetic workload preserves exactly the properties the mapping
analysis reacts to: random outer row selection, dense sequential rows.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..ir.builder import Builder, let, random_index, range_map
from ..ir.patterns import Program
from ..ir.types import F64
from .common import App


def build_qpscd(**params: int) -> Program:
    """out[s] = dot(A[r_s], x) - y[r_s] for a random row r_s per sample."""
    b = Builder("qpscd")
    samples = b.size("S")
    n = b.size("N")
    c = b.size("C")
    a = b.matrix("A", F64, rows="N", cols="C")
    x = b.vector("x", F64, length="C")
    y = b.vector("y", F64, length="N")

    def per_sample(_s):
        return let(
            random_index(n),
            lambda r: a.row(r).zip_with(x, lambda aij, xj: aij * xj).reduce("+")
            - y[r],
            name="r",
        )

    return b.build(range_map(samples, per_sample, index_name="s"))


def workload(
    rng: np.random.Generator, S: int = 4096, N: int = 4096, C: int = 1024, **_: int
) -> Dict[str, Any]:
    return {
        "A": rng.random((N, C)),
        "x": rng.random(C),
        "y": rng.random(N),
        "S": S,
        "N": N,
        "C": C,
    }


def reference(inputs: Dict[str, Any], seed: int = 0) -> np.ndarray:
    """Replays the evaluator's per-sample random row draws."""
    rng = np.random.default_rng(seed)
    A, x, y = inputs["A"], inputs["x"], inputs["y"]
    S, N = inputs["S"], inputs["N"]
    out = np.empty(S)
    for s in range(S):
        r = int(rng.integers(0, N))
        out[s] = A[r] @ x - y[r]
    return out


QPSCD = App(
    name="qpscd",
    build=build_qpscd,
    workload=workload,
    reference=reference,
    default_params={"S": 65536, "N": 65536, "C": 1024},
    levels=2,
)
