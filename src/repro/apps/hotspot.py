"""Rodinia Hotspot: iterative 2D thermal stencil (Figures 12 and 13).

Each step computes a new temperature per cell from its four neighbors and
the local power dissipation.  Written in two traversal orders:

* ``order="R"`` — outer map over rows, inner over columns (row-major);
* ``order="C"`` — outer map over columns, inner over rows (column-major).

Physical storage is row-major either way, so the (C) variant's natural
inner index strides by the row length — a fixed inner-dim strategy cannot
coalesce it, while the mapping analysis just swaps the dimension
assignment (the Figure 13 experiment).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..gpusim.device import GpuDevice
from ..ir.builder import Builder, maximum, minimum, range_map
from ..ir.patterns import Program
from ..ir.types import F64
from .common import App

#: Stencil coefficients (Rodinia's constants, simplified).
CAP = 0.5
RX, RY, RZ = 1.0, 1.0, 1.0 / 0.0005

#: The paper reports MultiDim comparable to manual for Hotspot.
MANUAL_FACTOR = 1.05


def build_hotspot(order: str = "R", **params: int) -> Program:
    b = Builder(f"hotspot_{order}")
    rows = b.size("R")
    cols = b.size("C")
    temp = b.matrix("temp", F64, rows="R", cols="C")
    power = b.matrix("power", F64, rows="R", cols="C")

    def cell(i, j):
        center = temp[i, j]
        north = temp[maximum(i - 1, 0), j]
        south = temp[minimum(i + 1, rows - 1), j]
        west = temp[i, maximum(j - 1, 0)]
        east = temp[i, minimum(j + 1, cols - 1)]
        delta = (CAP / RZ) * (
            power[i, j]
            + (south + north - center * 2.0) / RY
            + (east + west - center * 2.0) / RX
            + (80.0 - center) / RZ
        )
        return center + delta

    if order == "R":
        out = range_map(
            rows,
            lambda i: range_map(cols, lambda j: cell(i, j), index_name="j"),
            index_name="i",
        )
    else:
        out = range_map(
            cols,
            lambda j: range_map(rows, lambda i: cell(i, j), index_name="i"),
            index_name="j",
        )
    return b.build(out)


def workload(
    rng: np.random.Generator, R: int = 1024, C: int = 1024, **_: int
) -> Dict[str, Any]:
    return {
        "temp": 323.0 + rng.random((R, C)) * 4.0,
        "power": rng.random((R, C)) * 0.5,
        "R": R,
        "C": C,
    }


def reference(inputs: Dict[str, Any], order: str = "R") -> np.ndarray:
    temp, power = inputs["temp"], inputs["power"]
    north = np.vstack([temp[:1], temp[:-1]])
    south = np.vstack([temp[1:], temp[-1:]])
    west = np.hstack([temp[:, :1], temp[:, :-1]])
    east = np.hstack([temp[:, 1:], temp[:, -1:]])
    delta = (CAP / RZ) * (
        power
        + (south + north - 2.0 * temp) / RY
        + (east + west - 2.0 * temp) / RX
        + (80.0 - temp) / RZ
    )
    result = temp + delta
    return result if order == "R" else result.T


def manual_time_us(device: GpuDevice, **params: int) -> float:
    from ..gpusim.simulator import simulate_program

    ours = simulate_program(
        build_hotspot("R"), "multidim", device, **params
    ).total_us
    return ours / MANUAL_FACTOR


HOTSPOT = App(
    name="hotspot",
    build=build_hotspot,
    workload=workload,
    reference=reference,
    default_params={"R": 2048, "C": 2048},
    levels=2,
    manual_time_us=manual_time_us,
)
