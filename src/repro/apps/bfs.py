"""Rodinia BFS: frontier-expansion breadth-first search (Figure 12).

One expansion step: for every node on the current frontier, visit its
neighbors, set their cost, and add unvisited ones to the next frontier.
The neighbor loop's extent is a CSR degree — launch-dynamic — so the
analysis parallelizes it with ``Span(all)``, giving load balancing across
skewed degrees.

Rodinia's hand-written BFS parallelizes *only* the node loop (the paper
calls this out as an expert mistake: it is exactly the 1D mapping), so the
manual profile simply simulates the 1D strategy.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..gpusim.device import GpuDevice
from ..ir.builder import Builder, if_then, range_foreach, store
from ..ir.expr import ExprStmt
from ..ir.patterns import Program
from ..ir.types import ArrayType, I64, StructType
from .common import App

CSR_GRAPH = StructType.of(
    "BfsGraph",
    {
        "offsets": ArrayType(I64, 1),
        "nbrs": ArrayType(I64, 1),
    },
)

#: Fraction of nodes on the frontier in a representative middle iteration.
FRONTIER_PROB = 0.3


def build_bfs_step(**params: int) -> Program:
    b = Builder("bfsStep")
    n = b.size("N")
    e = b.size("E")
    graph = b.struct("graph", CSR_GRAPH)
    frontier = b.vector("frontier", I64, length="N")
    visited = b.vector("visited", I64, length="N")
    cost = b.vector("cost", I64, length="N")
    next_frontier = b.vector("next_frontier", I64, length="N")

    offsets = graph.field_vector("offsets", n + 1)
    nbrs = graph.field_vector("nbrs", e)

    def per_node(node):
        start = offsets[node]
        degree = offsets[node + 1] - offsets[node]

        def per_edge(j):
            neighbor = nbrs[start + j]
            return [
                if_then(
                    frontier[node].eq(1),
                    [
                        if_then(
                            visited[neighbor].eq(0),
                            [
                                store(cost, neighbor, cost[node] + 1),
                                store(next_frontier, neighbor, 1),
                            ],
                            prob=0.5,
                        )
                    ],
                    prob=FRONTIER_PROB,
                )
            ]

        return [ExprStmt(range_foreach(degree, per_edge, index_name="j"))]

    # Dynamic inner domains are neighbor lists: hint the average degree
    # and the warp-max/mean skew of the zipf-distributed degrees.
    b.set_size_hint("__default__", 12)
    b.set_size_hint("__skew__", 2)
    return b.build(range_foreach(n, per_node, index_name="n"))


def workload(
    rng: np.random.Generator, N: int = 65536, avg_degree: int = 12, **_: int
) -> Dict[str, Any]:
    degrees = np.maximum(
        1, rng.zipf(1.7, size=N).clip(max=16 * avg_degree)
    ).astype(np.int64)
    scale = max(1.0, degrees.mean() / avg_degree)
    degrees = np.maximum(1, (degrees / scale).astype(np.int64))
    offsets = np.zeros(N + 1, dtype=np.int64)
    offsets[1:] = np.cumsum(degrees)
    E = int(offsets[-1])
    nbrs = rng.integers(0, N, size=E).astype(np.int64)
    frontier = (rng.random(N) < FRONTIER_PROB).astype(np.int64)
    visited = frontier.copy()
    cost = np.where(frontier == 1, 0, -1).astype(np.int64)
    return {
        "graph": {"offsets": offsets, "nbrs": nbrs},
        "frontier": frontier,
        "visited": visited,
        "cost": cost,
        "next_frontier": np.zeros(N, dtype=np.int64),
        "N": N,
        "E": E,
    }


def reference(inputs: Dict[str, Any]) -> Dict[str, np.ndarray]:
    """One BFS expansion step in NumPy (sequential semantics)."""
    offsets = inputs["graph"]["offsets"]
    nbrs = inputs["graph"]["nbrs"]
    frontier = inputs["frontier"]
    visited = inputs["visited"].copy()
    cost = inputs["cost"].copy()
    next_frontier = inputs["next_frontier"].copy()
    for node in np.flatnonzero(frontier == 1):
        for j in range(offsets[node], offsets[node + 1]):
            neighbor = nbrs[j]
            if visited[neighbor] == 0:
                cost[neighbor] = cost[node] + 1
                next_frontier[neighbor] = 1
    return {"cost": cost, "next_frontier": next_frontier}


def manual_time_us(device: GpuDevice, **params: int) -> float:
    """Rodinia's CUDA parallelizes only the node loop: the 1D mapping."""
    from ..gpusim.simulator import simulate_program

    return simulate_program(build_bfs_step(), "1d", device, **params).total_us


BFS = App(
    name="bfs",
    build=build_bfs_step,
    workload=workload,
    reference=reference,
    default_params={"N": 65536, "E": 65536 * 12},
    levels=2,
    manual_time_us=manual_time_us,
)
