"""Benchmark applications from the paper's evaluation (Section VI).

* Running examples: sums (Figures 1/3/15/16), PageRank (Figure 5).
* Rodinia subset (Figures 12/13): Nearest Neighbor, Gaussian Elimination,
  Hotspot, Mandelbrot, SRAD, Pathfinder, LUD, BFS.
* Real-world applications (Figure 14): QPSCD HogWild!, MSMBuilder
  trajectory clustering, Naive Bayes spam training.
"""

from .bfs import BFS  # noqa: F401
from .common import App, merge_params  # noqa: F401
from .gaussian import GAUSSIAN  # noqa: F401
from .hotspot import HOTSPOT  # noqa: F401
from .lud import LUD  # noqa: F401
from .mandelbrot import MANDELBROT  # noqa: F401
from .msmbuilder import MSMBUILDER  # noqa: F401
from .naive_bayes import NAIVE_BAYES  # noqa: F401
from .nearest_neighbor import NEAREST_NEIGHBOR  # noqa: F401
from .outlier_histogram import HISTOGRAM, OUTLIER_FILTER  # noqa: F401
from .pagerank import PAGERANK  # noqa: F401
from .pathfinder import PATHFINDER  # noqa: F401
from .qpscd import QPSCD  # noqa: F401
from .srad import SRAD  # noqa: F401
from .sums import (  # noqa: F401
    SUM_COLS,
    SUM_ROWS,
    SUM_WEIGHTED_COLS,
    SUM_WEIGHTED_ROWS,
)

#: Registry used by the figure harness and tests.
ALL_APPS = {
    app.name: app
    for app in (
        SUM_ROWS,
        SUM_COLS,
        SUM_WEIGHTED_ROWS,
        SUM_WEIGHTED_COLS,
        PAGERANK,
        NEAREST_NEIGHBOR,
        GAUSSIAN,
        HOTSPOT,
        MANDELBROT,
        SRAD,
        PATHFINDER,
        LUD,
        BFS,
        QPSCD,
        MSMBUILDER,
        NAIVE_BAYES,
        OUTLIER_FILTER,
        HISTOGRAM,
    )
}

def resolve_app(name: str) -> App:
    """Look up an app by name, accepting any casing.

    Registry keys are camelCase (``sumCols``); the CLI and the compile
    service both accept ``sumcols``/``SUMCOLS`` etc.  Unknown names raise
    :class:`~repro.errors.RuntimeConfigError` listing the registry.
    """
    from ..errors import RuntimeConfigError

    try:
        return ALL_APPS[name]
    except KeyError:
        pass
    folded = {key.lower(): app for key, app in ALL_APPS.items()}
    try:
        return folded[name.lower()]
    except KeyError:
        known = ", ".join(sorted(ALL_APPS))
        raise RuntimeConfigError(f"unknown app {name!r}; known: {known}")


#: The Figure 12 application order.
RODINIA_APPS = (
    NEAREST_NEIGHBOR,
    GAUSSIAN,
    HOTSPOT,
    MANDELBROT,
    SRAD,
    PATHFINDER,
    LUD,
    BFS,
)
