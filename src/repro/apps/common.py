"""Shared infrastructure for benchmark applications.

Every application module exposes an :class:`App` instance with:

* ``build(**params)`` — the program in pattern IR;
* ``workload(rng, **params)`` — synthetic inputs matching the paper's
  stated shapes (see DESIGN.md, Substitutions);
* ``reference(inputs)`` — a straight NumPy implementation used as the
  correctness oracle for the interpreter;
* optionally ``manual_time_us(device, **params)`` — an analytic profile of
  the hand-optimized implementation the paper compares against, encoding
  the specific optimizations (or mistakes) the paper attributes to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from ..ir.patterns import Program


@dataclass
class App:
    """A benchmark application: program builder + workload + oracle."""

    name: str
    build: Callable[..., Program]
    workload: Callable[..., Dict[str, Any]]
    reference: Callable[[Dict[str, Any]], Any]
    default_params: Dict[str, int] = field(default_factory=dict)
    #: Nest depth of the main kernel (documentation/diagnostics).
    levels: int = 2
    #: Analytic profile of the hand-optimized comparison implementation,
    #: or None when the paper has no manual version for this app.
    manual_time_us: Optional[Callable[..., float]] = None
    #: Iterations the app's outer driver loop performs (iterative apps).
    iterations: int = 1

    def make_rng(self, seed: int = 0) -> np.random.Generator:
        return np.random.default_rng(seed)


def merge_params(app: App, overrides: Dict[str, int]) -> Dict[str, int]:
    params = dict(app.default_params)
    params.update(overrides)
    return params
