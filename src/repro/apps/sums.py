"""The paper's running example: sumRows / sumCols and weighted variants.

``sumRows``/``sumCols`` (Figure 1) drive the motivating study of Figure 3;
``sumWeightedRows``/``sumWeightedCols`` (Figure 15) add a zipWith temporary
whose per-iteration allocation the preallocation optimization removes
(Figure 16).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..ir.builder import Builder, let_vec
from ..ir.patterns import Program
from ..ir.types import F64
from .common import App


def build_sum_rows(**params: int) -> Program:
    """out[i] = sum_j m[i, j] — outer Map over rows, inner Reduce."""
    b = Builder("sumRows")
    m = b.matrix("m", F64, rows="R", cols="C")
    return b.build(m.map_rows(lambda row: row.reduce("+")))


def build_sum_cols(**params: int) -> Program:
    """out[j] = sum_i m[i, j] — outer Map over columns, inner Reduce."""
    b = Builder("sumCols")
    m = b.matrix("m", F64, rows="R", cols="C")
    return b.build(m.map_cols(lambda col: col.reduce("+")))


def build_sum_weighted_rows(**params: int) -> Program:
    """Figure 15 transposed: weight each row by v before reducing."""
    b = Builder("sumWeightedRows")
    m = b.matrix("m", F64, rows="R", cols="C")
    v = b.vector("v", F64, length="C")
    out = m.map_rows(
        lambda row: let_vec(
            row.zip_with(v, lambda a, w: a * w),
            lambda temp: temp.reduce("+"),
        )
    )
    return b.build(out)


def build_sum_weighted_cols(**params: int) -> Program:
    """Figure 15 verbatim: weight each column by v before reducing."""
    b = Builder("sumWeightedCols")
    m = b.matrix("m", F64, rows="R", cols="C")
    v = b.vector("v", F64, length="R")
    out = m.map_cols(
        lambda col: let_vec(
            col.zip_with(v, lambda a, w: a * w),
            lambda temp: temp.reduce("+"),
        )
    )
    return b.build(out)


def _matrix_workload(rng: np.random.Generator, R: int, C: int) -> Dict[str, Any]:
    return {
        "m": rng.random((R, C)),
        "R": R,
        "C": C,
    }


def _weighted_workload(
    rng: np.random.Generator, R: int, C: int, along_rows: bool
) -> Dict[str, Any]:
    inputs = _matrix_workload(rng, R, C)
    inputs["v"] = rng.random(C if along_rows else R)
    return inputs


SUM_ROWS = App(
    name="sumRows",
    build=build_sum_rows,
    workload=lambda rng, R=1024, C=1024, **_: _matrix_workload(rng, R, C),
    reference=lambda inputs: inputs["m"].sum(axis=1),
    default_params={"R": 8192, "C": 8192},
    levels=2,
)

SUM_COLS = App(
    name="sumCols",
    build=build_sum_cols,
    workload=lambda rng, R=1024, C=1024, **_: _matrix_workload(rng, R, C),
    reference=lambda inputs: inputs["m"].sum(axis=0),
    default_params={"R": 8192, "C": 8192},
    levels=2,
)

SUM_WEIGHTED_ROWS = App(
    name="sumWeightedRows",
    build=build_sum_weighted_rows,
    workload=lambda rng, R=1024, C=1024, **_: _weighted_workload(
        rng, R, C, along_rows=True
    ),
    reference=lambda inputs: (inputs["m"] * inputs["v"][None, :]).sum(axis=1),
    default_params={"R": 8192, "C": 8192},
    levels=2,
)

SUM_WEIGHTED_COLS = App(
    name="sumWeightedCols",
    build=build_sum_weighted_cols,
    workload=lambda rng, R=1024, C=1024, **_: _weighted_workload(
        rng, R, C, along_rows=False
    ),
    reference=lambda inputs: (inputs["m"] * inputs["v"][:, None]).sum(axis=0),
    default_params={"R": 8192, "C": 8192},
    levels=2,
)
