"""Rodinia Pathfinder: iterative dynamic programming over a grid (Fig. 12).

Each step computes, per column, the minimum-cost path extended by one row::

    next[j] = wall[t, j] + min(prev[j-1], prev[j], prev[j+1])

One step has a single level of parallelism; the application iterates over
all rows.  Rodinia's hand-optimized CUDA fuses multiple DP steps into one
kernel using shared memory, trading duplicated halo work for far fewer
global-memory round trips — the optimization the paper explicitly declines
to infer automatically (Section VI-C), which is why manual wins here.  The
manual profile below models that fused kernel from first principles.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..gpusim.device import GpuDevice
from ..ir.builder import Builder, maximum, minimum, range_map
from ..ir.patterns import Program
from ..ir.types import F64
from .common import App

#: Steps Rodinia's fused kernel combines per launch (its "pyramid height").
FUSION_DEPTH = 5


def build_pathfinder_step(**params: int) -> Program:
    b = Builder("pathfinderStep")
    cols = b.size("C")
    rows = b.size("R")
    t = b.size("T")
    wall = b.matrix("wall", F64, rows="R", cols="C")
    prev = b.vector("prev", F64, length="C")

    def step(j):
        left = prev[maximum(j - 1, 0)]
        mid = prev[j]
        right = prev[minimum(j + 1, cols - 1)]
        return wall[t, j] + minimum(left, minimum(mid, right))

    return b.build(range_map(cols, step, index_name="j"))


def workload(
    rng: np.random.Generator, R: int = 100, C: int = 1 << 20, **_: int
) -> Dict[str, Any]:
    return {
        "wall": rng.random((R, C)) * 10.0,
        "prev": rng.random(C) * 10.0,
        "R": R,
        "C": C,
        "T": 1,
    }


def reference(inputs: Dict[str, Any]) -> np.ndarray:
    prev, wall, t = inputs["prev"], inputs["wall"], inputs["T"]
    left = np.concatenate([prev[:1], prev[:-1]])
    right = np.concatenate([prev[1:], prev[-1:]])
    return wall[t] + np.minimum(left, np.minimum(prev, right))


def manual_time_us(device: GpuDevice, **params: int) -> float:
    """Rodinia's fused multi-step kernel, modeled from its mechanism.

    Over ``k = FUSION_DEPTH`` steps the fused kernel reads/writes global
    memory once instead of ``k`` times (intermediate rows stay in shared
    memory), pays one launch instead of ``k``, and duplicates halo compute
    (negligible for wide rows).  Unfused cost components come from our own
    simulator so the comparison is internally consistent.
    """
    from ..analysis.analyzer import analyze_program
    from ..gpusim.simulator import decide_mapping

    pa = analyze_program(build_pathfinder_step(), **params)
    ka = pa.kernel(0)
    decision = decide_mapping(ka, "multidim", device)
    cost = decision.cost(device, pa.env)
    k = FUSION_DEPTH
    # The wall row must be read every step even when fused; only the
    # prev/next vectors stay resident in shared memory between steps.
    wall_bytes = sum(
        a.effective_bytes for a in cost.accesses if a.array_key == "wall"
    )
    vector_bytes = cost.traffic_bytes - wall_bytes
    fused_traffic = wall_bytes + vector_bytes * (1.0 + 2.0 / k) / 3.0
    mem_scale = fused_traffic / max(1.0, cost.traffic_bytes)
    fused_step = (
        cost.launch_us / k
        + cost.block_sched_us / k
        + max(cost.memory_us * mem_scale, cost.compute_us)
        + cost.shared_mem_us
    )
    return fused_step


PATHFINDER = App(
    name="pathfinder",
    build=build_pathfinder_step,
    workload=workload,
    reference=reference,
    default_params={"R": 100, "C": 1 << 20, "T": 1},
    levels=1,
    manual_time_us=manual_time_us,
    iterations=100,
)
