"""Rodinia LUD: LU decomposition's trailing-submatrix update (Figure 12).

Per factorization step ``t`` the internal kernel computes::

    a[t+1+i, t+1+j] -= a[t+1+i, t] * a[t, t+1+j]

a classic rank-1 update with two levels of parallelism.  Rodinia's manual
CUDA is a blocked shared-memory implementation that stages 16x16 tiles of
the pivot row/column and the submatrix, cutting global traffic by roughly
the tile edge — the largest manual advantage in Figure 12 (about 4.6x).
As with Pathfinder, the paper's compiler does not attempt this
application-specific blocking; the manual profile models it explicitly.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..gpusim.device import GpuDevice
from ..ir.builder import Builder, range_foreach, store2
from ..ir.expr import ExprStmt
from ..ir.patterns import Program
from ..ir.types import F64
from .common import App

#: Rodinia's tile edge; reuse factor of the blocked manual kernel.
TILE = 16
#: Fraction of the blocked kernel's traffic that remains (tile loads of
#: the pivot row/column amortize across TILE uses, plus the in/out tile).
BLOCKED_TRAFFIC_FRACTION = 1.0 / 4.0


def build_lud_step(**params: int) -> Program:
    b = Builder("ludInternal")
    n = b.size("N")
    t = b.size("T")
    a = b.matrix("a", F64, rows="N", cols="N")
    below = n - t - 1

    def row(i):
        return [
            ExprStmt(
                range_foreach(
                    below,
                    lambda j: [
                        store2(
                            a,
                            t + 1 + i,
                            t + 1 + j,
                            a[t + 1 + i, t + 1 + j]
                            - a[t + 1 + i, t] * a[t, t + 1 + j],
                        )
                    ],
                    index_name="j",
                )
            )
        ]

    return b.build(range_foreach(below, row, index_name="i"))


def workload(rng: np.random.Generator, N: int = 1024, T: int = 0, **_: int) -> Dict[str, Any]:
    return {"a": rng.random((N, N)) + np.eye(N) * N, "N": N, "T": T}


def reference(inputs: Dict[str, Any]) -> np.ndarray:
    a = inputs["a"].copy()
    t = inputs["T"]
    a[t + 1:, t + 1:] -= np.outer(a[t + 1:, t], a[t, t + 1:])
    return a


def manual_time_us(device: GpuDevice, **params: int) -> float:
    """Rodinia's blocked shared-memory LUD, modeled from its mechanism."""
    from ..analysis.analyzer import analyze_program
    from ..gpusim.simulator import decide_mapping

    pa = analyze_program(build_lud_step(), **params)
    ka = pa.kernel(0)
    decision = decide_mapping(ka, "multidim", device)
    cost = decision.cost(device, pa.env)
    blocked = (
        cost.launch_us
        + cost.block_sched_us
        + max(
            cost.memory_us * BLOCKED_TRAFFIC_FRACTION,
            cost.compute_us,
        )
        + cost.shared_mem_us
    )
    return blocked


LUD = App(
    name="lud",
    build=build_lud_step,
    workload=workload,
    reference=reference,
    default_params={"N": 2048, "T": 0},
    levels=2,
    manual_time_us=manual_time_us,
    iterations=1,
)
