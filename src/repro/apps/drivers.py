"""Full iterative algorithms built from the per-step kernel programs.

The paper's iterative applications (Gaussian elimination, LUD, Pathfinder,
BFS, PageRank) launch one kernel (set) per step from a host-side driver.
These drivers run the complete algorithms through the functional executor
— full eliminations, factorizations, traversals — and report aggregate
simulated GPU time, giving end-to-end validation beyond single-step unit
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from ..gpusim.device import GpuDevice, default_device
from ..gpusim.simulator import simulate_program
from ..interp.evaluator import Evaluator


@dataclass
class DriverResult:
    """Outcome of a full iterative run."""

    result: Any
    iterations: int
    simulated_us: float


def run_gaussian_elimination(
    a: np.ndarray,
    device: Optional[GpuDevice] = None,
    strategy: str = "multidim",
) -> DriverResult:
    """Complete forward elimination: N-1 steps of Fan1 + Fan2.

    Returns the upper-triangularized matrix; the simulated time sums the
    per-step kernel costs at each step's actual trailing-submatrix size.
    """
    from .gaussian import build_gaussian

    device = device or default_device()
    n = a.shape[0]
    program = build_gaussian("R")
    evaluator = Evaluator(program)
    work = a.copy()
    mult = np.zeros(n)
    total_us = 0.0
    for t in range(n - 1):
        evaluator.run(a=work, mult=mult, N=n, T=t)
        total_us += simulate_program(
            program, strategy, device, N=n, T=t
        ).total_us
    return DriverResult(result=work, iterations=n - 1, simulated_us=total_us)


def run_lud(
    a: np.ndarray,
    device: Optional[GpuDevice] = None,
    strategy: str = "multidim",
) -> DriverResult:
    """Complete Doolittle LU factorization (in place, no pivoting).

    Per step: scale the pivot column (host-side here; Rodinia's perimeter
    kernel), then the internal rank-1 update kernel.  The result stores L
    (unit diagonal, below) and U (diagonal and above) in one matrix.
    """
    from .lud import build_lud_step

    device = device or default_device()
    n = a.shape[0]
    program = build_lud_step()
    evaluator = Evaluator(program)
    work = a.copy()
    total_us = 0.0
    for t in range(n - 1):
        work[t + 1:, t] /= work[t, t]
        evaluator.run(a=work, N=n, T=t)
        total_us += simulate_program(
            program, strategy, device, N=n, T=t
        ).total_us
    return DriverResult(result=work, iterations=n - 1, simulated_us=total_us)


def lu_reconstruct(lu: np.ndarray) -> np.ndarray:
    """Rebuild A from the packed LU factors (for validation)."""
    lower = np.tril(lu, -1) + np.eye(lu.shape[0])
    upper = np.triu(lu)
    return lower @ upper


def run_pathfinder(
    wall: np.ndarray,
    device: Optional[GpuDevice] = None,
    strategy: str = "multidim",
) -> DriverResult:
    """Full dynamic program: minimum path cost through every wall row."""
    from .pathfinder import build_pathfinder_step

    device = device or default_device()
    rows, cols = wall.shape
    program = build_pathfinder_step()
    evaluator = Evaluator(program)
    prev = wall[0].copy()
    step_us = simulate_program(
        program, strategy, device, R=rows, C=cols, T=1
    ).total_us
    for t in range(1, rows):
        prev = evaluator.run(wall=wall, prev=prev, R=rows, C=cols, T=t)
    return DriverResult(
        result=prev, iterations=rows - 1, simulated_us=step_us * (rows - 1)
    )


def pathfinder_reference(wall: np.ndarray) -> np.ndarray:
    prev = wall[0].copy()
    for t in range(1, wall.shape[0]):
        left = np.concatenate([prev[:1], prev[:-1]])
        right = np.concatenate([prev[1:], prev[-1:]])
        prev = wall[t] + np.minimum(left, np.minimum(prev, right))
    return prev


def run_bfs(
    graph: Dict[str, np.ndarray],
    source: int,
    n: int,
    device: Optional[GpuDevice] = None,
    strategy: str = "multidim",
    max_steps: int = 10**6,
) -> DriverResult:
    """Full breadth-first search from a source until the frontier empties."""
    from .bfs import build_bfs_step

    device = device or default_device()
    e = int(graph["offsets"][-1])
    program = build_bfs_step()
    evaluator = Evaluator(program)
    step_us = simulate_program(
        program, strategy, device, N=n, E=e
    ).total_us

    cost = np.full(n, -1, dtype=np.int64)
    cost[source] = 0
    visited = np.zeros(n, dtype=np.int64)
    visited[source] = 1
    frontier = np.zeros(n, dtype=np.int64)
    frontier[source] = 1
    steps = 0
    while frontier.any() and steps < max_steps:
        next_frontier = np.zeros(n, dtype=np.int64)
        evaluator.run(
            graph=graph,
            frontier=frontier,
            visited=visited,
            cost=cost,
            next_frontier=next_frontier,
            N=n,
            E=e,
        )
        visited = np.maximum(visited, next_frontier)
        frontier = next_frontier
        steps += 1
    return DriverResult(
        result=cost, iterations=steps, simulated_us=step_us * steps
    )


def bfs_reference(graph: Dict[str, np.ndarray], source: int, n: int) -> np.ndarray:
    """Textbook BFS levels for validation."""
    from collections import deque

    offsets, nbrs = graph["offsets"], graph["nbrs"]
    cost = np.full(n, -1, dtype=np.int64)
    cost[source] = 0
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for j in range(offsets[node], offsets[node + 1]):
            neighbor = int(nbrs[j])
            if cost[neighbor] == -1:
                cost[neighbor] = cost[node] + 1
                queue.append(neighbor)
    return cost


def run_pagerank(
    graph: Dict[str, np.ndarray],
    n: int,
    e: int,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
    device: Optional[GpuDevice] = None,
    strategy: str = "multidim",
) -> DriverResult:
    """Power iteration until the ranks stabilize."""
    from .pagerank import build_pagerank

    device = device or default_device()
    program = build_pagerank()
    evaluator = Evaluator(program)
    step_us = simulate_program(
        program, strategy, device, N=n, E=e
    ).total_us
    ranks = np.full(n, 1.0 / n)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        new_ranks = evaluator.run(graph=graph, prev=ranks, N=n, E=e)
        delta = float(np.abs(new_ranks - ranks).max())
        ranks = new_ranks
        if delta < tolerance:
            break
    return DriverResult(
        result=ranks, iterations=iterations, simulated_us=step_us * iterations
    )


def run_hotspot(
    temp: np.ndarray,
    power: np.ndarray,
    steps: int,
    device: Optional[GpuDevice] = None,
    strategy: str = "multidim",
) -> DriverResult:
    """Iterative thermal simulation: ``steps`` applications of the
    Hotspot stencil."""
    from .hotspot import build_hotspot

    device = device or default_device()
    rows, cols = temp.shape
    program = build_hotspot("R")
    evaluator = Evaluator(program)
    step_us = simulate_program(
        program, strategy, device, R=rows, C=cols
    ).total_us
    state = temp
    for _ in range(steps):
        state = evaluator.run(temp=state, power=power, R=rows, C=cols)
    return DriverResult(
        result=state, iterations=steps, simulated_us=step_us * steps
    )
