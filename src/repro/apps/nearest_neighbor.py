"""Rodinia Nearest Neighbor: one-dimensional baseline app (Figure 12).

Computes the Euclidean distance from every record to a target location.
Only one level of parallelism exists; the paper includes it to measure the
quality of generated code against hand-written CUDA in the flat case.  The
paper's generated code is ~20% slower than manual because its
multidimensional-array wrappers recompute physical indices from offset/
stride fields at every access; the manual CUDA uses raw pointers.  The
manual profile models exactly that: the same mapping minus the
index-arithmetic overhead.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..gpusim.device import GpuDevice
from ..ir.builder import Builder, sqrt
from ..ir.patterns import Program
from ..ir.types import F64
from .common import App

#: Fractional slowdown of generated code vs raw-pointer CUDA from the
#: dynamic index computation (Section VI-C's stated ~20%).
WRAPPER_OVERHEAD = 1.2


def build_nearest_neighbor(**params: int) -> Program:
    b = Builder("nearestNeighbor")
    lat = b.vector("lat", F64, length="N")
    lng = b.vector("lng", F64, length="N")
    target_lat = b.scalar("target_lat", F64)
    target_lng = b.scalar("target_lng", F64)
    out = lat.zip_with(
        lng,
        lambda a, g: sqrt(
            (a - target_lat) * (a - target_lat)
            + (g - target_lng) * (g - target_lng)
        ),
    )
    return b.build(out)


def workload(rng: np.random.Generator, N: int = 1 << 20, **_: int) -> Dict[str, Any]:
    return {
        "lat": rng.random(N) * 180.0 - 90.0,
        "lng": rng.random(N) * 360.0 - 180.0,
        "target_lat": 30.0,
        "target_lng": -90.0,
        "N": N,
    }


def reference(inputs: Dict[str, Any]) -> np.ndarray:
    dlat = inputs["lat"] - inputs["target_lat"]
    dlng = inputs["lng"] - inputs["target_lng"]
    return np.sqrt(dlat * dlat + dlng * dlng)


def manual_time_us(device: GpuDevice, **params: int) -> float:
    """Hand-written CUDA: same mapping, raw pointers (no wrapper cost)."""
    from ..gpusim.simulator import simulate_program

    ours = simulate_program(
        build_nearest_neighbor(), "multidim", device, **params
    ).total_us
    return ours / WRAPPER_OVERHEAD


NEAREST_NEIGHBOR = App(
    name="nearestNeighbor",
    build=build_nearest_neighbor,
    workload=workload,
    reference=reference,
    default_params={"N": 1 << 20},
    levels=1,
    manual_time_us=manual_time_us,
)
