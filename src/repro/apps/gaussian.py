"""Rodinia Gaussian Elimination (Figures 12 and 13).

One elimination step ``t`` consists of two kernels, as in Rodinia:

* **Fan1** (one level): the multiplier column
  ``mult[i] = a[t+1+i, t] / a[t, t]``;
* **Fan2** (two levels): the trailing-submatrix update
  ``a[t+1+i, t+j] -= mult[i] * a[t, t+j]``.

The paper's headline for this app: Rodinia's hand-written CUDA fails to
coalesce one of the two-level nests, while the analysis assigns dimensions
correctly and *beats* manual code.  The manual profile is therefore the
same program simulated with the dimension assignment swapped on the
two-level kernel — exactly the mistake the paper describes.

Row-major (R) and column-major (C) traversal variants exist for Figure 13.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..gpusim.device import GpuDevice
from ..ir.builder import Builder, range_foreach, store, store2
from ..ir.expr import Block, Const, ExprStmt
from ..ir.patterns import Program
from ..ir.types import F64, I64
from .common import App


def build_gaussian(order: str = "R", **params: int) -> Program:
    """Fan1 + Fan2 for one elimination step (step index = parameter T)."""
    b = Builder(f"gaussian_{order}")
    n = b.size("N")
    t = b.size("T")
    a = b.matrix("a", F64, rows="N", cols="N")
    mult = b.vector("mult", F64, length="N")

    rows_below = n - t - 1
    cols_right = n - t

    # Fan1: multiplier column (one level of parallelism).
    fan1 = range_foreach(
        rows_below,
        lambda i: [store(mult, t + 1 + i, a[t + 1 + i, t] / a[t, t])],
        index_name="i",
    )

    # Fan2: trailing submatrix update (two levels).
    def fan2_row(i):
        return [
            ExprStmt(
                range_foreach(
                    cols_right,
                    lambda j: [
                        store2(
                            a,
                            t + 1 + i,
                            t + j,
                            a[t + 1 + i, t + j]
                            - mult[t + 1 + i] * a[t, t + j],
                        )
                    ],
                    index_name="j",
                )
            )
        ]

    def fan2_col(j):
        return [
            ExprStmt(
                range_foreach(
                    rows_below,
                    lambda i: [
                        store2(
                            a,
                            t + 1 + i,
                            t + j,
                            a[t + 1 + i, t + j]
                            - mult[t + 1 + i] * a[t, t + j],
                        )
                    ],
                    index_name="i",
                )
            )
        ]

    if order == "R":
        fan2 = range_foreach(rows_below, fan2_row, index_name="i")
    else:
        fan2 = range_foreach(cols_right, fan2_col, index_name="j")

    result = Block((ExprStmt(fan1), ExprStmt(fan2)), Const(0, I64))
    return b.build(result)


def workload(rng: np.random.Generator, N: int = 1024, T: int = 0, **_: int) -> Dict[str, Any]:
    a = rng.random((N, N)) + np.eye(N) * N  # diagonally dominant
    return {"a": a, "mult": np.zeros(N), "N": N, "T": T}


def reference(inputs: Dict[str, Any]) -> Dict[str, np.ndarray]:
    """One elimination step applied with NumPy."""
    a = inputs["a"].copy()
    mult = inputs["mult"].copy()
    t = inputs["T"]
    mult[t + 1:] = a[t + 1:, t] / a[t, t]
    a[t + 1:, t:] = a[t + 1:, t:] - mult[t + 1:, None] * a[t, t:][None, :]
    return {"a": a, "mult": mult}


def _swap_dims(mapping):
    """The manual version's mistake: x and y assignments swapped."""
    from repro.analysis.mapping import Dim, LevelMapping, Mapping

    swap = {Dim.X: Dim.Y, Dim.Y: Dim.X}
    levels = []
    for lm in mapping.levels:
        if lm.parallel and lm.dim in swap:
            levels.append(LevelMapping(swap[lm.dim], lm.block_size, lm.span))
        else:
            levels.append(lm)
    return Mapping(tuple(levels))


def manual_time_us(device: GpuDevice, **params: int) -> float:
    """Rodinia's CUDA: correct Fan1, non-coalesced Fan2."""
    from ..analysis.analyzer import analyze_program
    from ..gpusim.cost import estimate_kernel_cost
    from ..gpusim.simulator import decide_mapping

    pa = analyze_program(build_gaussian("R"), **params)
    total = 0.0
    for ka in pa.kernels:
        decision = decide_mapping(ka, "multidim", device)
        mapping = decision.mapping
        if ka.depth >= 2:
            mapping = _swap_dims(mapping)
        total += estimate_kernel_cost(
            ka, mapping, device, pa.env, decision.plan
        ).total_us
    return total


GAUSSIAN = App(
    name="gaussian",
    build=build_gaussian,
    workload=workload,
    reference=reference,
    default_params={"N": 2048, "T": 0},
    levels=2,
    manual_time_us=manual_time_us,
)
