"""Pass-ordering autotune: search over when/whether passes apply.

The mapping autotuner (:mod:`repro.analysis.autotune`) prices *mapping*
candidates with the cost model; this module prices *pipelines* — every
feasible permutation of every on/off subset of the registered passes —
for one fixed mapping.  Reified passes are what make the space
enumerable at all (arXiv:2201.02789 makes the same argument for dynamic
parallelism rewrites).

The machinery mirrors the mapping tuner deliberately:

* the same :class:`~repro.resilience.budget.Budget` template bounds the
  sweep, returning best-so-far when it expires;
* a structural prefilter (``requires`` dependencies via
  :func:`~repro.optim.passes.base.feasible_order`) rejects infeasible
  sequences before anything is executed, and orderings that reach an
  identical final plan-state digest are deduplicated so the expensive
  cost model prices each distinct outcome exactly once — the
  batch-prefilter idea applied to pipelines;
* non-finite modeled costs are dropped, never chosen.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations, permutations
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ...analysis.analyzer import KernelAnalysis
from ...analysis.mapping import Mapping
from ...analysis.shapes import SizeEnv
from ...errors import SearchError
from ...gpusim.device import GpuDevice
from ...resilience.budget import Budget
from .base import PlanState, Transformation, feasible_order, run_pipeline

#: The production pipeline order (see repro.optim.pipeline.build_plan).
DEFAULT_PASS_ORDER: Tuple[str, ...] = ("prealloc", "layout", "shared_memory")


@dataclass
class OrderingResult:
    """One priced pipeline ordering."""

    passes: Tuple[str, ...]
    time_us: float
    plan_digest: str
    #: Modeled-cost delta vs the default production ordering (negative =
    #: faster than the default).
    delta_us: float = 0.0
    #: Final mapping (ControlDOP in the pipeline may rewrite it).
    mapping: str = ""
    #: How many enumerated orderings collapsed onto this plan digest.
    equivalent_orderings: int = 1

    def describe(self) -> str:
        order = " -> ".join(self.passes) if self.passes else "(empty)"
        sign = "+" if self.delta_us > 0 else ""
        return (
            f"{self.time_us:12.3f} us  ({sign}{self.delta_us:.3f} vs "
            f"default)  {order}"
        )


@dataclass
class PassOrderResult:
    """The full pass-ordering search outcome for one kernel."""

    best: OrderingResult
    default: OrderingResult
    #: Distinct-outcome orderings, fastest first, truncated to keep_top.
    frontier: List[OrderingResult] = field(default_factory=list)
    enumerated: int = 0
    feasible: int = 0
    distinct: int = 0
    priced: int = 0
    rejected_nonfinite: int = 0
    degraded: bool = False
    degraded_reason: str = ""

    @property
    def improvement_us(self) -> float:
        """How much the best ordering beats the default (>= 0)."""
        return max(0.0, self.default.time_us - self.best.time_us)


def enumerate_pass_orders(
    names: Optional[Sequence[str]] = None,
) -> Iterator[Tuple[Transformation, ...]]:
    """Every dependency-feasible permutation of every subset of passes.

    ``names`` restricts (and seeds the instantiation of) the pass pool;
    default is every registered pass.  The empty pipeline is included —
    it is the "all optimizations off" baseline.
    """
    from .base import registered_passes

    if names is None:
        pool = [cls() for _, cls in sorted(registered_passes().items())]
    else:
        from .base import get_pass

        pool = [get_pass(name)() for name in names]
    for size in range(len(pool) + 1):
        for subset in combinations(pool, size):
            for order in permutations(subset):
                if feasible_order(list(order)):
                    yield order


def autotune_pass_order(
    analysis: KernelAnalysis,
    mapping: Mapping,
    device: GpuDevice,
    env: Optional[SizeEnv] = None,
    names: Optional[Sequence[str]] = None,
    keep_top: int = 10,
    budget: Optional[Budget] = None,
) -> PassOrderResult:
    """Price every feasible pass ordering/subset for one kernel.

    Each ordering runs the reified pipeline (all listed passes enabled)
    from a fresh :class:`PlanState`, then the cost model prices the
    resulting (mapping, LaunchPlan) pair.  Orderings whose final state
    digest coincides are priced once.  The default production ordering
    is always priced (even under an exhausted budget) so every delta has
    a baseline.
    """
    from ...gpusim.cost import estimate_kernel_cost

    if env is None:
        env = analysis.env
    if budget is not None:
        budget.start()

    def execute(order: Tuple[Transformation, ...]) -> PlanState:
        state = PlanState.initial(analysis, mapping, device)
        state, _ = run_pipeline([(p, True) for p in order], state)
        return state

    def price(state: PlanState) -> float:
        return estimate_kernel_cost(
            analysis, state.mapping, device, env, state.to_plan()
        ).total_us

    # The baseline: the production ordering, priced unconditionally.
    from .base import get_pass

    default_order = tuple(
        get_pass(name)() for name in DEFAULT_PASS_ORDER
    )
    default_state = execute(default_order)
    default_time = price(default_state)
    if not math.isfinite(default_time):
        raise SearchError(
            "default pass ordering priced non-finite; cost model poisoned"
        )
    default_result = OrderingResult(
        passes=tuple(p.name for p in default_order),
        time_us=default_time,
        plan_digest=default_state.digest(),
        delta_us=0.0,
        mapping=str(default_state.mapping),
    )

    enumerated = 0
    feasible = 0
    rejected_nonfinite = 0
    exhausted = False
    #: plan digest -> (representative ordering, state, extra count)
    distinct: Dict[str, Tuple[Tuple[str, ...], PlanState, int]] = {}
    for order in enumerate_pass_orders(names):
        enumerated += 1
        feasible += 1
        if budget is not None and not budget.spend():
            exhausted = True
            break
        state = execute(order)
        digest = state.digest()
        held = distinct.get(digest)
        if held is None:
            distinct[digest] = (tuple(p.name for p in order), state, 1)
        else:
            # Prefer the shortest spelling of an equivalent pipeline.
            names_t = tuple(p.name for p in order)
            rep, rep_state, count = held
            if len(names_t) < len(rep):
                rep = names_t
            distinct[digest] = (rep, rep_state, count + 1)

    priced: List[OrderingResult] = []
    for digest, (names_t, state, count) in distinct.items():
        time_us = (
            default_time
            if digest == default_result.plan_digest
            else price(state)
        )
        if not math.isfinite(time_us):
            rejected_nonfinite += 1
            continue
        priced.append(
            OrderingResult(
                passes=names_t,
                time_us=time_us,
                plan_digest=digest,
                delta_us=time_us - default_time,
                mapping=str(state.mapping),
                equivalent_orderings=count,
            )
        )

    if not priced:
        priced = [default_result]
    priced.sort(key=lambda r: (r.time_us, len(r.passes), r.passes))
    return PassOrderResult(
        best=priced[0],
        default=default_result,
        frontier=priced[:keep_top],
        enumerated=enumerated,
        feasible=feasible,
        distinct=len(distinct),
        priced=len(priced) + rejected_nonfinite,
        rejected_nonfinite=rejected_nonfinite,
        degraded=exhausted,
        degraded_reason=(
            f"pass-order budget exhausted after {feasible} of the "
            "enumerated orderings; best-so-far returned"
            if exhausted
            else ""
        ),
    )
