"""Recipes: the ordered, content-hashed record of one plan pipeline.

Every :func:`repro.optim.pipeline.build_plan_with_recipe` call emits a
:class:`KernelRecipe` — the serialized input mapping plus one
:class:`PassRecord` per pipeline step (name, params, applied-or-why-not,
pre/post state digests).  A whole compile's :class:`Recipe` bundles the
per-kernel recipes with the compile context (program, device, strategy,
flags, sizes, pipeline version), serializes as versioned JSON, and is
content-hashed with the same canonical-dict machinery as compile
digests, so the service artifact store can address recipes exactly like
artifacts.

Replay (:func:`replay_recipe`) re-executes a recipe pass-by-pass against
the source IR and checks every recorded digest: a tampered recipe — or a
pipeline whose behavior drifted without a
:data:`~repro.ir.serialize.PIPELINE_VERSION` bump — fails with a
:class:`~repro.errors.RecipeReplayError` naming the diverging pass.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ...analysis.mapping import Mapping
from ...errors import RecipeError, RecipeReplayError
from ...gpusim.cost import LaunchPlan
from ...gpusim.device import DEVICES, GpuDevice
from ...ir.patterns import Program
from .base import PlanState, Transformation, run_pipeline

#: Bumped on any incompatible recipe-schema change; loaders check it.
RECIPE_VERSION = 1


@dataclass
class PassRecord:
    """One pipeline step: what ran (or why it did not) and the digests."""

    name: str
    params: Dict[str, Any] = field(default_factory=dict)
    applied: bool = False
    #: "" when applied; "disabled", "not-applicable", or
    #: "requires:<deps>" when skipped.
    skip_reason: str = ""
    pre_digest: str = ""
    post_digest: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "params": dict(self.params),
            "applied": self.applied,
            "skip_reason": self.skip_reason,
            "pre_digest": self.pre_digest,
            "post_digest": self.post_digest,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PassRecord":
        return cls(
            name=data["name"],
            params=dict(data.get("params") or {}),
            applied=bool(data.get("applied", False)),
            skip_reason=data.get("skip_reason", ""),
            pre_digest=data.get("pre_digest", ""),
            post_digest=data.get("post_digest", ""),
        )


@dataclass
class KernelRecipe:
    """The recorded pipeline of one kernel's plan construction."""

    index: int
    #: The *input* mapping the pipeline started from (serialized).
    mapping: Dict[str, Any]
    passes: List[PassRecord] = field(default_factory=list)
    #: State digest after the last step (equals the input-state digest
    #: when every pass was skipped).
    plan_digest: str = ""
    #: True when the optimizer degraded and this kernel's plan was
    #: substituted rather than built by the pipeline (not replayable).
    degraded: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "mapping": self.mapping,
            "passes": [record.to_dict() for record in self.passes],
            "plan_digest": self.plan_digest,
            "degraded": self.degraded,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "KernelRecipe":
        return cls(
            index=int(data.get("index", 0)),
            mapping=dict(data.get("mapping") or {}),
            passes=[
                PassRecord.from_dict(record)
                for record in data.get("passes", [])
            ],
            plan_digest=data.get("plan_digest", ""),
            degraded=bool(data.get("degraded", False)),
        )

    def applied_names(self) -> List[str]:
        return [record.name for record in self.passes if record.applied]


@dataclass
class Recipe:
    """Versioned, content-addressable record of one compile's passes."""

    program: str
    device: str
    strategy: str
    sizes: Dict[str, int] = field(default_factory=dict)
    flags: Dict[str, bool] = field(default_factory=dict)
    pipeline_version: int = 0
    kernels: List[KernelRecipe] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": RECIPE_VERSION,
            "kind": "recipe",
            "program": self.program,
            "device": self.device,
            "strategy": self.strategy,
            "sizes": {k: int(v) for k, v in self.sizes.items()},
            "flags": dict(self.flags),
            "pipeline_version": self.pipeline_version,
            "kernels": [kernel.to_dict() for kernel in self.kernels],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Recipe":
        version = data.get("version")
        if version != RECIPE_VERSION:
            raise RecipeError(
                f"recipe version {version!r} is not supported "
                f"(expected {RECIPE_VERSION})"
            )
        return cls(
            program=data.get("program", ""),
            device=data.get("device", ""),
            strategy=data.get("strategy", ""),
            sizes={
                k: int(v) for k, v in (data.get("sizes") or {}).items()
            },
            flags=dict(data.get("flags") or {}),
            pipeline_version=int(data.get("pipeline_version", 0)),
            kernels=[
                KernelRecipe.from_dict(kernel)
                for kernel in data.get("kernels", [])
            ],
        )

    def content_digest(self) -> str:
        """SHA-256 over the canonical JSON encoding — the store address."""
        from ...ir.serialize import canonical_json

        payload = canonical_json(self.to_json())
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def resolve_device(self) -> GpuDevice:
        device = DEVICES.get(self.device)
        if device is None:
            known = ", ".join(sorted(DEVICES))
            raise RecipeError(
                f"recipe names unknown device {self.device!r}; known: "
                f"{known}"
            )
        return device

    def write(self, path: str) -> str:
        import os

        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


def load_recipe(path: str) -> Recipe:
    with open(path) as handle:
        return Recipe.from_json(json.load(handle))


def recipe_diff(a: Recipe, b: Recipe) -> List[str]:
    """Human-readable differences between two recipes (empty = identical
    content digests)."""
    lines: List[str] = []
    if a.content_digest() == b.content_digest():
        return lines
    for attr in ("program", "device", "strategy", "pipeline_version"):
        va, vb = getattr(a, attr), getattr(b, attr)
        if va != vb:
            lines.append(f"{attr}: {va!r} != {vb!r}")
    if a.sizes != b.sizes:
        lines.append(f"sizes: {a.sizes} != {b.sizes}")
    if a.flags != b.flags:
        lines.append(f"flags: {a.flags} != {b.flags}")
    if len(a.kernels) != len(b.kernels):
        lines.append(
            f"kernel count: {len(a.kernels)} != {len(b.kernels)}"
        )
    for ka, kb in zip(a.kernels, b.kernels):
        prefix = f"kernel {ka.index}"
        if ka.mapping != kb.mapping:
            lines.append(f"{prefix}: input mappings differ")
        names_a = [record.name for record in ka.passes]
        names_b = [record.name for record in kb.passes]
        if names_a != names_b:
            lines.append(
                f"{prefix}: pass order {names_a} != {names_b}"
            )
            continue
        for ra, rb in zip(ka.passes, kb.passes):
            if ra.applied != rb.applied or ra.skip_reason != rb.skip_reason:
                lines.append(
                    f"{prefix}/{ra.name}: "
                    f"{_status(ra)} != {_status(rb)}"
                )
            elif ra.params != rb.params:
                lines.append(
                    f"{prefix}/{ra.name}: params {ra.params} != {rb.params}"
                )
            elif (
                ra.pre_digest != rb.pre_digest
                or ra.post_digest != rb.post_digest
            ):
                lines.append(f"{prefix}/{ra.name}: state digests differ")
        if ka.plan_digest != kb.plan_digest:
            lines.append(f"{prefix}: final plan digests differ")
    return lines


def _status(record: PassRecord) -> str:
    return "applied" if record.applied else f"skipped({record.skip_reason})"


# -- replay -----------------------------------------------------------------


def replay_kernel_recipe(
    analysis,
    kernel: KernelRecipe,
    device: GpuDevice,
) -> PlanState:
    """Re-execute one kernel's recorded pipeline, checking every digest.

    Raises :class:`RecipeReplayError` at the first diverging step — a
    pass that applies when the record says it skipped (or vice versa),
    or a pre/post state digest that no longer matches.
    """
    if kernel.degraded:
        raise RecipeReplayError(
            f"kernel {kernel.index}: recipe records a degraded compile; "
            "the substituted plan was not built by the pass pipeline and "
            "cannot be replayed"
        )
    try:
        mapping = Mapping.from_dict(kernel.mapping)
    except (KeyError, TypeError, ValueError) as exc:
        raise RecipeError(
            f"kernel {kernel.index}: undecodable recipe mapping ({exc})"
        )
    passes = [
        (
            Transformation.from_json(
                {"name": record.name, "params": record.params}
            ),
            record.skip_reason != "disabled",
        )
        for record in kernel.passes
    ]
    state = PlanState.initial(analysis, mapping, device)
    state, steps = run_pipeline(passes, state)
    for record, step in zip(kernel.passes, steps):
        if record.applied != step.applied:
            raise RecipeReplayError(
                f"kernel {kernel.index}, pass {record.name!r}: recorded "
                f"{_status(record)} but replay "
                f"{'applied' if step.applied else 'skipped'} it"
                + (f" ({step.skip_reason})" if step.skip_reason else "")
            )
        if record.pre_digest and record.pre_digest != step.pre_digest:
            raise RecipeReplayError(
                f"kernel {kernel.index}, pass {record.name!r}: pre-state "
                f"digest mismatch (recorded {record.pre_digest[:12]}…, "
                f"replayed {step.pre_digest[:12]}…) — the recipe was "
                "tampered with or the pipeline changed behavior"
            )
        if record.post_digest and record.post_digest != step.post_digest:
            raise RecipeReplayError(
                f"kernel {kernel.index}, pass {record.name!r}: post-state "
                f"digest mismatch (recorded {record.post_digest[:12]}…, "
                f"replayed {step.post_digest[:12]}…) — the recipe was "
                "tampered with or the pipeline changed behavior"
            )
    if kernel.plan_digest and kernel.plan_digest != state.digest():
        raise RecipeReplayError(
            f"kernel {kernel.index}: final plan digest mismatch "
            f"(recorded {kernel.plan_digest[:12]}…, replayed "
            f"{state.digest()[:12]}…)"
        )
    return state


def replay_recipe(
    program: Program,
    recipe: Recipe,
    device: Optional[GpuDevice] = None,
) -> List[LaunchPlan]:
    """Re-execute a whole recipe against the source IR.

    Returns the per-kernel :class:`LaunchPlan` the recorded pipeline
    reproduces; any divergence raises :class:`RecipeReplayError`.
    """
    from ...analysis.analyzer import analyze_program

    if device is None:
        device = recipe.resolve_device()
    analysis = analyze_program(program, **recipe.sizes)
    if len(analysis.kernels) != len(recipe.kernels):
        raise RecipeReplayError(
            f"program has {len(analysis.kernels)} kernel(s) but the "
            f"recipe records {len(recipe.kernels)}"
        )
    plans: List[LaunchPlan] = []
    for ka, kernel in zip(analysis.kernels, recipe.kernels):
        plans.append(replay_kernel_recipe(ka, kernel, device).to_plan())
    return plans


def verify_recipe(
    program: Program,
    recipe: Recipe,
    device: Optional[GpuDevice] = None,
) -> Dict[str, Any]:
    """Replay a recipe and assert byte-identity against a fresh compile.

    The fresh compile runs the full session pipeline under the recipe's
    recorded strategy/flags/sizes; the replayed LaunchPlans must equal
    the fresh decisions' plans exactly, and the generated CUDA must be
    byte-identical.  Degraded kernels are skipped (their plans were
    substituted, not built).  Returns a summary dict; divergence raises
    :class:`RecipeReplayError`.
    """
    from ...runtime.session import GpuSession
    from ..pipeline import OptimizationFlags

    if device is None:
        device = recipe.resolve_device()
    flags = OptimizationFlags(
        prealloc=bool(recipe.flags.get("prealloc", True)),
        layout_opt=bool(recipe.flags.get("layout_opt", True)),
        shared_memory=bool(recipe.flags.get("shared_memory", True)),
    )
    session = GpuSession(
        device=device, strategy=recipe.strategy, flags=flags
    )
    compiled = session.compile(program, **recipe.sizes)
    if len(compiled.decisions) != len(recipe.kernels):
        raise RecipeReplayError(
            f"fresh compile produced {len(compiled.decisions)} kernel(s) "
            f"but the recipe records {len(recipe.kernels)}"
        )
    replayed = 0
    skipped = 0
    for decision, kernel in zip(compiled.decisions, recipe.kernels):
        if kernel.degraded:
            skipped += 1
            continue
        state = replay_kernel_recipe(
            decision.analysis, kernel, device
        )
        if state.to_plan() != decision.plan:
            raise RecipeReplayError(
                f"kernel {kernel.index}: replayed LaunchPlan differs "
                "from the fresh compile's plan"
            )
        replayed += 1
    fresh = session.compile(program, **recipe.sizes)
    if fresh.cuda_source != compiled.cuda_source:
        raise RecipeReplayError(
            "fresh compiles disagree on CUDA output — the pipeline is "
            "nondeterministic"
        )
    fresh_recipe = build_compile_recipe(compiled)
    return {
        "ok": True,
        "kernels": len(recipe.kernels),
        "replayed": replayed,
        "skipped_degraded": skipped,
        "recipe_digest": recipe.content_digest(),
        "fresh_recipe_digest": fresh_recipe.content_digest(),
        "cuda_bytes": len(compiled.cuda_source),
    }


def build_compile_recipe(compiled) -> Recipe:
    """Assemble the program-level :class:`Recipe` of a compiled program.

    Reads the per-kernel :class:`KernelRecipe` objects the session
    attached at compile time; a kernel whose optimizer degraded gets a
    pass-free, ``degraded`` marker entry.
    """
    from ...ir.serialize import PIPELINE_VERSION

    kernels: List[KernelRecipe] = []
    for index, decision in enumerate(compiled.decisions):
        kernel = getattr(decision, "recipe", None)
        if kernel is None:
            kernel = KernelRecipe(
                index=index,
                mapping=decision.mapping.to_dict(),
                degraded=True,
            )
        else:
            kernel.index = index
        kernels.append(kernel)
    return Recipe(
        program=compiled.program.name,
        device=compiled.device.name,
        strategy=str(compiled.strategy),
        sizes=dict(compiled.size_hints),
        flags={
            "prealloc": compiled.flags.prealloc,
            "layout_opt": compiled.flags.layout_opt,
            "shared_memory": compiled.flags.shared_memory,
        },
        pipeline_version=PIPELINE_VERSION,
        kernels=kernels,
    )
