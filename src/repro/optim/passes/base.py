"""Reified transformation passes: contract, state, and registry.

The optimization pipeline used to be an opaque, hard-coded sequence
inside :func:`repro.optim.pipeline.build_plan`; here each rewrite is a
first-class :class:`Transformation` object (the SDFG idiom) with an
applicability predicate, a pure ``apply`` over an immutable
:class:`PlanState`, and a stable JSON encoding — which is what makes a
compile explainable (per-pass spans and counters), diffable (pre/post
state digests), replayable (``repro recipe replay``), and searchable
(pass-ordering autotune, :mod:`.tune`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    ClassVar,
    Dict,
    FrozenSet,
    List,
    Optional,
    Tuple,
    Type,
)

from ...analysis.analyzer import KernelAnalysis
from ...analysis.mapping import Mapping
from ...errors import RecipeError
from ...gpusim.cost import LaunchPlan
from ...gpusim.device import GpuDevice


@dataclass(frozen=True)
class PlanState:
    """Everything a pass may read or rewrite, as an immutable value.

    The *inputs* (analysis, device) are carried for convenience; the
    *decisions* — the mapping plus the :class:`LaunchPlan` fields — are
    what passes transform.  :meth:`digest` hashes only the decisions, so
    two pipelines that reach the same decisions by different routes
    digest identically (and a replayed pass can be checked against the
    recorded digest without re-serializing the kernel IR).
    """

    analysis: KernelAnalysis
    mapping: Mapping
    device: GpuDevice
    prealloc: bool = False
    layout_strides: Tuple[Tuple[str, Tuple[int, ...]], ...] = ()
    smem_prefetch: FrozenSet[str] = frozenset()
    extra_shared_bytes: int = 0

    @classmethod
    def initial(
        cls,
        analysis: KernelAnalysis,
        mapping: Mapping,
        device: GpuDevice,
    ) -> "PlanState":
        return cls(analysis=analysis, mapping=mapping, device=device)

    def evolve(self, **changes: Any) -> "PlanState":
        return replace(self, **changes)

    def decisions_dict(self) -> Dict[str, Any]:
        """The JSON-able decision payload the state digest covers."""
        return {
            "mapping": self.mapping.to_dict(),
            "prealloc": self.prealloc,
            "layout_strides": [
                [key, list(strides)] for key, strides in self.layout_strides
            ],
            "smem_prefetch": sorted(self.smem_prefetch),
            "extra_shared_bytes": self.extra_shared_bytes,
        }

    def digest(self) -> str:
        """SHA-256 over the canonical encoding of the decisions."""
        from ...ir.serialize import canonical_json

        payload = canonical_json(self.decisions_dict())
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_plan(self) -> LaunchPlan:
        """The :class:`LaunchPlan` these decisions denote."""
        return LaunchPlan(
            prealloc=self.prealloc,
            layout_strides=self.layout_strides,
            smem_prefetch=self.smem_prefetch,
            extra_shared_bytes=self.extra_shared_bytes,
        )


class Transformation:
    """One reified optimization pass.

    Subclasses define a unique ``name``, an optional ``requires`` tuple
    naming passes that must have been *applied earlier* in the same
    pipeline (an ordering dependency, enforced by the runner and by the
    pass-ordering tuner), and the three behavior hooks:

    * :meth:`can_be_applied` — a pure structural predicate on the inputs;
    * :meth:`apply` — ``PlanState -> PlanState``, total and deterministic
      for a given state (this is what makes recipes replayable);
    * ``params`` — the JSON-able constructor arguments, round-tripped by
      :meth:`to_json` / :meth:`from_json`.
    """

    #: Stable registry key; also the span name suffix and recipe entry.
    name: ClassVar[str] = ""
    #: Passes that must have been applied earlier in the pipeline.
    requires: ClassVar[Tuple[str, ...]] = ()

    def __init__(self, **params: Any) -> None:
        if params:
            raise RecipeError(
                f"pass {self.name!r} takes no parameters, got "
                f"{sorted(params)}"
            )

    @property
    def params(self) -> Dict[str, Any]:
        """JSON-able constructor parameters (empty by default)."""
        return {}

    def can_be_applied(
        self,
        analysis: KernelAnalysis,
        mapping: Mapping,
        device: GpuDevice,
    ) -> bool:
        """Whether the pass is structurally applicable to this kernel."""
        raise NotImplementedError

    def apply(self, state: PlanState) -> PlanState:
        """Apply the transformation; must be pure and deterministic."""
        raise NotImplementedError

    def to_json(self) -> Dict[str, Any]:
        return {"name": self.name, "params": self.params}

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Transformation":
        """Rebuild a pass (of any registered subclass) from its JSON."""
        name = data.get("name")
        pass_cls = get_pass(name)
        params = data.get("params") or {}
        if not isinstance(params, dict):
            raise RecipeError(
                f"pass {name!r}: params must be an object, got "
                f"{type(params).__name__}"
            )
        try:
            return pass_cls(**params)
        except TypeError as exc:
            raise RecipeError(
                f"pass {name!r}: undecodable params {params!r} ({exc})"
            )

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        args = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{type(self).__name__}({args})"


# -- registry ---------------------------------------------------------------

_REGISTRY: Dict[str, Type[Transformation]] = {}


def register_pass(cls: Type[Transformation]) -> Type[Transformation]:
    """Class decorator adding a pass to the global registry.

    Names are the recipe/CLI vocabulary, so re-registering a name with a
    different class is an error (same class twice is an idempotent
    no-op, tolerating module re-imports).
    """
    if not cls.name:
        raise RecipeError(f"pass class {cls.__name__} has no name")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise RecipeError(
            f"pass name {cls.name!r} already registered to "
            f"{existing.__name__}"
        )
    _REGISTRY[cls.name] = cls
    return cls


def get_pass(name: Any) -> Type[Transformation]:
    """The registered pass class for ``name`` (RecipeError if unknown)."""
    _ensure_library()
    cls = _REGISTRY.get(name)
    if cls is None:
        known = ", ".join(sorted(_REGISTRY))
        raise RecipeError(f"unknown pass {name!r}; registered: {known}")
    return cls


def registered_passes() -> Dict[str, Type[Transformation]]:
    """Name -> class for every registered pass (copy; sorted by name)."""
    _ensure_library()
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


def _ensure_library() -> None:
    # The built-in passes live in .library; importing it populates the
    # registry.  Deferred so base <-> library never import-cycle.
    from . import library  # noqa: F401


@dataclass
class PassApplication:
    """One runner step: the pass plus whether/why it ran (pre-recipe)."""

    transformation: Transformation
    applied: bool
    skip_reason: str = ""
    pre_digest: str = ""
    post_digest: str = ""


def run_pipeline(
    passes: List[Tuple[Transformation, bool]],
    state: PlanState,
) -> Tuple[PlanState, List[PassApplication]]:
    """Run an ordered pass list over ``state``, recording each step.

    ``passes`` pairs each transformation with an *enabled* bit (a
    disabled pass is recorded as skipped — the recipe keeps the full
    picture of what the pipeline considered).  Ordering dependencies
    (``requires``) and :meth:`Transformation.can_be_applied` are checked
    here, once, so every caller — the default pipeline, replay, and the
    ordering tuner — shares one semantics.
    """
    from ...observability import get_metrics, get_tracer

    tracer = get_tracer()
    metrics = get_metrics()
    applied_names: set = set()
    steps: List[PassApplication] = []
    for transformation, enabled in passes:
        name = transformation.name
        pre = state.digest()
        skip_reason = ""
        if not enabled:
            skip_reason = "disabled"
        else:
            missing = [
                dep for dep in transformation.requires
                if dep not in applied_names
            ]
            if missing:
                skip_reason = "requires:" + ",".join(missing)
            elif not transformation.can_be_applied(
                state.analysis, state.mapping, state.device
            ):
                skip_reason = "not-applicable"
        if skip_reason:
            if metrics.enabled:
                metrics.counter("optimize.pass.skipped").inc()
                metrics.counter(f"optimize.pass.skipped.{name}").inc()
            steps.append(
                PassApplication(
                    transformation=transformation,
                    applied=False,
                    skip_reason=skip_reason,
                    pre_digest=pre,
                    post_digest=pre,
                )
            )
            continue
        with tracer.span(f"pass.{name}"):
            state = transformation.apply(state)
        applied_names.add(name)
        if metrics.enabled:
            metrics.counter("optimize.pass.applied").inc()
            metrics.counter(f"optimize.pass.applied.{name}").inc()
        steps.append(
            PassApplication(
                transformation=transformation,
                applied=True,
                pre_digest=pre,
                post_digest=state.digest(),
            )
        )
    return state, steps


def feasible_order(passes: List[Transformation]) -> bool:
    """Whether every pass's ``requires`` precede it in ``passes``.

    The ordering tuner enumerates permutations/subsets; this is the
    cheap structural prefilter that rejects infeasible sequences before
    any of them is priced.
    """
    seen: set = set()
    for transformation in passes:
        if any(dep not in seen for dep in transformation.requires):
            return False
        seen.add(transformation.name)
    return True
