"""Reified, replayable transformation passes (the SDFG idiom).

Public surface:

* :class:`Transformation` / :class:`PlanState` / the registry
  (:mod:`.base`) — the pass contract;
* the built-in passes (:mod:`.library`) — prealloc, layout,
  shared_memory, control_dop;
* :class:`Recipe` and replay (:mod:`.recipe`) — the content-hashed
  record every ``build_plan`` emits;
* pass-ordering autotune (:mod:`.tune`).
"""

from .base import (  # noqa: F401
    PassApplication,
    PlanState,
    Transformation,
    feasible_order,
    get_pass,
    register_pass,
    registered_passes,
    run_pipeline,
)
from .library import (  # noqa: F401
    ControlDopPass,
    LayoutPass,
    PreallocPass,
    SharedMemoryPass,
)
from .recipe import (  # noqa: F401
    RECIPE_VERSION,
    KernelRecipe,
    PassRecord,
    Recipe,
    build_compile_recipe,
    load_recipe,
    recipe_diff,
    replay_kernel_recipe,
    replay_recipe,
    verify_recipe,
)
from .tune import (  # noqa: F401
    DEFAULT_PASS_ORDER,
    OrderingResult,
    PassOrderResult,
    autotune_pass_order,
    enumerate_pass_orders,
)

__all__ = [
    "DEFAULT_PASS_ORDER",
    "RECIPE_VERSION",
    "ControlDopPass",
    "KernelRecipe",
    "LayoutPass",
    "OrderingResult",
    "PassApplication",
    "PassOrderResult",
    "PassRecord",
    "PlanState",
    "PreallocPass",
    "Recipe",
    "SharedMemoryPass",
    "Transformation",
    "autotune_pass_order",
    "build_compile_recipe",
    "enumerate_pass_orders",
    "feasible_order",
    "get_pass",
    "load_recipe",
    "recipe_diff",
    "register_pass",
    "registered_passes",
    "replay_kernel_recipe",
    "replay_recipe",
    "run_pipeline",
    "verify_recipe",
]
