"""The built-in transformation passes.

Each of the paper's mapping-coupled rewrites, reified:

* :class:`PreallocPass` — Section V-A preallocation with canonical
  row-major layouts;
* :class:`LayoutPass` — the mapping-directed physical layout refinement
  of Figure 11 (requires prealloc: layouts only exist for preallocated
  buffers);
* :class:`SharedMemoryPass` — Section V-B shared-memory prefetching;
* :class:`ControlDopPass` — procedure ControlDOP of Algorithm 1.

The default :func:`repro.optim.pipeline.build_plan` pipeline runs
prealloc -> layout -> shared_memory (exactly the legacy fused sequence,
byte-for-byte); ControlDOP stays a launch-time rewrite
(:func:`repro.runtime.launcher.adjust_at_launch`) but participates in
the pass-ordering search, where pulling it into the plan pipeline is a
legitimate — and costed — alternative.
"""

from __future__ import annotations

from typing import Any, ClassVar, Dict, Optional, Tuple

from ...analysis.analyzer import KernelAnalysis
from ...analysis.dop import DopWindow, control_dop
from ...analysis.mapping import Mapping
from ...gpusim.device import GpuDevice
from ..prealloc import plan_preallocations
from ..shared_memory import plan_shared_memory
from .base import PlanState, Transformation, register_pass


@register_pass
class PreallocPass(Transformation):
    """Preallocate flexible inner allocations (canonical row-major).

    Always applicable: when the kernel has no flexible arrays the pass
    still marks the plan preallocated with an empty stride table, which
    is the legacy pipeline's exact behavior under ``flags.prealloc``.
    """

    name: ClassVar[str] = "prealloc"

    def can_be_applied(
        self, analysis: KernelAnalysis, mapping: Mapping, device: GpuDevice
    ) -> bool:
        return True

    def apply(self, state: PlanState) -> PlanState:
        decisions = plan_preallocations(
            state.analysis, state.mapping, optimize_layout=False
        )
        return state.evolve(
            prealloc=True,
            layout_strides=tuple(
                (d.array_key, d.layout.strides) for d in decisions
            ),
        )


@register_pass
class LayoutPass(Transformation):
    """Refine preallocated buffers to the coalescing-optimal axis order.

    Layout is a property of a preallocated buffer, so the pass requires
    prealloc to have run earlier; the decision depends only on the
    access shapes and the *current* mapping, so re-deriving the full
    stride table from scratch is equivalent to the legacy fused
    ``plan_preallocations(optimize_layout=True)`` call.
    """

    name: ClassVar[str] = "layout"
    requires: ClassVar[Tuple[str, ...]] = ("prealloc",)

    def can_be_applied(
        self, analysis: KernelAnalysis, mapping: Mapping, device: GpuDevice
    ) -> bool:
        return bool(analysis.accesses.flexible_arrays())

    def apply(self, state: PlanState) -> PlanState:
        decisions = plan_preallocations(
            state.analysis, state.mapping, optimize_layout=True
        )
        return state.evolve(
            layout_strides=tuple(
                (d.array_key, d.layout.strides) for d in decisions
            ),
        )


@register_pass
class SharedMemoryPass(Transformation):
    """Stage outer-level reads through shared memory (Section V-B).

    Inapplicable to depth-1 nests — with no outer level there is nothing
    to stage, and the legacy planner provably selected nothing there.
    """

    name: ClassVar[str] = "shared_memory"

    def can_be_applied(
        self, analysis: KernelAnalysis, mapping: Mapping, device: GpuDevice
    ) -> bool:
        return analysis.nest.depth >= 2

    def apply(self, state: PlanState) -> PlanState:
        prefetch = plan_shared_memory(
            state.analysis,
            state.mapping,
            shared_budget_bytes=state.device.shared_mem_per_sm_bytes,
        )
        return state.evolve(
            smem_prefetch=prefetch.array_keys,
            extra_shared_bytes=prefetch.shared_bytes_per_block,
        )


@register_pass
class ControlDopPass(Transformation):
    """Clamp the mapping's DOP into the device window (Algorithm 1).

    Unlike the plan-shaping passes this one rewrites the *mapping*
    (Span(all) -> Split(k) below the window, Span(1) -> Span(n) above),
    so its position in a pipeline matters: layout and shared-memory
    decisions taken before it see the unclamped mapping.  An explicit
    window overrides the device-derived one (serialized in ``params`` so
    a recipe replays against the same window it recorded).
    """

    name: ClassVar[str] = "control_dop"

    def __init__(
        self,
        min_dop: Optional[int] = None,
        max_dop: Optional[int] = None,
    ) -> None:
        if (min_dop is None) != (max_dop is None):
            from ...errors import RecipeError

            raise RecipeError(
                "control_dop takes both min_dop and max_dop, or neither"
            )
        self.min_dop = None if min_dop is None else int(min_dop)
        self.max_dop = None if max_dop is None else int(max_dop)

    @property
    def params(self) -> Dict[str, Any]:
        if self.min_dop is None:
            return {}
        return {"min_dop": self.min_dop, "max_dop": self.max_dop}

    def window(self, device: Optional[GpuDevice]) -> DopWindow:
        if self.min_dop is not None:
            return DopWindow(min_dop=self.min_dop, max_dop=self.max_dop)
        if device is None:
            from ...errors import RecipeError

            raise RecipeError(
                "control_dop needs a device (or explicit min_dop/max_dop) "
                "to derive its DOP window"
            )
        return device.dop_window()

    def can_be_applied(
        self, analysis: KernelAnalysis, mapping: Mapping, device: GpuDevice
    ) -> bool:
        return any(lm.parallel for lm in mapping.levels)

    def adjust(
        self,
        mapping: Mapping,
        sizes,
        splittable_levels,
        device: Optional[GpuDevice] = None,
    ) -> Mapping:
        """The raw DOP rewrite, usable outside a plan pipeline.

        :func:`repro.runtime.launcher.adjust_at_launch` re-tunes against
        runtime sizes through this same entry point, so compile-time and
        launch-time ControlDOP cannot drift apart.
        """
        return control_dop(
            mapping, sizes, self.window(device), splittable_levels
        )

    def apply(self, state: PlanState) -> PlanState:
        analysis = state.analysis
        adjusted = self.adjust(
            state.mapping,
            analysis.level_sizes(),
            analysis.constraints.span_all_levels(),
            state.device,
        )
        return state.evolve(mapping=adjusted)
