"""Mapping-directed physical layout selection (Section V-A, Figure 11).

Preallocated intermediates are logically indexed by the enclosing pattern
indices plus their own; because the buffer is private to the kernel, the
compiler may pick *any* physical axis order.  The optimal order makes the
axis whose index rides logical dimension x the unit-stride axis, so the
same logical accesses coalesce regardless of which dimension the mapping
assigned to which level — precisely why the analysis can ignore flexible
arrays when scoring (their constraints are satisfiable after the fact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis.mapping import Mapping


@dataclass(frozen=True)
class LayoutDecision:
    """Chosen physical layout for one flexible array."""

    array_key: str
    #: Logical extents per axis (leading axes = enclosing pattern levels).
    shape: Tuple[int, ...]
    #: Element stride per *logical* axis under the chosen physical order.
    strides: Tuple[int, ...]
    #: The physical axis order (logical axis indices, outermost first).
    axis_order: Tuple[int, ...]

    @property
    def total_elems(self) -> int:
        total = 1
        for extent in self.shape:
            total *= max(1, extent)
        return total


def row_major(shape: Sequence[int]) -> Tuple[int, ...]:
    """Canonical row-major strides (the unoptimized fixed layout)."""
    strides: List[int] = []
    acc = 1
    for extent in reversed(shape):
        strides.append(acc)
        acc *= max(1, extent)
    strides.reverse()
    return tuple(strides)


def choose_layout(
    array_key: str,
    shape: Sequence[int],
    axis_levels: Sequence[Optional[int]],
    mapping: Mapping,
) -> LayoutDecision:
    """Pick the physical axis order that coalesces accesses under ``mapping``.

    ``axis_levels[a]`` is the nest level whose index addresses logical axis
    ``a`` (None when unknown).  Axes are ordered by the logical dimension of
    their level: the dim-x axis becomes innermost (unit stride), dim-y next,
    and so on; sequential or unknown axes stay outermost in their original
    relative order.
    """
    shape = tuple(int(s) for s in shape)

    def sort_key(axis: int) -> Tuple[int, int]:
        level = axis_levels[axis] if axis < len(axis_levels) else None
        if level is None or level >= mapping.num_levels:
            # Unknown/sequential axes stay outermost (slowest varying).
            return (999, -axis)
        lm = mapping.level(level)
        if not lm.parallel:
            return (999, -axis)
        # Higher dim value = slower varying = more outer.
        return (int(lm.dim), -axis)

    # Outermost first: sort descending by dim value.
    axis_order = tuple(
        sorted(range(len(shape)), key=sort_key, reverse=True)
    )
    physical_shape = [shape[a] for a in axis_order]
    physical_strides = row_major(physical_shape)
    strides = [0] * len(shape)
    for pos, axis in enumerate(axis_order):
        strides[axis] = physical_strides[pos]
    return LayoutDecision(
        array_key=array_key,
        shape=shape,
        strides=tuple(strides),
        axis_order=axis_order,
    )
