"""Shared-memory prefetching for imperfectly nested patterns (Section V-B).

When memory accesses exist outside the innermost pattern, a multidimensional
kernel would (a) leave most threads idle while computing the outer level and
(b) possibly access that data uncoalesced.  The optimization has dim-x
threads cooperatively load a contiguous chunk of the outer-level data into
shared memory, fixing both problems at once.

The pass selects which arrays to stage: global (non-flexible) arrays read at
a non-innermost level, small enough per-block to fit the shared-memory
budget alongside any reduction scratch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Set, Tuple

from ..analysis.analyzer import KernelAnalysis
from ..analysis.mapping import Mapping


@dataclass(frozen=True)
class PrefetchDecision:
    """Arrays staged through shared memory, with the per-block budget."""

    array_keys: FrozenSet[str]
    shared_bytes_per_block: int


def plan_shared_memory(
    analysis: KernelAnalysis,
    mapping: Mapping,
    shared_budget_bytes: int = 48 * 1024,
    reserve_bytes: int = 8 * 1024,
) -> PrefetchDecision:
    """Select outer-level reads to stage through shared memory."""
    depth = analysis.nest.depth
    candidates: List[Tuple[str, int]] = []
    seen: Set[str] = set()
    for site in analysis.accesses.sites:
        if site.kind != "read" or site.synthetic or site.flexible_layout:
            continue
        if site.level >= depth - 1:
            continue  # innermost accesses don't benefit
        if site.array_key in seen:
            continue
        seen.add(site.array_key)
        # Chunk per block: one element per thread covering the outer level.
        chunk = mapping.threads_per_block() * site.elem_bytes
        candidates.append((site.array_key, chunk))

    budget = max(0, shared_budget_bytes - reserve_bytes)
    chosen: Set[str] = set()
    used = 0
    for key, chunk in sorted(candidates, key=lambda kv: kv[1]):
        if used + chunk <= budget:
            chosen.add(key)
            used += chunk
    return PrefetchDecision(
        array_keys=frozenset(chosen), shared_bytes_per_block=used
    )
