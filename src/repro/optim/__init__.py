"""Mapping-coupled compiler optimizations (Section V of the paper).

The rewrites are reified transformation passes (:mod:`.passes`); the
legacy functional surface (``build_plan``, the per-optimization
planners) remains the stable API.
"""

from .layout import LayoutDecision, choose_layout, row_major  # noqa: F401
from .passes import (  # noqa: F401
    KernelRecipe,
    PassRecord,
    PlanState,
    Recipe,
    Transformation,
    build_compile_recipe,
    registered_passes,
    replay_recipe,
    verify_recipe,
)
from .pipeline import (  # noqa: F401
    OptimizationFlags,
    build_plan,
    build_plan_with_recipe,
    default_pipeline,
)
from .prealloc import PreallocDecision, plan_preallocations  # noqa: F401
from .shared_memory import PrefetchDecision, plan_shared_memory  # noqa: F401
