"""Mapping-coupled compiler optimizations (Section V of the paper)."""

from .layout import LayoutDecision, choose_layout, row_major  # noqa: F401
from .pipeline import OptimizationFlags, build_plan  # noqa: F401
from .prealloc import PreallocDecision, plan_preallocations  # noqa: F401
from .shared_memory import PrefetchDecision, plan_shared_memory  # noqa: F401
