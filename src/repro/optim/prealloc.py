"""Preallocation of inner-pattern dynamic allocations (Section V-A).

When the allocation size is uniform across outer iterations, the compiler
allocates one buffer for the whole outer domain before launch and rewrites
per-iteration accesses to an offset/stride region — eliminating the
per-thread device mallocs whose serialized cost Figure 16 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.access import AccessSite
from ..analysis.analyzer import KernelAnalysis
from ..analysis.mapping import Mapping
from .layout import LayoutDecision, choose_layout, row_major


@dataclass(frozen=True)
class PreallocDecision:
    """One preallocated buffer and its chosen layout."""

    array_key: str
    elem_bytes: int
    layout: LayoutDecision

    @property
    def total_bytes(self) -> int:
        return self.layout.total_elems * self.elem_bytes


def _axis_levels(site: AccessSite) -> List[Optional[int]]:
    """Nest level addressing each logical axis, from the access's forms."""
    name_to_level = {name: lvl for lvl, name in enumerate(site.index_names)}
    levels: List[Optional[int]] = []
    for form in site.axis_forms:
        if len(form.coeffs) == 1 and not form.opaque_deps and not form.has_random:
            name, coeff = form.coeffs[0]
            levels.append(name_to_level.get(name) if coeff == 1.0 else None)
        else:
            levels.append(None)
    return levels


def plan_preallocations(
    analysis: KernelAnalysis,
    mapping: Mapping,
    optimize_layout: bool = True,
) -> List[PreallocDecision]:
    """Choose a preallocated buffer (and layout) per flexible array.

    With ``optimize_layout=False`` the canonical row-major layout is kept —
    the "prealloc without layout opt" configuration of Figure 16.
    """
    decisions: List[PreallocDecision] = []
    for key in analysis.accesses.flexible_arrays():
        sites = analysis.accesses.for_array(key)
        # The synthetic write site carries the full physical rank.
        best = max(sites, key=lambda s: len(s.axis_forms))
        if optimize_layout:
            layout = choose_layout(
                key, best.shape, _axis_levels(best), mapping
            )
        else:
            layout = LayoutDecision(
                array_key=key,
                shape=tuple(best.shape),
                strides=row_major(best.shape),
                axis_order=tuple(range(len(best.shape))),
            )
        decisions.append(
            PreallocDecision(
                array_key=key,
                elem_bytes=best.elem_bytes,
                layout=layout,
            )
        )
    return decisions
