"""Optimization pipeline: analysis + mapping -> a LaunchPlan.

Applies, in order, the paper's two mapping-coupled optimizations:

1. preallocation of inner allocations with mapping-directed layout
   (Section V-A), and
2. shared-memory prefetching for imperfect nests (Section V-B),

producing the :class:`~repro.gpusim.cost.LaunchPlan` the cost model and the
runtime consume.  Flags allow each optimization to be disabled for the
ablation experiments (Figure 16's three configurations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..analysis.analyzer import KernelAnalysis
from ..analysis.mapping import Mapping
from ..gpusim.cost import LaunchPlan
from ..gpusim.device import GpuDevice, default_device
from .prealloc import plan_preallocations
from .shared_memory import plan_shared_memory


@dataclass(frozen=True)
class OptimizationFlags:
    """Which optimizations to apply (all on by default, as in the paper)."""

    prealloc: bool = True
    layout_opt: bool = True
    shared_memory: bool = True

    @classmethod
    def none(cls) -> "OptimizationFlags":
        """Every optimization disabled — the ablation baseline."""
        return cls(prealloc=False, layout_opt=False, shared_memory=False)


def build_plan(
    analysis: KernelAnalysis,
    mapping: Mapping,
    device: Optional[GpuDevice] = None,
    flags: OptimizationFlags = OptimizationFlags(),
) -> LaunchPlan:
    """Run the optimization pipeline for one kernel."""
    from ..observability import get_tracer
    from ..resilience.faults import maybe_inject

    tracer = get_tracer()
    with tracer.span(
        "optimize",
        prealloc=flags.prealloc,
        layout_opt=flags.layout_opt,
        shared_memory=flags.shared_memory,
    ) as span:
        maybe_inject("optimizer")
        if device is None:
            device = default_device()

        layout_strides: Tuple[Tuple[str, Tuple[int, ...]], ...] = ()
        if flags.prealloc:
            with tracer.span("prealloc"):
                decisions = plan_preallocations(
                    analysis, mapping, optimize_layout=flags.layout_opt
                )
            layout_strides = tuple(
                (d.array_key, d.layout.strides) for d in decisions
            )

        smem_keys = frozenset()
        extra_shared = 0
        if flags.shared_memory:
            with tracer.span("shared_memory"):
                prefetch = plan_shared_memory(
                    analysis,
                    mapping,
                    shared_budget_bytes=device.shared_mem_per_sm_bytes,
                )
            smem_keys = prefetch.array_keys
            extra_shared = prefetch.shared_bytes_per_block

        span.set(
            prealloc_arrays=len(layout_strides),
            smem_arrays=len(smem_keys),
            smem_bytes=extra_shared,
        )
        return LaunchPlan(
            prealloc=flags.prealloc,
            layout_strides=layout_strides,
            smem_prefetch=smem_keys,
            extra_shared_bytes=extra_shared,
        )
