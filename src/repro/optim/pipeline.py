"""Optimization pipeline: analysis + mapping -> a LaunchPlan.

The pipeline is a sequence of reified :mod:`repro.optim.passes`
transformations; the production order applies the paper's two
mapping-coupled optimizations:

1. preallocation of inner allocations (``prealloc``) with
   mapping-directed layout (``layout``, Section V-A), and
2. shared-memory prefetching for imperfect nests (``shared_memory``,
   Section V-B),

producing the :class:`~repro.gpusim.cost.LaunchPlan` the cost model and
the runtime consume.  Flags allow each optimization to be disabled for
the ablation experiments (Figure 16's three configurations); every run
also emits a :class:`~repro.optim.passes.recipe.KernelRecipe` recording
the exact pass sequence with pre/post state digests
(:func:`build_plan_with_recipe`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..analysis.analyzer import KernelAnalysis
from ..analysis.mapping import Mapping
from ..errors import RuntimeConfigError
from ..gpusim.cost import LaunchPlan
from ..gpusim.device import GpuDevice, default_device


@dataclass(frozen=True)
class OptimizationFlags:
    """Which optimizations to apply (all on by default, as in the paper).

    Field names predate the pass registry; the pass-name spelling
    (``prealloc``, ``layout``, ``shared_memory``) is accepted by
    :meth:`from_names` and is what the ``--disable-opt`` CLI flag takes.
    """

    prealloc: bool = True
    layout_opt: bool = True
    shared_memory: bool = True

    #: Pass name -> flag field (the CLI/registry vocabulary).
    _PASS_FIELDS = (
        ("prealloc", "prealloc"),
        ("layout", "layout_opt"),
        ("shared_memory", "shared_memory"),
    )

    @classmethod
    def default(cls) -> "OptimizationFlags":
        """Every optimization enabled — the paper's configuration.

        Use this instead of ``OptimizationFlags()`` in signature
        defaults: a shared default *instance* in a ``def`` line is
        evaluated once at import and silently couples every caller.
        """
        return cls()

    @classmethod
    def none(cls) -> "OptimizationFlags":
        """Every optimization disabled — the ablation baseline."""
        return cls(prealloc=False, layout_opt=False, shared_memory=False)

    @classmethod
    def from_names(
        cls, disable: Optional[Iterable[str]] = None
    ) -> "OptimizationFlags":
        """Flags with the named passes disabled (``None``/empty = all on).

        Names are pass-registry names; unknown names raise
        :class:`~repro.errors.RuntimeConfigError` listing the vocabulary.
        """
        fields = dict(cls._PASS_FIELDS)
        values = {field: True for field in fields.values()}
        for name in disable or ():
            field = fields.get(name)
            if field is None:
                known = ", ".join(name for name, _ in cls._PASS_FIELDS)
                raise RuntimeConfigError(
                    f"unknown optimization {name!r}; known: {known}"
                )
            values[field] = False
        return cls(**values)

    def disabled_names(self) -> Tuple[str, ...]:
        """Pass names currently disabled (inverse of :meth:`from_names`)."""
        return tuple(
            name
            for name, field in self._PASS_FIELDS
            if not getattr(self, field)
        )


def default_pipeline(flags: OptimizationFlags):
    """The production pass sequence with per-pass enable bits.

    Order is fixed (prealloc -> layout -> shared_memory, matching the
    legacy fused pipeline byte-for-byte); flags toggle passes without
    reordering.  ControlDOP is deliberately absent: in production it is
    a launch-time mapping rewrite
    (:func:`repro.runtime.launcher.adjust_at_launch`), not a plan pass —
    the pass-ordering tuner (:mod:`repro.optim.passes.tune`) is where
    pulling it into the pipeline is explored.
    """
    from .passes.library import LayoutPass, PreallocPass, SharedMemoryPass

    return [
        (PreallocPass(), flags.prealloc),
        (LayoutPass(), flags.layout_opt),
        (SharedMemoryPass(), flags.shared_memory),
    ]


def build_plan_with_recipe(
    analysis: KernelAnalysis,
    mapping: Mapping,
    device: Optional[GpuDevice] = None,
    flags: Optional[OptimizationFlags] = None,
):
    """Run the optimization pipeline for one kernel, emitting the recipe.

    Returns ``(LaunchPlan, KernelRecipe)``; the recipe records every
    pipeline step (applied or skipped, with pre/post state digests) and
    the input mapping, which is what makes the plan replayable and
    diffable (``repro recipe``).
    """
    from ..observability import instrumented_stage
    from .passes.base import PlanState, run_pipeline
    from .passes.recipe import KernelRecipe, PassRecord

    if flags is None:
        flags = OptimizationFlags.default()
    if device is None:
        device = default_device()
    with instrumented_stage(
        "optimizer",
        span_name="optimize",
        prealloc=flags.prealloc,
        layout_opt=flags.layout_opt,
        shared_memory=flags.shared_memory,
    ) as scope:
        state = PlanState.initial(analysis, mapping, device)
        state, steps = run_pipeline(default_pipeline(flags), state)
        records: List[PassRecord] = [
            PassRecord(
                name=step.transformation.name,
                params=step.transformation.params,
                applied=step.applied,
                skip_reason=step.skip_reason,
                pre_digest=step.pre_digest,
                post_digest=step.post_digest,
            )
            for step in steps
        ]
        recipe = KernelRecipe(
            index=0,
            mapping=mapping.to_dict(),
            passes=records,
            plan_digest=state.digest(),
        )
        plan = state.to_plan()
        scope.set(
            prealloc_arrays=len(plan.layout_strides),
            smem_arrays=len(plan.smem_prefetch),
            smem_bytes=plan.extra_shared_bytes,
            passes_applied=sum(1 for step in steps if step.applied),
        )
        return plan, recipe


def build_plan(
    analysis: KernelAnalysis,
    mapping: Mapping,
    device: Optional[GpuDevice] = None,
    flags: Optional[OptimizationFlags] = None,
) -> LaunchPlan:
    """Run the optimization pipeline for one kernel."""
    plan, _ = build_plan_with_recipe(analysis, mapping, device, flags)
    return plan
