"""High-level session facade: the library's main entry point.

Typical use::

    from repro import GpuSession
    session = GpuSession()                      # Tesla K20c, MultiDim
    compiled = session.compile(program, R=8192, C=8192)
    result = compiled.run(m=matrix)             # functional execution
    time_us = compiled.estimate_time_us()       # simulated GPU time
    print(compiled.cuda_source)                 # generated CUDA

A :class:`CompiledProgram` bundles per-kernel mapping decisions, launch
plans, generated CUDA, the functional executor, and the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Union

from ..analysis.analyzer import ProgramAnalysis, analyze_program
from ..analysis.mapping import Mapping
from ..analysis.shapes import SizeEnv
from ..codegen.compiler import CompiledModule, compile_program
from ..gpusim.cost import estimate_kernel_cost
from ..gpusim.device import GpuDevice, default_device
from ..gpusim.simulator import KernelDecision, decide_mapping
from ..gpusim.stats import ProgramCost
from ..interp.evaluator import Evaluator
from ..ir.patterns import Program
from ..optim.pipeline import OptimizationFlags, build_plan
from .buffers import BufferManager
from .launcher import adjust_at_launch

Strategy = Union[str, Mapping]


@dataclass
class CompiledProgram:
    """A program after analysis, mapping, optimization, and codegen."""

    program: Program
    device: GpuDevice
    strategy: Strategy
    decisions: List[KernelDecision]
    module: CompiledModule
    analysis: ProgramAnalysis
    flags: OptimizationFlags
    dynamic_launch: bool = True

    # -- functional execution -------------------------------------------

    def run(self, seed: int = 0, **inputs: Any) -> Any:
        """Execute the program functionally (the correctness oracle)."""
        return Evaluator(self.program, seed=seed).run(**inputs)

    # -- performance estimation ------------------------------------------

    def estimate_cost(
        self,
        include_transfer: bool = False,
        input_bytes: float = 0.0,
        **sizes: int,
    ) -> ProgramCost:
        """Simulate execution time, optionally at different runtime sizes.

        With ``dynamic_launch`` (the default) block sizes and span/split
        factors are re-tuned per kernel for the actual sizes while keeping
        the static dimension/span-kind decision, as in Section IV-D.
        """
        if sizes:
            env = SizeEnv.for_program(self.program, **sizes)
        else:
            env = self.analysis.env
        result = ProgramCost()
        for decision in self.decisions:
            mapping = decision.mapping
            # Dynamic adjustment retunes what the MultiDim analysis left
            # dynamic; fixed baseline strategies keep their defining block
            # geometry (that rigidity is exactly what the paper measures).
            if self.dynamic_launch and self.strategy == "multidim":
                from ..gpusim.cost import runtime_level_sizes

                level_sizes = runtime_level_sizes(decision.analysis.nest, env)
                mapping = adjust_at_launch(
                    mapping,
                    decision.analysis.constraints,
                    level_sizes,
                    self.device.dop_window(),
                )
            plan = build_plan(decision.analysis, mapping, self.device, self.flags)
            result.kernels.append(
                estimate_kernel_cost(
                    decision.analysis, mapping, self.device, env, plan
                )
            )
        if include_transfer and input_bytes > 0:
            buffers = BufferManager(self.device)
            result.transfer_us = buffers.transfer_time_us(input_bytes)
        return result

    def estimate_time_us(self, **sizes: int) -> float:
        return self.estimate_cost(**sizes).total_us

    # -- artifacts ---------------------------------------------------------

    @property
    def cuda_source(self) -> str:
        return self.module.source

    def mappings(self) -> List[Mapping]:
        return [d.mapping for d in self.decisions]

    def describe(self) -> str:
        lines = [f"program {self.program.name} ({len(self.decisions)} kernels)"]
        for i, d in enumerate(self.decisions):
            lines.append(f"  kernel {i}: {d.mapping}")
        return "\n".join(lines)

    def report(self) -> str:
        """A markdown compilation report: per-kernel mapping rationale,
        cost breakdown, and the generated CUDA."""
        from ..analysis.explain import explain_mapping

        lines = [
            f"# Compilation report: {self.program.name}",
            "",
            f"- device: {self.device.name}",
            f"- strategy: {self.strategy}",
            f"- kernels: {len(self.decisions)}",
            "",
        ]
        for index, decision in enumerate(self.decisions):
            ka = decision.analysis
            lines.append(f"## Kernel {index}")
            lines.append("")
            lines.append(
                f"- nest depth {ka.depth}, analysis sizes "
                f"{ka.level_sizes()}"
            )
            lines.append(f"- mapping: `{decision.mapping}`")
            lines.append("")
            lines.append("### Why this mapping")
            lines.append("")
            lines.append("```")
            lines.append(explain_mapping(ka, decision.mapping).render())
            lines.append("```")
            lines.append("")
            lines.append("### Simulated cost")
            lines.append("")
            lines.append("```")
            cost = estimate_kernel_cost(
                ka, decision.mapping, self.device, self.analysis.env,
                decision.plan,
            )
            lines.append(cost.describe())
            lines.append("```")
            lines.append("")
        lines.append("## Generated CUDA")
        lines.append("")
        lines.append("```cuda")
        lines.append(self.cuda_source.rstrip())
        lines.append("```")
        return "\n".join(lines)


class GpuSession:
    """Compilation sessions bind a device, strategy, and optimizations."""

    def __init__(
        self,
        device: Optional[GpuDevice] = None,
        strategy: Strategy = "multidim",
        flags: OptimizationFlags = OptimizationFlags(),
        dynamic_launch: bool = True,
    ):
        self.device = device or default_device()
        self.strategy = strategy
        self.flags = flags
        self.dynamic_launch = dynamic_launch

    def compile(self, program: Program, **size_hints: int) -> CompiledProgram:
        """Analyze, map, optimize, and generate code for a program."""
        analysis = analyze_program(program, **size_hints)
        decisions = []
        for ka in analysis.kernels:
            decision = decide_mapping(ka, self.strategy, self.device)
            decision.plan = build_plan(ka, decision.mapping, self.device, self.flags)
            decisions.append(decision)
        module = compile_program(
            program,
            self.strategy,
            device=self.device,
            prealloc=self.flags.prealloc,
            **size_hints,
        )
        return CompiledProgram(
            program=program,
            device=self.device,
            strategy=self.strategy,
            decisions=decisions,
            module=module,
            analysis=analysis,
            flags=self.flags,
            dynamic_launch=self.dynamic_launch,
        )
