"""High-level session facade: the library's main entry point.

Typical use::

    from repro import GpuSession
    session = GpuSession()                      # Tesla K20c, MultiDim
    compiled = session.compile(program, R=8192, C=8192)
    result = compiled.run(m=matrix)             # functional execution
    time_us = compiled.estimate_time_us()       # simulated GPU time
    print(compiled.cuda_source)                 # generated CUDA

A :class:`CompiledProgram` bundles per-kernel mapping decisions, launch
plans, generated CUDA, the functional executor, and the cost model.

Resilience: each pipeline stage (analysis, search, optimizer, codegen,
interpreter, simulator) runs under a guard.  With ``resilient=True`` (the
default) a failed MultiDim search degrades to the conservative fallback
mapping and a failed optimizer degrades to an unoptimized launch plan —
recorded in :attr:`CompiledProgram.degradations` — while errors in stages
with no safe substitute escape as typed
:class:`~repro.errors.ReproError` exceptions carrying a replayable
:class:`~repro.resilience.reports.FailureReport` (see
``docs/robustness.md``).  A :class:`~repro.resilience.budget.Budget`
bounds compile-time search work; the session holds a budget *template*
and every :meth:`GpuSession.compile` call spends a fresh copy.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, NoReturn, Optional, Union

from ..analysis.analyzer import ProgramAnalysis, analyze_program
from ..analysis.mapping import Mapping
from ..analysis.shapes import SizeEnv
from ..codegen.compiler import CompiledModule, compile_program
from ..errors import ReproError, SimulationError
from ..gpusim.cost import LaunchPlan, estimate_kernel_cost
from ..gpusim.device import GpuDevice, default_device
from ..gpusim.simulator import KernelDecision, decide_mapping
from ..gpusim.stats import ProgramCost
from ..interp.evaluator import Evaluator
from ..ir.patterns import Program
from ..observability import get_metrics, get_tracer, provenance_enabled
from ..optim.pipeline import (
    OptimizationFlags,
    build_plan,
    build_plan_with_recipe,
)
from ..resilience.budget import Budget
from ..resilience.reports import (
    attach_report,
    build_report,
    write_failure_report,
)
from .buffers import BufferManager
from .launcher import adjust_at_launch

Strategy = Union[str, Mapping]


def _fail(
    exc: ReproError,
    stage: str,
    program: Program,
    strategy: Strategy,
    sizes: Dict[str, int],
    device: GpuDevice,
    kernel_index: Optional[int] = None,
    mapping: Optional[Mapping] = None,
    seed: int = 0,
    report_dir: Optional[str] = None,
) -> NoReturn:
    """Attach a replayable failure report to ``exc`` and re-raise it."""
    report = build_report(
        exc,
        stage,
        program=program,
        kernel_index=kernel_index,
        mapping=mapping,
        strategy=strategy,
        sizes=sizes,
        device=device,
        seed=seed,
    )
    attach_report(exc, report)
    if report_dir:
        try:
            exc.failure_report_path = write_failure_report(report, report_dir)
        except OSError:
            pass  # artifact best-effort; the in-memory report survives
    raise exc


@dataclass
class CompiledProgram:
    """A program after analysis, mapping, optimization, and codegen."""

    program: Program
    device: GpuDevice
    strategy: Strategy
    decisions: List[KernelDecision]
    module: CompiledModule
    analysis: ProgramAnalysis
    flags: OptimizationFlags
    dynamic_launch: bool = True
    #: Human-readable notes for every stage that degraded instead of
    #: failing (empty for a full-fidelity compile).
    degradations: List[str] = field(default_factory=list)
    #: The size bindings the program was compiled under (for reports).
    size_hints: Dict[str, int] = field(default_factory=dict)
    #: Where escaping errors write their failure-report artifacts.
    report_dir: Optional[str] = None
    #: Cached mapping-provenance record (built on first request, or
    #: eagerly at compile time when provenance capture is enabled).
    _provenance: Optional[Any] = field(default=None, repr=False)
    #: Cached program-level transformation recipe.
    _recipe: Optional[Any] = field(default=None, repr=False)

    @property
    def degraded(self) -> bool:
        return bool(self.degradations)

    def provenance(self, top_k: int = 5):
        """The "why this mapping won" record for this compile.

        Re-ranks every kernel's candidates (top ``top_k``) with
        per-constraint verdicts and score deltas; the result serializes to
        JSON (``repro explain`` renders saved artifacts).  Built lazily and
        cached — the first call fixes ``top_k``.
        """
        if self._provenance is None:
            from ..observability.provenance import build_provenance

            self._provenance = build_provenance(self, top_k=top_k)
        return self._provenance

    def recipe(self):
        """The transformation :class:`~repro.optim.passes.recipe.Recipe`
        recording the exact pass sequence of this compile.

        Content-hashed and replayable (``repro recipe replay``); built
        from the per-kernel recipes the optimizer emitted at compile
        time, and cached.
        """
        if self._recipe is None:
            from ..optim.passes.recipe import build_compile_recipe

            self._recipe = build_compile_recipe(self)
        return self._recipe

    def _fail(
        self,
        exc: ReproError,
        stage: str,
        kernel_index: Optional[int] = None,
        mapping: Optional[Mapping] = None,
        seed: int = 0,
    ) -> NoReturn:
        _fail(
            exc, stage, self.program, self.strategy, self.size_hints,
            self.device, kernel_index=kernel_index, mapping=mapping,
            seed=seed, report_dir=self.report_dir,
        )

    # -- functional execution -------------------------------------------

    def run(self, seed: int = 0, **inputs: Any) -> Any:
        """Execute the program functionally (the correctness oracle)."""
        try:
            return Evaluator(self.program, seed=seed).run(**inputs)
        except ReproError as exc:
            self._fail(exc, "interpreter", seed=seed)

    # -- performance estimation ------------------------------------------

    def estimate_cost(
        self,
        include_transfer: bool = False,
        input_bytes: float = 0.0,
        check: bool = False,
        **sizes: int,
    ) -> ProgramCost:
        """Simulate execution time, optionally at different runtime sizes.

        With ``dynamic_launch`` (the default) block sizes and span/split
        factors are re-tuned per kernel for the actual sizes while keeping
        the static dimension/span-kind decision, as in Section IV-D.

        With ``check=True`` a non-finite modeled cost raises a typed
        :class:`~repro.errors.SimulationError` (with failure report)
        instead of returning a silently poisoned estimate.
        """
        if sizes:
            env = SizeEnv.for_program(self.program, **sizes)
        else:
            env = self.analysis.env
        result = ProgramCost()
        for index, decision in enumerate(self.decisions):
            mapping = decision.mapping
            try:
                # Dynamic adjustment retunes what the MultiDim analysis
                # left dynamic; fixed baseline strategies keep their
                # defining block geometry (that rigidity is exactly what
                # the paper measures).
                if self.dynamic_launch and self.strategy == "multidim":
                    from ..gpusim.cost import runtime_level_sizes

                    level_sizes = runtime_level_sizes(
                        decision.analysis.nest, env
                    )
                    mapping = adjust_at_launch(
                        mapping,
                        decision.analysis.constraints,
                        level_sizes,
                        self.device.dop_window(),
                    )
                plan = build_plan(
                    decision.analysis, mapping, self.device, self.flags
                )
                result.kernels.append(
                    estimate_kernel_cost(
                        decision.analysis, mapping, self.device, env, plan
                    )
                )
            except ReproError as exc:
                self._fail(exc, "simulator", kernel_index=index,
                           mapping=mapping)
        if include_transfer and input_bytes > 0:
            buffers = BufferManager(self.device)
            result.transfer_us = buffers.transfer_time_us(input_bytes)
        if check:
            bad = result.check_finite()
            if bad:
                self._fail(
                    SimulationError(
                        "cost model produced non-finite components: "
                        + ", ".join(bad)
                    ),
                    "simulator",
                )
        return result

    def estimate_time_us(self, **sizes: int) -> float:
        return self.estimate_cost(**sizes).total_us

    # -- artifacts ---------------------------------------------------------

    @property
    def cuda_source(self) -> str:
        return self.module.source

    def mappings(self) -> List[Mapping]:
        return [d.mapping for d in self.decisions]

    def describe(self) -> str:
        lines = [f"program {self.program.name} ({len(self.decisions)} kernels)"]
        for i, d in enumerate(self.decisions):
            lines.append(f"  kernel {i}: {d.mapping}")
        for note in self.degradations:
            lines.append(f"  degraded: {note}")
        return "\n".join(lines)

    def report(self) -> str:
        """A markdown compilation report: per-kernel mapping rationale,
        cost breakdown, and the generated CUDA."""
        from ..analysis.explain import explain_mapping

        lines = [
            f"# Compilation report: {self.program.name}",
            "",
            f"- device: {self.device.name}",
            f"- strategy: {self.strategy}",
            f"- kernels: {len(self.decisions)}",
            "",
        ]
        if self.degradations:
            lines.append("## Degradations")
            lines.append("")
            lines.extend(f"- {note}" for note in self.degradations)
            lines.append("")
        for index, decision in enumerate(self.decisions):
            ka = decision.analysis
            lines.append(f"## Kernel {index}")
            lines.append("")
            lines.append(
                f"- nest depth {ka.depth}, analysis sizes "
                f"{ka.level_sizes()}"
            )
            lines.append(f"- mapping: `{decision.mapping}`")
            lines.append("")
            lines.append("### Why this mapping")
            lines.append("")
            lines.append("```")
            lines.append(explain_mapping(ka, decision.mapping).render())
            lines.append("```")
            lines.append("")
            lines.append("### Simulated cost")
            lines.append("")
            lines.append("```")
            cost = estimate_kernel_cost(
                ka, decision.mapping, self.device, self.analysis.env,
                decision.plan,
            )
            lines.append(cost.describe())
            lines.append("```")
            lines.append("")
        lines.append("## Generated CUDA")
        lines.append("")
        lines.append("```cuda")
        lines.append(self.cuda_source.rstrip())
        lines.append("```")
        return "\n".join(lines)


class GpuSession:
    """Compilation sessions bind a device, strategy, and optimizations.

    ``budget`` is a template: each compile spends a fresh copy, so one
    slow compile cannot starve the next.  ``report_dir`` makes escaping
    errors write their replayable failure reports as JSON artifacts; it
    defaults to the ``REPRO_REPORT_DIR`` environment variable when set
    (CI exports it so any pipeline failure during the test run leaves an
    uploadable artifact).  ``resilient=False`` turns stage degradation
    off (every stage error escapes, still typed and reported) — used by
    tests that assert the undegraded behavior.
    """

    def __init__(
        self,
        device: Optional[GpuDevice] = None,
        strategy: Strategy = "multidim",
        flags: Optional[OptimizationFlags] = None,
        dynamic_launch: bool = True,
        budget: Optional[Budget] = None,
        report_dir: Optional[str] = None,
        resilient: bool = True,
    ):
        self.device = device or default_device()
        self.strategy = strategy
        self.flags = (
            flags if flags is not None else OptimizationFlags.default()
        )
        self.dynamic_launch = dynamic_launch
        self.budget = budget
        self.report_dir = (
            report_dir
            if report_dir is not None
            else os.environ.get("REPRO_REPORT_DIR") or None
        )
        self.resilient = resilient

    def _fallback_decision(self, ka) -> KernelDecision:
        """The guaranteed-feasible decision substituted for a dead search."""
        from ..resilience.fallback import conservative_fallback_mapping

        mapping = conservative_fallback_mapping(
            ka.depth, ka.constraints, ka.level_sizes(),
            self.device.dop_window(),
        )
        return KernelDecision(ka, mapping, LaunchPlan(prealloc=True))

    def compile(
        self,
        program: Program,
        budget: Optional[Budget] = None,
        **size_hints: int,
    ) -> CompiledProgram:
        """Analyze, map, optimize, and generate code for a program."""
        with get_tracer().span(
            "compile", program=program.name, strategy=str(self.strategy)
        ) as span:
            compiled = self._compile(program, budget, **size_hints)
            span.set(
                kernels=len(compiled.decisions),
                degradations=len(compiled.degradations),
            )
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("compile.runs").inc()
            if compiled.degradations:
                metrics.counter("resilience.degradation.activations").inc(
                    len(compiled.degradations)
                )
        if provenance_enabled():
            try:
                compiled.provenance()
            except ReproError:
                pass  # provenance is best-effort diagnostics
        return compiled

    def _compile(
        self,
        program: Program,
        budget: Optional[Budget],
        **size_hints: int,
    ) -> CompiledProgram:
        if budget is None and self.budget is not None:
            budget = self.budget.fresh()
        if budget is not None:
            budget.start()

        def fail(
            exc: ReproError,
            stage: str,
            kernel_index: Optional[int] = None,
            mapping: Optional[Mapping] = None,
        ) -> NoReturn:
            _fail(
                exc, stage, program, self.strategy, dict(size_hints),
                self.device, kernel_index=kernel_index, mapping=mapping,
                report_dir=self.report_dir,
            )

        try:
            analysis = analyze_program(program, **size_hints)
        except ReproError as exc:
            fail(exc, "analysis")

        degradations: List[str] = []
        decisions: List[KernelDecision] = []
        for index, ka in enumerate(analysis.kernels):
            try:
                decision = decide_mapping(
                    ka, self.strategy, self.device, optimize=False,
                    budget=budget,
                )
            except ReproError as exc:
                # Only the MultiDim search has a safe substitute; fixed
                # strategies fail for structural reasons (wrong nest
                # depth) the fallback cannot paper over, and silently
                # replacing them would corrupt baseline comparisons.
                if not (self.resilient and self.strategy == "multidim"):
                    fail(exc, "search", kernel_index=index)
                try:
                    decision = self._fallback_decision(ka)
                except ReproError:
                    fail(exc, "search", kernel_index=index)
                degradations.append(
                    f"kernel {index}: mapping search failed "
                    f"({type(exc).__name__}: {exc}); conservative fallback "
                    "mapping substituted"
                )
            else:
                if decision.search is not None and decision.search.degraded:
                    degradations.append(
                        f"kernel {index}: {decision.search.degraded_reason}"
                    )
            try:
                decision.plan, decision.recipe = build_plan_with_recipe(
                    ka, decision.mapping, self.device, self.flags
                )
            except ReproError as exc:
                if not self.resilient:
                    fail(
                        exc, "optimizer", kernel_index=index,
                        mapping=decision.mapping,
                    )
                decision.plan = LaunchPlan(prealloc=True)
                decision.recipe = None
                degradations.append(
                    f"kernel {index}: optimizer failed "
                    f"({type(exc).__name__}: {exc}); unoptimized launch "
                    "plan substituted"
                )
            decisions.append(decision)

        try:
            module = compile_program(
                program,
                self.strategy,
                device=self.device,
                prealloc=self.flags.prealloc,
                mappings=[d.mapping for d in decisions],
                **size_hints,
            )
        except ReproError as exc:
            fail(exc, "codegen")

        return CompiledProgram(
            program=program,
            device=self.device,
            strategy=self.strategy,
            decisions=decisions,
            module=module,
            analysis=analysis,
            flags=self.flags,
            dynamic_launch=self.dynamic_launch,
            degradations=degradations,
            size_hints=dict(size_hints),
            report_dir=self.report_dir,
        )
