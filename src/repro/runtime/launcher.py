"""Dynamic launch-parameter adjustment (Section IV-D, last paragraph).

The compile-time decision fixes what determines code structure — dimension
assignment and span *kinds* — while block sizes and span/split *factors*
are re-derived at launch from the actual sizes.  This is why Figure 17's
skewed Mandelbrot still lands in the best-performance region: the static
mapping was chosen at representative sizes, but the launch adapts.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

from ..analysis.constraints import ConstraintSet
from ..analysis.dop import DopWindow
from ..analysis.mapping import (
    DIM_MAX_THREADS,
    LevelMapping,
    Mapping,
    Span,
    SpanAll,
    Split,
)
from ..analysis.scoring import score_mapping
from ..config import BLOCK_SIZE_CANDIDATES, MAX_BLOCK_SIZE
from ..errors import LaunchError


def adjust_at_launch(
    mapping: Mapping,
    cset: ConstraintSet,
    sizes: Sequence[int],
    window: Optional[DopWindow] = None,
    block_sizes: Sequence[int] = BLOCK_SIZE_CANDIDATES,
) -> Mapping:
    """Re-tune block sizes and span/split factors for the runtime sizes.

    Dimensions and span kinds are preserved (the generated code depends on
    them); every block-size combination is rescored under the actual sizes
    and ControlDOP reapplies the span(n)/split(k) factors.
    """
    if window is None:
        window = DopWindow()
    # Hoisted once: score_mapping expects a tuple and would otherwise
    # convert per candidate inside the combination loop below.
    sizes = tuple(sizes)
    if len(sizes) != mapping.num_levels:
        raise LaunchError(
            f"launch got {len(sizes)} runtime sizes for a "
            f"{mapping.num_levels}-level mapping"
        )
    if any(size < 0 for size in sizes):
        raise LaunchError(f"negative runtime size in {sizes}")
    # Empty domains still launch one degenerate block.
    sizes = tuple(max(1, size) for size in sizes)

    parallel_levels = [i for i, lm in enumerate(mapping.levels) if lm.parallel]
    if not parallel_levels:
        return mapping

    best: Optional[Mapping] = None
    best_score = -1.0
    best_dop = -1
    best_tpb = -1
    for combo in itertools.product(block_sizes, repeat=len(parallel_levels)):
        levels: List[LevelMapping] = list(mapping.levels)
        product = 1
        valid = True
        for level, size in zip(parallel_levels, combo):
            lm = mapping.level(level)
            if size > DIM_MAX_THREADS[lm.dim]:
                valid = False
                break
            product *= size
            # Reset span factors to their kind's base; ControlDOP retunes.
            span = lm.span
            if isinstance(span, Span):
                span = Span(1)
            elif isinstance(span, Split):
                span = SpanAll()
            levels[level] = LevelMapping(lm.dim, size, span)
        if not valid or product > MAX_BLOCK_SIZE:
            continue
        candidate = Mapping(tuple(levels))
        score = score_mapping(candidate, cset, sizes)
        if score is None:
            continue
        dop = candidate.dop(sizes)
        tpb = candidate.threads_per_block()
        # Tie-break chain: score, then DOP, then larger blocks (fewer
        # blocks means less scheduling overhead at equal parallelism).
        key = (score, dop, tpb)
        if key > (best_score, best_dop, best_tpb):
            best, best_score, best_dop, best_tpb = candidate, score, dop, tpb

    if best is None:
        # Silently launching with the compile-time geometry would execute
        # a mapping that violates a hard constraint at these sizes.
        raise LaunchError(
            f"no feasible launch geometry for {mapping} at runtime sizes "
            f"{sizes}"
        )
    from ..optim.passes.library import ControlDopPass

    retune = ControlDopPass(min_dop=window.min_dop, max_dop=window.max_dop)
    return retune.adjust(best, sizes, cset.span_all_levels())
