"""Device-memory manager and host-device transfer model.

Tracks simulated device allocations (so experiments can report peak memory
and preallocation totals) and prices host-to-device transfers, which
Section VI-E includes for the Naive Bayes application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import RuntimeConfigError
from ..gpusim.device import GpuDevice, default_device


@dataclass
class DeviceBuffer:
    """One live simulated device allocation."""

    name: str
    nbytes: int


class BufferManager:
    """Allocation bookkeeping for a simulated device."""

    def __init__(self, device: Optional[GpuDevice] = None):
        self.device = device or default_device()
        self._buffers: Dict[str, DeviceBuffer] = {}
        self._peak_bytes = 0
        self._current_bytes = 0

    def alloc(self, name: str, nbytes: int) -> DeviceBuffer:
        if nbytes < 0:
            raise RuntimeConfigError(f"negative allocation for {name!r}")
        if name in self._buffers:
            raise RuntimeConfigError(f"buffer {name!r} already allocated")
        buffer = DeviceBuffer(name, nbytes)
        self._buffers[name] = buffer
        self._current_bytes += nbytes
        self._peak_bytes = max(self._peak_bytes, self._current_bytes)
        return buffer

    def free(self, name: str) -> None:
        try:
            buffer = self._buffers.pop(name)
        except KeyError:
            raise RuntimeConfigError(f"buffer {name!r} is not allocated")
        self._current_bytes -= buffer.nbytes

    @property
    def current_bytes(self) -> int:
        return self._current_bytes

    @property
    def peak_bytes(self) -> int:
        return self._peak_bytes

    def live_buffers(self) -> List[DeviceBuffer]:
        return list(self._buffers.values())

    def transfer_time_us(self, nbytes: float) -> float:
        """Host-device copy time over PCIe (latency + bandwidth)."""
        return (
            self.device.pcie_latency_us
            + nbytes / (self.device.pcie_bandwidth_gbs * 1e9) * 1e6
        )
