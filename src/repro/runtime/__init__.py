"""Runtime layer: sessions, buffers, and dynamic launch adjustment."""

from .buffers import BufferManager, DeviceBuffer  # noqa: F401
from .launcher import adjust_at_launch  # noqa: F401
from .session import CompiledProgram, GpuSession  # noqa: F401
