"""Nest extraction: levels, sizes, and structure of nested patterns.

A *level* is how deep a pattern sits from the outermost enclosing pattern
(Section IV): level 0 is the outermost pattern, and all patterns at the same
depth share a level — e.g. PageRank's inner map and reduce are both level 1.

Each outermost pattern becomes one GPU kernel (the paper's one-to-one
mapping); :func:`extract_kernels` finds them and :func:`build_nest` computes
the per-kernel level structure the mapping analysis consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import AnalysisError
from ..ir.expr import ArrayRead, Expr, Node, Store
from ..ir.patterns import PatternExpr, Program
from ..ir.traversal import pattern_paths
from .shapes import SizeEnv, SizeValue, eval_size, size_depends_on_indices


@dataclass
class PatternInfo:
    """Analysis facts about one pattern occurrence within a nest."""

    pattern: PatternExpr
    level: int
    #: Enclosing patterns, outermost first (excludes the pattern itself).
    enclosing: Tuple[PatternExpr, ...]
    #: Representative evaluated domain size.
    size: SizeValue
    #: True when the domain size is unknown at kernel-launch time because
    #: it depends on an enclosing pattern's index (first Span(all) trigger).
    launch_dynamic: bool
    #: True when parallelizing this pattern requires global synchronization
    #: (Reduce/Filter/GroupBy — second Span(all) trigger).
    needs_sync: bool

    @property
    def enclosing_index_names(self) -> frozenset:
        return frozenset(p.index.name for p in self.enclosing)


@dataclass
class LevelInfo:
    """Aggregate facts about one nest level."""

    level: int
    patterns: List[PatternInfo] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Representative domain size for the level (max across patterns)."""
        return max((int(p.size) for p in self.patterns), default=1)

    @property
    def exact_size(self) -> bool:
        return all(p.size.exact for p in self.patterns)

    @property
    def needs_span_all(self) -> bool:
        """The level-wide hard requirement (most conservative span wins).

        This is the paper's *global* hard constraint: if any pattern at the
        level needs global synchronization or has a launch-dynamic size,
        the whole level gets Span(all).
        """
        return any(p.needs_sync or p.launch_dynamic for p in self.patterns)


@dataclass
class Nest:
    """The level structure of one kernel (one outermost pattern)."""

    root: PatternExpr
    levels: List[LevelInfo]
    info_by_pattern: Dict[PatternExpr, PatternInfo]

    @property
    def depth(self) -> int:
        return len(self.levels)

    def level_sizes(self) -> List[int]:
        return [lv.size for lv in self.levels]

    def info(self, pattern: PatternExpr) -> PatternInfo:
        try:
            return self.info_by_pattern[pattern]
        except KeyError:
            raise AnalysisError(f"pattern {pattern!r} is not part of this nest")

    def level_of(self, pattern: PatternExpr) -> int:
        return self.info(pattern).level

    def has_outer_body_work(self, level: int) -> bool:
        """True when the nest is *imperfect* at ``level``.

        A level is imperfect when memory accesses or bindings execute in
        its body outside any deeper pattern — the trigger for the
        shared-memory prefetch optimization (Section V-B).
        """
        if level >= self.depth - 1:
            return False  # innermost level has nothing deeper
        for pinfo in self.levels[level].patterns:
            if _accesses_outside_inner_patterns(pinfo.pattern):
                return True
        return False


def outermost_patterns(expr: Expr) -> List[PatternExpr]:
    """Patterns in ``expr`` not enclosed by any other pattern."""
    result: List[PatternExpr] = []
    stack: List[Node] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, PatternExpr):
            result.append(node)
            continue
        # Children are pushed reversed so the pop order (and therefore the
        # kernel order) matches program order.
        stack.extend(reversed(node.children()))
    return result


def extract_kernels(program: Program) -> List["Nest"]:
    """One nest per outermost pattern, in program order."""
    env = SizeEnv.for_program(program)
    roots = outermost_patterns(program.result)
    if not roots:
        raise AnalysisError(
            f"program {program.name} contains no parallel patterns"
        )
    return [build_nest(root, env) for root in roots]


def build_nest(root: PatternExpr, env: Optional[SizeEnv] = None) -> Nest:
    """Compute the level structure under one outermost pattern."""
    if env is None:
        env = SizeEnv()
    levels: List[LevelInfo] = []
    info_by_pattern: Dict[PatternExpr, PatternInfo] = {}

    for path in pattern_paths(root):
        pattern = path[-1]
        level = len(path) - 1
        enclosing = path[:-1]
        enclosing_names = frozenset(p.index.name for p in enclosing)
        info = PatternInfo(
            pattern=pattern,
            level=level,
            enclosing=enclosing,
            size=eval_size(pattern.size, env),
            launch_dynamic=size_depends_on_indices(pattern.size, enclosing_names),
            needs_sync=pattern.needs_global_sync,
        )
        info_by_pattern[pattern] = info
        while len(levels) <= level:
            levels.append(LevelInfo(level=len(levels)))
        levels[level].patterns.append(info)

    return Nest(root=root, levels=levels, info_by_pattern=info_by_pattern)


def _accesses_outside_inner_patterns(pattern: PatternExpr) -> bool:
    """Does this pattern's body touch memory outside its child patterns?"""
    for body_node in pattern.body_nodes():
        if _node_has_outer_access(body_node):
            return True
    return False


def _node_has_outer_access(node: Node) -> bool:
    if isinstance(node, PatternExpr):
        return False  # accesses inside deeper patterns don't count
    if isinstance(node, (ArrayRead, Store)):
        return True
    return any(_node_has_outer_access(child) for child in node.children())
