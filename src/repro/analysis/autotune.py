"""Cost-model-driven auto-tuning over the mapping space.

The paper closes by noting that its mapping parameters "can be used by
other compilers or auto-tuners to explore the mapping space", and that
integrating an analytical GPU performance model is future work (the
Figure 17 false negatives are the price of fixed intrinsic weights).  This
module implements both extensions: instead of scoring candidates with the
constraint weights, it prices every hard-feasible candidate with the full
simulator and picks the fastest — a measurement-driven auto-tuner whose
"measurements" are the analytic model.

The trade-off is compile time: the cost model is ~100x more expensive per
candidate than the constraint score, which is exactly why the paper's
design uses cheap scores plus ControlDOP.  The ablation benchmark
(`benchmarks/bench_ablation_autotune.py`) quantifies what the cheap score
leaves on the table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..config import BLOCK_SIZE_CANDIDATES
from ..errors import ReproError, SearchError
from ..resilience.budget import Budget
from ..resilience.faults import maybe_inject
from .analyzer import KernelAnalysis
from .cache import constraint_set_fingerprint, get_autotune_cache
from .dop import DopWindow, control_dop
from .mapping import Mapping
from .scoring import hard_feasible
from .search import enumerate_candidates
from .shapes import SizeEnv
from .vectorized import BatchUnsupported, iter_feasible_mappings


@dataclass
class AutotuneResult:
    """The simulator-optimal mapping plus the explored frontier."""

    mapping: Mapping
    time_us: float
    candidates: int
    #: (mapping, time) pairs, fastest first, truncated to ``keep_top``.
    frontier: List[Tuple[Mapping, float]] = field(default_factory=list)
    #: True when this result was served from the cross-sweep memo.
    cache_hit: bool = False
    #: Candidates whose modeled cost was NaN/Inf (dropped, never chosen).
    rejected_nonfinite: int = 0
    #: True when the tuner stopped early (budget) and returned its
    #: best-so-far, or degraded to the conservative fallback mapping.
    degraded: bool = False
    degraded_reason: str = ""


def _autotune_cache_key(
    analysis: KernelAnalysis,
    device,
    env: SizeEnv,
    window: DopWindow,
    block_sizes: Tuple[int, ...],
    keep_top: int,
    apply_control_dop: bool,
) -> Tuple:
    """Everything the cost-model pricing reads, canonicalized.

    Unlike the constraint search, the tuner's result depends on the full
    kernel (access sites drive the cost model), so the key includes the
    canonical IR rendering and the size environment alongside the
    constraint fingerprint.
    """
    from ..ir.printer import pretty

    return (
        "autotune",
        pretty(analysis.root),
        tuple(sorted(env.values.items())),
        tuple(sorted(env.array_shapes.items())),
        (env.default, env.skew),
        constraint_set_fingerprint(analysis.constraints),
        tuple(analysis.level_sizes()),
        device.name,
        (window.min_dop, window.max_dop),
        block_sizes,
        keep_top,
        apply_control_dop,
    )


def autotune_mapping(
    analysis: KernelAnalysis,
    device,
    env: Optional[SizeEnv] = None,
    window: Optional[DopWindow] = None,
    block_sizes: Sequence[int] = BLOCK_SIZE_CANDIDATES,
    keep_top: int = 10,
    apply_control_dop: bool = True,
    use_cache: bool = True,
    budget: Optional[Budget] = None,
) -> AutotuneResult:
    """Pick the mapping the cost model likes best.

    Every candidate satisfying the hard constraints is priced with
    :func:`repro.gpusim.cost.estimate_kernel_cost`; ControlDOP is applied
    per candidate (its Span(n)/Split(k) refinement changes cost too).
    Results are memoized per (kernel IR, sizes, device, grid) so repeated
    tuning of an unchanged kernel is free.

    Robustness: candidates the cost model prices at NaN/Inf are dropped
    (a poisoned model must never *win* the tuning); when ``budget`` runs
    out mid-sweep the tuner returns its best-so-far (``degraded=True``),
    or the conservative fallback mapping if nothing was priced yet.
    """
    from dataclasses import replace

    from ..gpusim.cost import estimate_kernel_cost

    if env is None:
        env = analysis.env
    if window is None:
        window = device.dop_window()
    block_sizes = tuple(block_sizes)
    if budget is not None:
        budget.start()

    cache = get_autotune_cache() if use_cache else None
    key = None
    if cache is not None:
        key = _autotune_cache_key(
            analysis, device, env, window, block_sizes, keep_top,
            apply_control_dop,
        )
        try:
            hit = cache.get(key)
            fault = maybe_inject("memo")
            if fault is not None and hit is not None:
                hit = replace(hit, mapping=None)
        except ReproError:
            # A failing memo costs this request a re-tune, nothing more.
            hit = None
        if hit is not None:
            if isinstance(hit, AutotuneResult) and isinstance(
                hit.mapping, Mapping
            ) and math.isfinite(hit.time_us):
                return replace(hit, cache_hit=True)
            cache.invalidate(key)

    sizes = tuple(analysis.level_sizes())
    splittable = analysis.constraints.span_all_levels()

    # Hard feasibility is the cheap part of the sweep, and the batch
    # engine evaluates it for the whole candidate matrix at once; fall
    # back to the scalar per-candidate filter only when a hard
    # constraint has no batch predicate.  Either path yields the same
    # mappings in the same order.
    prefiltered = True
    try:
        candidates = list(
            iter_feasible_mappings(
                analysis.depth, analysis.constraints, sizes, block_sizes
            )
        )
    except BatchUnsupported:
        prefiltered = False
        candidates = enumerate_candidates(
            analysis.depth, analysis.constraints, block_sizes
        )

    timed: List[Tuple[Mapping, float]] = []
    rejected_nonfinite = 0
    exhausted = False
    for candidate in candidates:
        if budget is not None and not budget.spend():
            exhausted = True
            break
        if not prefiltered and not hard_feasible(
            candidate, analysis.constraints, sizes
        ):
            continue
        if apply_control_dop:
            candidate = control_dop(candidate, sizes, window, splittable)
        time_us = estimate_kernel_cost(
            analysis, candidate, device, env
        ).total_us
        if not math.isfinite(time_us):
            rejected_nonfinite += 1
            continue
        timed.append((candidate, time_us))

    if not timed:
        if exhausted or rejected_nonfinite:
            return _degraded_autotune_result(
                analysis, device, env, window, sizes,
                rejected_nonfinite=rejected_nonfinite,
                reason=(
                    "autotune budget exhausted before any candidate was "
                    "priced"
                    if exhausted
                    else f"all {rejected_nonfinite} priced candidate(s) had "
                    "non-finite modeled cost"
                ),
            )
        raise SearchError("no feasible mapping to autotune over")
    timed.sort(key=lambda mt: mt[1])
    best_mapping, best_time = timed[0]
    result = AutotuneResult(
        mapping=best_mapping,
        time_us=best_time,
        candidates=len(timed),
        frontier=timed[:keep_top],
        rejected_nonfinite=rejected_nonfinite,
        degraded=exhausted,
        degraded_reason=(
            f"autotune budget exhausted after {len(timed)} priced "
            "candidate(s); best-so-far returned"
            if exhausted
            else ""
        ),
    )
    if cache is not None and key is not None and not result.degraded:
        # Best-so-far under a budget is not the true optimum for this
        # key; caching it would poison budget-free callers.
        cache.put(key, result)
    return result


def _degraded_autotune_result(
    analysis: KernelAnalysis,
    device,
    env: SizeEnv,
    window: DopWindow,
    sizes: Tuple[int, ...],
    rejected_nonfinite: int,
    reason: str,
) -> AutotuneResult:
    """Fall back to the conservative mapping when tuning produced nothing.

    The fallback is priced once on a best-effort basis; a non-finite or
    failing price is reported as 0.0 rather than raising — the mapping is
    still hard-feasible and executable, which is the contract that
    matters.
    """
    from ..gpusim.cost import estimate_kernel_cost
    from ..resilience.fallback import conservative_fallback_mapping

    mapping = conservative_fallback_mapping(
        analysis.depth, analysis.constraints, sizes, window
    )
    try:
        time_us = estimate_kernel_cost(analysis, mapping, device, env).total_us
    except ReproError:
        time_us = 0.0
    if not math.isfinite(time_us):
        time_us = 0.0
    return AutotuneResult(
        mapping=mapping,
        time_us=time_us,
        candidates=0,
        frontier=[(mapping, time_us)],
        rejected_nonfinite=rejected_nonfinite,
        degraded=True,
        degraded_reason=f"{reason}; conservative fallback mapping returned",
    )
