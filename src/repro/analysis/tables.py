"""Constraint classification and partial-satisfaction tables.

The brute-force search calls every constraint's ``satisfied_by`` on every
candidate.  This module does that work once per :class:`ConstraintSet`
instead: constraints are classified by their :meth:`footprint
<repro.analysis.constraints.Constraint.footprint>` (single-level,
block-product, warp-variance, or opaque), and for the single-level ones a
table of per-``(level, dim, block_size, span)`` outcomes is precomputed.
Scoring a candidate then reduces to table lookups plus one block-product
and one warp evaluation per complete size assignment, which is what makes
the branch-and-bound walk in :mod:`repro.analysis.search` cheap.

All per-candidate scores are combined with :func:`math.fsum` so the sum is
exact (order-independent): the staged search accumulates weights in a
different order than the brute-force reference, and exactness is what
keeps the two byte-identical, ties included.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import WARP_SIZE
from .constraints import (
    AvoidDivergence,
    Constraint,
    ConstraintSet,
    has_batch_predicate,
)
from .mapping import (
    DIM_MAX_THREADS,
    Dim,
    LevelMapping,
    Mapping,
    Span,
    SpanAll,
    SpanType,
    seq_level,
)


def batch_supported(cset: ConstraintSet) -> bool:
    """Can every constraint be evaluated as a vectorized batch predicate?

    The third axis of the footprint classification: alongside *where* a
    constraint reads (level/block/warp/opaque), each built-in constraint
    declares *how* it can be evaluated over a whole candidate matrix
    (:meth:`Constraint.batch_satisfied`).  The vectorized engine is only
    eligible when every constraint — hard and soft — has a batch path;
    one opaque constraint sends the search back to the walk, the same
    containment rule the tables apply per family.
    """
    return all(has_batch_predicate(c) for c in cset.constraints)


def span_options_for_levels(
    cset: ConstraintSet, num_levels: int
) -> Tuple[Tuple[SpanType, ...], ...]:
    """Per-level span options, in the search's enumeration order.

    Levels under a hard Span(all) requirement get ``(SpanAll(),)``; the
    rest get ``(Span(1), SpanAll())``.  Both the reference enumeration and
    the staged walk read this so their candidate spaces stay identical.
    """
    span_all = cset.span_all_levels()
    options: List[Tuple[SpanType, ...]] = []
    for level in range(num_levels):
        if level in span_all:
            options.append((SpanAll(),))
        else:
            options.append((Span(1), SpanAll()))
    return tuple(options)


@dataclass(frozen=True)
class SpanChoice:
    """One span option at a fixed (level, dim, block size)."""

    span: SpanType
    hard_ok: bool
    #: Individual weights of the satisfied soft constraints at this level
    #: (kept unsummed so the final score can be fsum'd exactly).
    weights: Tuple[float, ...]
    weight_sum: float
    #: This level's factor of Mapping.dop at the analysis sizes.
    dop: int


@dataclass(frozen=True)
class LevelCell:
    """All span choices at one (level, dim, block size) grid point."""

    choices: Tuple[SpanChoice, ...]
    #: Max weight over hard-feasible choices (0.0 when none are feasible).
    max_weight: float
    #: Number of hard-feasible span choices.
    feasible_spans: int


def _probe(num_levels: int, level: int, lm: LevelMapping) -> Mapping:
    """A mapping that exercises exactly one level (others sequential)."""
    levels = [seq_level() for _ in range(num_levels)]
    levels[level] = lm
    return Mapping(tuple(levels))


def _dop_factor(span: SpanType, block_size: int, size: int) -> int:
    """One level's contribution to Mapping.dop (mirrors its formulas)."""
    if isinstance(span, Span):
        return max(1, math.ceil(size / span.n))
    # SpanAll (Split/Seq never appear in the search's candidate space).
    return min(block_size, max(1, size))


class ConstraintTables:
    """Precomputed satisfaction tables for one search invocation.

    Build once per ``(cset, num_levels, sizes, block_sizes)``; the staged
    search then walks the candidate tree consulting only these tables.
    """

    def __init__(
        self,
        cset: ConstraintSet,
        num_levels: int,
        sizes: Tuple[int, ...],
        block_sizes: Tuple[int, ...],
    ) -> None:
        self.num_levels = num_levels
        self.sizes = sizes
        self.block_sizes = block_sizes
        self.span_options = span_options_for_levels(cset, num_levels)

        level_hard: List[List[Constraint]] = [[] for _ in range(num_levels)]
        level_soft: List[List[Constraint]] = [[] for _ in range(num_levels)]
        self.block_hard: List[Constraint] = []
        self.block_soft: List[Constraint] = []
        self.warp_hard: List[Constraint] = []
        self.warp_soft: List[Constraint] = []
        self.opaque: List[Constraint] = []
        #: A hard constraint no candidate can satisfy (e.g. a Span(all)
        #: requirement on a level beyond the nest depth).
        self.always_infeasible = False

        for c in cset.constraints:
            fp = c.footprint()
            if fp is None:
                self.opaque.append(c)
            elif fp[0] == "level":
                if fp[1] >= num_levels:
                    # Out-of-range levels are unsatisfiable for every
                    # built-in constraint (satisfied_by returns False).
                    if c.hard:
                        self.always_infeasible = True
                    continue
                (level_hard if c.hard else level_soft)[fp[1]].append(c)
            elif fp[0] == "block":
                (self.block_hard if c.hard else self.block_soft).append(c)
            elif fp[0] == "warp" and isinstance(c, AvoidDivergence):
                (self.warp_hard if c.hard else self.warp_soft).append(c)
            else:
                self.opaque.append(c)

        #: Bound pruning with combinatorial feasibility counting is only
        #: exact when hard feasibility factorizes per level.
        self.hard_level_only = (
            not self.block_hard
            and not self.warp_hard
            and not any(c.hard for c in self.opaque)
        )

        #: Whether the vectorized batch engine can evaluate this set
        #: (every constraint carries a ``batch_satisfied`` path).
        self.batch_supported = batch_supported(cset)

        # Per-(level, dim, size) cells.
        self.cells: Dict[Tuple[int, Dim, int], LevelCell] = {}
        self.level_dim_max: Dict[Tuple[int, Dim], float] = {}
        dims = list(Dim)[:num_levels]
        for level in range(num_levels):
            size_hint = sizes[level] if level < len(sizes) else 1
            for dim in dims:
                cap = DIM_MAX_THREADS[dim]
                dim_max = 0.0
                for bsize in block_sizes:
                    if bsize > cap:
                        continue
                    choices = []
                    for span in self.span_options[level]:
                        lm = LevelMapping(dim, bsize, span)
                        probe = _probe(num_levels, level, lm)
                        hard_ok = all(
                            c.satisfied_by(probe, sizes)
                            for c in level_hard[level]
                        )
                        weights = tuple(
                            c.weight  # type: ignore[attr-defined]
                            for c in level_soft[level]
                            if c.satisfied_by(probe, sizes)
                        )
                        choices.append(
                            SpanChoice(
                                span=span,
                                hard_ok=hard_ok,
                                weights=weights,
                                weight_sum=math.fsum(weights),
                                dop=_dop_factor(span, bsize, size_hint),
                            )
                        )
                    cell = LevelCell(
                        choices=tuple(choices),
                        max_weight=max(
                            (ch.weight_sum for ch in choices if ch.hard_ok),
                            default=0.0,
                        ),
                        feasible_spans=sum(
                            1 for ch in choices if ch.hard_ok
                        ),
                    )
                    self.cells[(level, dim, bsize)] = cell
                    dim_max = max(dim_max, cell.max_weight)
                self.level_dim_max[(level, dim)] = dim_max

        #: Optimistic weight of everything not determined level-by-level.
        self.cross_optimistic = math.fsum(
            getattr(c, "weight", 0.0)
            for c in self.block_soft + self.warp_soft
        )
        self._block_memo: Dict[int, Tuple[bool, Tuple[float, ...]]] = {}

    @property
    def has_opaque(self) -> bool:
        return bool(self.opaque)

    def block_eval(self, product: int) -> Tuple[bool, Tuple[float, ...]]:
        """(hard ok, satisfied soft weights) for a threads-per-block value."""
        cached = self._block_memo.get(product)
        if cached is not None:
            return cached
        if not self.block_hard and not self.block_soft:
            result = (True, ())
        else:
            probe = Mapping((LevelMapping(Dim.X, product, Span(1)),))
            hard_ok = all(
                c.satisfied_by(probe, self.sizes) for c in self.block_hard
            )
            weights = tuple(
                c.weight  # type: ignore[attr-defined]
                for c in self.block_soft
                if c.satisfied_by(probe, self.sizes)
            )
            result = (hard_ok, weights)
        self._block_memo[product] = result
        return result

    def warp_eval(
        self, dims: Sequence[Dim], bsizes: Sequence[int]
    ) -> Tuple[bool, Tuple[float, ...]]:
        """(hard ok, satisfied soft weights) of the warp constraints.

        ``dims``/``bsizes`` are the per-level assignments of a complete
        size prefix; spans never matter (all search candidates are
        parallel at every level).  Mirrors
        :meth:`Mapping.varies_within_warp` — asserted equivalent in
        ``tests/analysis/test_search_equivalence.py``.
        """
        if not self.warp_hard and not self.warp_soft:
            return (True, ())
        varies = [False] * self.num_levels
        for level in range(self.num_levels):
            if bsizes[level] <= 1:
                continue
            stride = 1
            for other in range(self.num_levels):
                if dims[other] < dims[level]:
                    stride *= bsizes[other]
            varies[level] = stride < WARP_SIZE
        def satisfied(c: AvoidDivergence) -> bool:
            return not any(
                level < self.num_levels and varies[level]
                for level in c.levels
            )
        hard_ok = all(satisfied(c) for c in self.warp_hard)  # type: ignore[arg-type]
        weights = tuple(
            c.weight  # type: ignore[attr-defined]
            for c in self.warp_soft
            if satisfied(c)  # type: ignore[arg-type]
        )
        return (hard_ok, weights)

    @staticmethod
    def build(
        cset: ConstraintSet,
        num_levels: int,
        sizes: Sequence[int],
        block_sizes: Sequence[int],
    ) -> "ConstraintTables":
        return ConstraintTables(
            cset, num_levels, tuple(sizes), tuple(block_sizes)
        )
