"""Mapping parameters: logical dimensions, block sizes, and span types.

A mapping decision assigns each nest level three parameters (Section IV-A):

* **Dimension** — a logical dimension (x, y, z, w, …).  Dimension x is the
  fastest-varying by convention; threads with adjacent x indices are
  adjacent in a warp, which is what makes x the coalescing-friendly
  dimension.
* **Block size** — threads for that dimension within one CUDA block.
* **Degree-of-parallelism control** — one of:

  - ``Span(n)``: each thread covers ``n`` points of the level's index
    domain (``Span(1)`` is full parallelization);
  - ``Span(all)``: one block covers the entire dimension (required when
    the level needs global synchronization or its size is launch-dynamic);
  - ``Split(k)``: a ``Span(all)`` level split into ``k`` blocks at the cost
    of a combiner kernel (inter-block synchronization);
  - ``Seq``: the level is executed sequentially inside each thread.  This
    is not in the paper's parameter table but is how its *1D mapping*
    baseline ("ignore all but one level of parallelism") is expressed in
    our parameter space.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..config import MAX_BLOCK_SIZE
from ..errors import MappingError


class Dim(enum.IntEnum):
    """Logical dimensions; lower values vary faster within a warp."""

    X = 0
    Y = 1
    Z = 2
    W = 3
    V = 4

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


#: CUDA's physical limit per dimension index (x, y ordered like Dim).
#: Logical dims beyond the third are linearized into z by codegen, so they
#: inherit z's limit.
DIM_MAX_THREADS = {Dim.X: 1024, Dim.Y: 1024, Dim.Z: 64, Dim.W: 64, Dim.V: 64}


@dataclass(frozen=True)
class Span:
    """Each thread covers ``n`` points of the index domain."""

    n: int = 1

    def __post_init__(self) -> None:
        if self.n < 1:
            raise MappingError(f"Span factor must be >= 1, got {self.n}")

    def __str__(self) -> str:
        return f"span({self.n})"


@dataclass(frozen=True)
class SpanAll:
    """A single block covers the whole dimension (enables block-local sync)."""

    def __str__(self) -> str:
        return "span(all)"


@dataclass(frozen=True)
class Split:
    """A Span(all) dimension split into ``k`` blocks plus a combiner kernel."""

    k: int

    def __post_init__(self) -> None:
        if self.k < 2:
            raise MappingError(f"Split factor must be >= 2, got {self.k}")

    def __str__(self) -> str:
        return f"split({self.k})"


@dataclass(frozen=True)
class Seq:
    """The level runs sequentially within each thread (no parallelism)."""

    def __str__(self) -> str:
        return "seq"


SpanType = Union[Span, SpanAll, Split, Seq]


def span_to_dict(span: SpanType) -> Dict[str, int]:
    """Serialize one span parameter to a plain JSON-able dict."""
    if isinstance(span, Span):
        return {"kind": "span", "n": span.n}
    if isinstance(span, SpanAll):
        return {"kind": "span_all"}
    if isinstance(span, Split):
        return {"kind": "split", "k": span.k}
    if isinstance(span, Seq):
        return {"kind": "seq"}
    raise MappingError(f"cannot serialize span {span!r}")


def span_from_dict(data: Dict[str, int]) -> SpanType:
    kind = data.get("kind")
    if kind == "span":
        return Span(int(data["n"]))
    if kind == "span_all":
        return SpanAll()
    if kind == "split":
        return Split(int(data["k"]))
    if kind == "seq":
        return Seq()
    raise MappingError(f"unknown span kind {kind!r}")

#: Integer span codes for the vectorized search's candidate matrices
#: (:mod:`repro.analysis.vectorized`).  Only the two span types the
#: search enumerates get codes; Split/Seq never appear in its space.
SPAN_CODE_SPAN1 = 0
SPAN_CODE_SPANALL = 1


def span_code(span: SpanType) -> int:
    """The integer code of a search-space span (Span(1) or Span(all))."""
    if isinstance(span, Span) and span.n == 1:
        return SPAN_CODE_SPAN1
    if isinstance(span, SpanAll):
        return SPAN_CODE_SPANALL
    raise MappingError(f"span {span} is outside the search candidate space")


@dataclass(frozen=True)
class LevelMapping:
    """The three mapping parameters for one nest level."""

    dim: Optional[Dim]
    block_size: int
    span: SpanType

    def __post_init__(self) -> None:
        if isinstance(self.span, Seq):
            if self.dim is not None:
                raise MappingError("sequential levels carry no dimension")
            if self.block_size != 1:
                raise MappingError("sequential levels have block size 1")
        else:
            if self.dim is None:
                raise MappingError("parallel levels require a dimension")
            if self.block_size < 1:
                raise MappingError(
                    f"block size must be >= 1, got {self.block_size}"
                )

    @property
    def parallel(self) -> bool:
        return not isinstance(self.span, Seq)

    def __str__(self) -> str:
        if not self.parallel:
            return "[seq]"
        return f"[dim{self.dim}, {self.block_size}, {self.span}]"


def seq_level() -> LevelMapping:
    """Convenience constructor for a sequential level."""
    return LevelMapping(None, 1, Seq())


@dataclass(frozen=True)
class Mapping:
    """A complete mapping decision: one :class:`LevelMapping` per level.

    ``levels[0]`` is the outermost pattern level.  Construction validates
    the structural (hard) properties that make a mapping executable at all:
    distinct dimensions across parallel levels and the per-block thread
    limit.  Softer desiderata are the scoring machinery's concern.
    """

    levels: Tuple[LevelMapping, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise MappingError("a mapping needs at least one level")
        dims = [lm.dim for lm in self.levels if lm.parallel]
        if len(dims) != len(set(dims)):
            raise MappingError(f"duplicate logical dimensions in {self}")
        if self.threads_per_block() > MAX_BLOCK_SIZE:
            raise MappingError(
                f"{self.threads_per_block()} threads/block exceeds "
                f"{MAX_BLOCK_SIZE}"
            )
        for lm in self.levels:
            if lm.parallel and lm.block_size > DIM_MAX_THREADS[lm.dim]:
                raise MappingError(
                    f"block size {lm.block_size} exceeds limit for dim {lm.dim}"
                )

    # -- geometry ------------------------------------------------------

    def threads_per_block(self) -> int:
        """Total threads per block (product across parallel levels)."""
        total = 1
        for lm in self.levels:
            if lm.parallel:
                total *= lm.block_size
        return total

    def level(self, index: int) -> LevelMapping:
        return self.levels[index]

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def parallel_levels(self) -> List[int]:
        """Indices of levels that are parallelized."""
        return [i for i, lm in enumerate(self.levels) if lm.parallel]

    def dim_of_level(self, level: int) -> Optional[Dim]:
        return self.levels[level].dim

    def level_of_dim(self, dim: Dim) -> Optional[int]:
        """The level assigned to a logical dimension, if any."""
        for i, lm in enumerate(self.levels):
            if lm.parallel and lm.dim == dim:
                return i
        return None

    def block_shape(self) -> Dict[Dim, int]:
        """Threads per block, keyed by logical dimension."""
        return {
            lm.dim: lm.block_size for lm in self.levels if lm.parallel
        }

    def blocks_per_level(self, sizes: Sequence[int]) -> List[int]:
        """Number of blocks launched along each level's dimension.

        ``sizes`` are the runtime domain sizes, one per level.
        """
        if len(sizes) != len(self.levels):
            raise MappingError(
                f"expected {len(self.levels)} sizes, got {len(sizes)}"
            )
        blocks: List[int] = []
        for lm, size in zip(self.levels, sizes):
            span = lm.span
            if isinstance(span, Seq):
                blocks.append(1)
            elif isinstance(span, Span):
                per_block = lm.block_size * span.n
                blocks.append(max(1, math.ceil(size / per_block)))
            elif isinstance(span, SpanAll):
                blocks.append(1)
            elif isinstance(span, Split):
                blocks.append(span.k)
            else:  # pragma: no cover - exhaustive
                raise MappingError(f"unknown span type {span}")
        return blocks

    def total_blocks(self, sizes: Sequence[int]) -> int:
        result = 1
        for b in self.blocks_per_level(sizes):
            result *= b
        return result

    def total_threads(self, sizes: Sequence[int]) -> int:
        """Threads launched across the whole grid."""
        return self.total_blocks(sizes) * self.threads_per_block()

    # -- degree of parallelism ------------------------------------------

    def dop(self, sizes: Sequence[int]) -> int:
        """Degree of parallelism under this mapping (Section IV-A).

        ``Span(n)`` contributes ``size / n``; ``Span(all)`` contributes its
        *block size* (not the loop size — the paper notes this makes DOP
        insensitive to the 1000-default for unknown sizes); ``Split(k)``
        contributes ``block size * k``; sequential levels contribute 1.
        """
        if len(sizes) != len(self.levels):
            raise MappingError(
                f"expected {len(self.levels)} sizes, got {len(sizes)}"
            )
        dop = 1
        for lm, size in zip(self.levels, sizes):
            span = lm.span
            if isinstance(span, Seq):
                continue
            if isinstance(span, Span):
                dop *= max(1, math.ceil(size / span.n))
            elif isinstance(span, SpanAll):
                dop *= min(lm.block_size, max(1, size))
            elif isinstance(span, Split):
                dop *= min(lm.block_size, max(1, size)) * span.k
        return dop

    # -- iteration structure ---------------------------------------------

    def varies_within_warp(self, level: int, warp_size: int = 32) -> bool:
        """Does this level's index differ between lanes of one warp?

        Lanes are consecutive linear thread ids (x fastest); a dimension
        varies within a warp when the product of the block sizes of all
        faster dimensions is smaller than the warp.  Branch conditions
        depending on warp-varying indices diverge.
        """
        lm = self.levels[level]
        if not lm.parallel or lm.block_size <= 1:
            return False
        stride = 1
        for other in self.levels:
            if other.parallel and other.dim < lm.dim:
                stride *= other.block_size
        return stride < warp_size

    def thread_iterations(self, level: int, size: int) -> int:
        """How many domain points of ``level`` one thread executes."""
        lm = self.levels[level]
        span = lm.span
        if isinstance(span, Seq):
            return max(1, size)
        if isinstance(span, Span):
            return span.n
        if isinstance(span, SpanAll):
            return max(1, math.ceil(size / lm.block_size))
        if isinstance(span, Split):
            return max(1, math.ceil(size / (lm.block_size * span.k)))
        raise MappingError(f"unknown span type {span}")  # pragma: no cover

    def needs_combiner(self) -> bool:
        """True when any level uses Split(k) (a combiner kernel follows)."""
        return any(isinstance(lm.span, Split) for lm in self.levels)

    def with_level(self, index: int, new_level: LevelMapping) -> "Mapping":
        levels = list(self.levels)
        levels[index] = new_level
        return Mapping(tuple(levels))

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A plain JSON-able encoding (recipes and wire artifacts)."""
        return {
            "levels": [
                {
                    "dim": None if lm.dim is None else int(lm.dim),
                    "block_size": lm.block_size,
                    "span": span_to_dict(lm.span),
                }
                for lm in self.levels
            ]
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Mapping":
        levels = []
        for entry in data["levels"]:
            dim = entry.get("dim")
            levels.append(
                LevelMapping(
                    dim=None if dim is None else Dim(int(dim)),
                    block_size=int(entry["block_size"]),
                    span=span_from_dict(entry["span"]),
                )
            )
        return cls(tuple(levels))

    def __str__(self) -> str:
        return " ".join(
            f"L{i}{lm}" for i, lm in enumerate(self.levels)
        )
