"""Human-readable explanations of mapping decisions.

The search returns a winner; this module answers *why*: which soft
constraints the chosen mapping satisfies (and what each contributed to the
score), which it sacrifices, and how the winner compares to the named
baseline strategies.  Exposed through ``python -m repro map --explain``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import ReproError
from .analyzer import KernelAnalysis
from .constraints import Constraint
from .mapping import Mapping
from .scoring import hard_feasible, score_mapping
from .search import SearchResult
from .strategies import FIXED_STRATEGIES


@dataclass
class ConstraintVerdict:
    """One constraint's outcome under a mapping."""

    description: str
    hard: bool
    satisfied: bool
    weight: float = 0.0


@dataclass
class MappingExplanation:
    """Everything the report renders for one mapping decision."""

    mapping: Mapping
    score: Optional[float]
    max_score: float
    verdicts: List[ConstraintVerdict] = field(default_factory=list)
    #: (strategy name, score or None) comparisons.
    baselines: List[tuple] = field(default_factory=list)
    #: (strategy name, error message) for baselines that failed to build.
    baseline_errors: List[tuple] = field(default_factory=list)
    #: Telemetry from the search that chose this mapping, when available.
    search: Optional[SearchResult] = None

    @property
    def satisfied_weight(self) -> float:
        return sum(
            v.weight for v in self.verdicts if v.satisfied and not v.hard
        )

    @property
    def sacrificed(self) -> List[ConstraintVerdict]:
        return [v for v in self.verdicts if not v.satisfied and not v.hard]

    def render(self) -> str:
        lines = [f"mapping: {self.mapping}"]
        if self.score is None:
            lines.append("INFEASIBLE: violates a hard constraint")
        else:
            pct = (
                100.0 * self.score / self.max_score
                if self.max_score
                else 0.0
            )
            lines.append(
                f"score: {self.score:.4g} of {self.max_score:.4g} "
                f"({pct:.0f}% of attainable weight)"
            )
        lines.append("")
        lines.append("constraints:")
        for v in sorted(
            self.verdicts, key=lambda v: (-v.hard, -v.weight)
        ):
            mark = "ok " if v.satisfied else "MISS" if not v.hard else "VIOLATED"
            kind = "hard" if v.hard else "soft"
            weight = f" (w={v.weight:.3g})" if not v.hard else ""
            lines.append(f"  [{mark:>4}] [{kind}] {v.description}{weight}")
        if self.baselines or self.baseline_errors:
            lines.append("")
            lines.append("baseline strategies at these sizes:")
            for name, score in self.baselines:
                shown = "infeasible" if score is None else f"{score:.4g}"
                lines.append(f"  {name:<22} score {shown}")
            for name, error in self.baseline_errors:
                lines.append(f"  {name:<22} unavailable ({error})")
        if self.search is not None:
            lines.append("")
            lines.append("search telemetry:")
            lines.extend("  " + line for line in render_telemetry(self.search))
        return "\n".join(lines)


def render_telemetry(result: SearchResult) -> List[str]:
    """Human-readable lines for a :class:`SearchResult`'s diagnostics.

    Renders :meth:`SearchResult.telemetry` — the same dict the metrics
    registry and provenance artifacts consume — so the counters have one
    definition across every reporting surface.
    """
    data = result.telemetry()
    lines = [
        f"strategy: {data['strategy']}"
        + (" (served from cache)" if data["cache_hit"] else ""),
        (
            f"candidates: {data['candidates_total']} enumerated, "
            f"{data['candidates_feasible']} feasible"
        ),
        (
            f"work: {data['candidates_scored']} scored, "
            f"{data['candidates_skipped']} skipped via "
            f"{data['nodes_pruned']} pruned subtrees"
        ),
        f"wall time: {data['elapsed_ms']:.3g} ms"
        + (" (original search; cache lookup was ~free)"
           if data["cache_hit"] else ""),
    ]
    if data.get("batch_shape"):
        rows, axes = data["batch_shape"]
        lines.insert(2, f"batch: {rows} x {axes} candidate matrix "
                        "(vectorized engine)")
    if data["degraded"]:
        lines.append(f"degraded: {result.degraded_reason}")
    return lines


def explain_mapping(
    analysis: KernelAnalysis,
    mapping: Mapping,
    sizes: Optional[Sequence[int]] = None,
    compare_baselines: bool = True,
    search_result: Optional[SearchResult] = None,
) -> MappingExplanation:
    """Account for a mapping's score constraint by constraint."""
    if sizes is None:
        sizes = analysis.level_sizes()
    sizes_t = tuple(sizes)
    cset = analysis.constraints

    verdicts = [
        ConstraintVerdict(
            description=c.description,
            hard=c.hard,
            satisfied=c.satisfied_by(mapping, sizes_t),
            weight=getattr(c, "weight", 0.0),
        )
        for c in cset.constraints
    ]
    explanation = MappingExplanation(
        mapping=mapping,
        score=score_mapping(mapping, cset, sizes_t),
        max_score=cset.max_score(),
        verdicts=verdicts,
        search=search_result,
    )
    if compare_baselines:
        for name in FIXED_STRATEGIES:
            try:
                baseline = analysis.strategy_mapping(name)
            except ReproError as exc:
                # A fixed strategy can be structurally inapplicable to
                # this kernel (e.g. not enough nest levels); record the
                # reason instead of silently dropping the row, and let
                # anything that is not a pipeline error propagate.
                explanation.baseline_errors.append(
                    (name, f"{type(exc).__name__}: {exc}")
                )
                continue
            explanation.baselines.append(
                (name, score_mapping(baseline, cset, sizes_t))
            )
    return explanation
