"""End-to-end analysis facade: program -> per-kernel mapping decisions.

This ties the pipeline of Section IV together:

1. canonicalize each kernel nest (scalar let-inlining),
2. extract the level structure (:mod:`nesting`),
3. collect access sites (:mod:`access`),
4. generate constraints (:mod:`constraints`),
5. search for the best mapping and control DOP (:mod:`search`, :mod:`dop`).

The result objects carry every intermediate so the optimizers, code
generator, and cost model all work from the same facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import AnalysisError
from ..ir.patterns import PatternExpr, Program
from ..observability import get_metrics, get_tracer
from .access import AccessSummary, collect_accesses, inline_scalar_binds
from .constraints import ConstraintSet, generate_constraints
from .dop import DopWindow
from .mapping import Mapping
from .nesting import Nest, build_nest, outermost_patterns
from .search import SearchResult, search_mapping
from .shapes import SizeEnv
from .strategies import fixed_strategy


@dataclass
class KernelAnalysis:
    """Everything the later stages need to know about one kernel."""

    root: PatternExpr  # canonicalized nest
    original_root: PatternExpr
    nest: Nest
    accesses: AccessSummary
    constraints: ConstraintSet
    env: SizeEnv

    @property
    def depth(self) -> int:
        return self.nest.depth

    def level_sizes(self) -> List[int]:
        return self.nest.level_sizes()

    def select_mapping(
        self,
        window: Optional[DopWindow] = None,
        keep_all: bool = False,
        use_cache: bool = True,
        budget=None,
        engine: Optional[str] = None,
    ) -> SearchResult:
        """Run the Algorithm-1 search for this kernel (MultiDim strategy).

        The staged search memoizes whole results, so shape sweeps and
        repeated kernels return instantly (``use_cache=False`` forces a
        fresh walk; the result is identical either way).  ``budget``
        bounds the walk; on exhaustion the result degrades to the
        conservative fallback mapping.  ``engine`` forces a search
        engine (``None`` defers to ``REPRO_SEARCH_ENGINE`` / auto).
        """
        return search_mapping(
            self.depth,
            self.constraints,
            self.level_sizes(),
            window=window,
            keep_all=keep_all,
            use_cache=use_cache,
            budget=budget,
            engine=engine,
        )

    def strategy_mapping(self, name: str) -> Mapping:
        """Instantiate a fixed baseline strategy for this kernel's nest."""
        return fixed_strategy(name, self.level_sizes())


@dataclass
class ProgramAnalysis:
    """Per-kernel analyses for a whole program, in kernel order."""

    program: Program
    kernels: List[KernelAnalysis] = field(default_factory=list)
    env: SizeEnv = field(default_factory=SizeEnv)

    def kernel(self, index: int = 0) -> KernelAnalysis:
        return self.kernels[index]

    def __len__(self) -> int:
        return len(self.kernels)


def _record_constraint_metrics(cset: ConstraintSet) -> None:
    """Count constraints by the Table-II taxonomy (Hard/Soft x scope)."""
    metrics = get_metrics()
    if not metrics.enabled:
        return
    for c in cset.constraints:
        kind = "hard" if c.hard else "soft"
        metrics.counter(f"constraints.{kind}.{c.scope}").inc()


def analyze_kernel(root: PatternExpr, env: Optional[SizeEnv] = None) -> KernelAnalysis:
    """Analyze one kernel nest end to end (canonicalize, nest, accesses,
    constraints)."""
    if env is None:
        env = SizeEnv()
    canonical = inline_scalar_binds(root)
    nest = build_nest(canonical, env)
    accesses = collect_accesses(canonical, env, inline=False)
    with get_tracer().span("constraints", depth=nest.depth) as span:
        cset = generate_constraints(nest, accesses, env)
        span.set(count=len(cset.constraints))
    _record_constraint_metrics(cset)
    return KernelAnalysis(
        root=canonical,
        original_root=root,
        nest=nest,
        accesses=accesses,
        constraints=cset,
        env=env,
    )


def analyze_program(program: Program, **size_overrides: int) -> ProgramAnalysis:
    """Analyze every kernel of a program under its size hints.

    Keyword overrides update the program's declared size hints, which is
    how the benchmark harness sweeps input shapes without rebuilding IR.
    """
    from ..observability import instrumented_stage

    with instrumented_stage("analysis", program=program.name) as scope:
        span = scope.span
        env = SizeEnv.for_program(program, **size_overrides)
        roots = outermost_patterns(program.result)
        if not roots:
            raise AnalysisError(
                f"program {program.name} has no parallel patterns"
            )
        kernels = [analyze_kernel(root, env) for root in roots]
        span.set(kernels=len(kernels))
    return ProgramAnalysis(program=program, kernels=kernels, env=env)
