"""Mapping scoring against a constraint set (Section IV-C/D).

A candidate mapping's score is the sum of the derived weights of the soft
constraints it satisfies; mappings violating any hard constraint score
``None`` (infeasible).  Scores are also what Figure 17 plots against
simulated performance.

Two performance notes, load-bearing for the staged search:

* scores are combined with :func:`math.fsum`, so they are exact and
  independent of summation order — the table-driven search accumulates
  the same weights in a different order and must land on the identical
  float;
* ``sizes`` is expected to be a tuple; callers that loop over candidates
  hoist the conversion out of the loop (a per-candidate ``tuple(sizes)``
  used to dominate the reference path's allocation profile).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .constraints import Constraint, ConstraintSet
from .mapping import Mapping


@dataclass(frozen=True)
class ScoredMapping:
    """A mapping together with its score and DOP at analysis sizes."""

    mapping: Mapping
    score: float
    dop: int

    def normalized_score(self, cset: ConstraintSet) -> float:
        """Score scaled to [0, 1] by the constraint set's maximum."""
        maximum = cset.max_score()
        return self.score / maximum if maximum > 0 else 0.0


def _as_tuple(sizes: Sequence[int]) -> Tuple[int, ...]:
    # Callers should pass tuples (hoisted out of candidate loops); this
    # guard keeps ad-hoc list callers working without re-allocating for
    # the common tuple case.
    return sizes if isinstance(sizes, tuple) else tuple(sizes)


def hard_feasible(
    mapping: Mapping, cset: ConstraintSet, sizes: Sequence[int]
) -> bool:
    """Does the mapping satisfy every hard constraint?"""
    sizes_t = _as_tuple(sizes)
    return all(c.satisfied_by(mapping, sizes_t) for c in cset.hard)


def score_mapping(
    mapping: Mapping, cset: ConstraintSet, sizes: Sequence[int]
) -> Optional[float]:
    """Score a mapping; ``None`` when a hard constraint is violated."""
    sizes_t = _as_tuple(sizes)
    if not hard_feasible(mapping, cset, sizes_t):
        return None
    return math.fsum(
        getattr(c, "weight", 0.0)
        for c in cset.soft
        if c.satisfied_by(mapping, sizes_t)
    )


def satisfied_constraints(
    mapping: Mapping, cset: ConstraintSet, sizes: Sequence[int]
) -> List[Constraint]:
    """The soft constraints a mapping satisfies (diagnostics, Fig. 17)."""
    sizes_t = _as_tuple(sizes)
    return [c for c in cset.soft if c.satisfied_by(mapping, sizes_t)]
