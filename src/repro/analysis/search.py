"""Brute-force mapping search (Algorithm 1 of the paper).

Candidates are the cross product, per nest level, of

* a logical dimension (distinct per level; x is fastest-varying),
* a block size from ``{1, 2, 4, ..., 1024}``,
* a span type from ``{Span(1), Span(all)}`` (Span(n)/Split(k) are
  introduced afterwards by :func:`~repro.analysis.dop.control_dop`).

Hard constraints prune candidates; the rest are scored by the satisfied
soft-constraint weights.  Ties break toward higher DOP, then by a seeded
random choice (the paper picks randomly; seeding keeps runs reproducible).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..config import BLOCK_SIZE_CANDIDATES, MAX_BLOCK_SIZE, TIE_BREAK_SEED
from ..errors import SearchError
from .constraints import ConstraintSet
from .dop import DopWindow, control_dop
from .mapping import DIM_MAX_THREADS, Dim, LevelMapping, Mapping, Span, SpanAll
from .scoring import ScoredMapping, score_mapping


@dataclass
class SearchResult:
    """The winning mapping plus diagnostics about the explored space."""

    mapping: Mapping
    score: float
    dop: int
    candidates_total: int
    candidates_feasible: int
    #: Every feasible candidate with its score (populated only when
    #: ``keep_all=True``; used by the Fig. 17 scatter experiment).
    all_scored: List[ScoredMapping] = field(default_factory=list)


def enumerate_candidates(
    num_levels: int,
    cset: ConstraintSet,
    block_sizes: Sequence[int] = BLOCK_SIZE_CANDIDATES,
) -> Iterator[Mapping]:
    """Yield structurally valid candidate mappings.

    Enumeration applies the cheap hard limits inline (distinct dims,
    per-dim and per-block thread caps, forced Span(all) levels) so the
    scorer only sees plausible mappings.
    """
    span_all = cset.span_all_levels()
    dims = list(Dim)[:num_levels]
    span_options_per_level: List[Tuple[object, ...]] = []
    for level in range(num_levels):
        if level in span_all:
            span_options_per_level.append((SpanAll(),))
        else:
            span_options_per_level.append((Span(1), SpanAll()))

    for dim_perm in itertools.permutations(dims, num_levels):
        for sizes in itertools.product(block_sizes, repeat=num_levels):
            product = 1
            valid = True
            for dim, size in zip(dim_perm, sizes):
                if size > DIM_MAX_THREADS[dim]:
                    valid = False
                    break
                product *= size
            if not valid or product > MAX_BLOCK_SIZE:
                continue
            for spans in itertools.product(*span_options_per_level):
                yield Mapping(
                    tuple(
                        LevelMapping(dim, size, span)
                        for dim, size, span in zip(dim_perm, sizes, spans)
                    )
                )


def search_mapping(
    num_levels: int,
    cset: ConstraintSet,
    sizes: Sequence[int],
    window: Optional[DopWindow] = None,
    block_sizes: Sequence[int] = BLOCK_SIZE_CANDIDATES,
    keep_all: bool = False,
    seed: int = TIE_BREAK_SEED,
) -> SearchResult:
    """Run Algorithm 1 and return the selected mapping.

    Args:
        num_levels: nest depth of the kernel.
        cset: constraints from :func:`generate_constraints`.
        sizes: representative domain size per level (analysis hints).
        window: device DOP window for ControlDOP (defaults to K20c's).
        keep_all: retain every feasible candidate with its score
            (needed by the score-vs-performance experiment).
        seed: tie-break seed (the paper breaks final ties randomly).
    """
    if window is None:
        window = DopWindow()
    rng = random.Random(seed)
    sizes = list(sizes)
    if len(sizes) != num_levels:
        raise SearchError(
            f"expected {num_levels} level sizes, got {len(sizes)}"
        )
    if num_levels >= 4 and block_sizes is BLOCK_SIZE_CANDIDATES:
        # The space is exponential in nest depth (Section IV-D); beyond
        # three levels a power-of-4 block grid keeps brute force under a
        # second while still spanning the useful shapes.
        block_sizes = (1, 4, 16, 64, 256, 1024)

    best: Optional[Mapping] = None
    best_score = -1.0
    best_dop = -1
    total = 0
    feasible = 0
    all_scored: List[ScoredMapping] = []

    for mapping in enumerate_candidates(num_levels, cset, block_sizes):
        total += 1
        score = score_mapping(mapping, cset, sizes)
        if score is None:
            continue
        feasible += 1
        dop = mapping.dop(sizes)
        if keep_all:
            all_scored.append(ScoredMapping(mapping, score, dop))
        if score > best_score:
            best, best_score, best_dop = mapping, score, dop
        elif score == best_score:
            if dop > best_dop:
                best, best_dop = mapping, dop
            elif dop == best_dop and rng.random() < 0.5:
                best = mapping

    if best is None:
        raise SearchError("no feasible mapping satisfies the hard constraints")

    adjusted = control_dop(best, sizes, window, cset.span_all_levels())
    return SearchResult(
        mapping=adjusted,
        score=best_score,
        dop=adjusted.dop(sizes),
        candidates_total=total,
        candidates_feasible=feasible,
        all_scored=all_scored,
    )
