"""Mapping search (Algorithm 1 of the paper), staged and pruned.

Candidates are the cross product, per nest level, of

* a logical dimension (distinct per level; x is fastest-varying),
* a block size from ``{1, 2, 4, ..., 1024}``,
* a span type from ``{Span(1), Span(all)}`` (Span(n)/Split(k) are
  introduced afterwards by :func:`~repro.analysis.dop.control_dop`).

Hard constraints prune candidates; the rest are scored by the satisfied
soft-constraint weights.  Ties break toward higher DOP, then toward
lexicographically larger block sizes (outermost level first), then by a
seeded reservoir sample over the tied candidates (the paper picks
randomly; seeding keeps runs reproducible, and reservoir sampling keeps
the pick uniform however many candidates tie).

Three engines share that contract:

* :func:`search_mapping_reference` — the original exhaustive loop.  It
  enumerates every structurally valid candidate and calls every
  constraint's ``satisfied_by`` per candidate.  Retained as the oracle
  for equivalence tests, and dispatched directly for tiny candidate
  spaces where any staging overhead exceeds the walk.
* the pruned walk (:func:`_search_pruned`) — constraint satisfaction is
  precomputed into per-``(level, dim, block_size, span)`` tables
  (:mod:`repro.analysis.tables`); enumeration is a level-by-level
  branch-and-bound walk that discards subtrees which violate a hard
  constraint or whose optimistic score cannot reach the incumbent
  (candidate counts for skipped subtrees are reconstructed exactly by a
  small counting DP, so the telemetry matches the reference).
* the vectorized batch engine (:mod:`repro.analysis.vectorized`) — the
  whole candidate space as integer-coded NumPy matrices, every
  constraint one vectorized predicate, the tie-break replayed from a
  packed prefix-maximum.  Fastest for exhaustive (cold) searches over
  deep nests; declines constraint sets without batch predicates.

:func:`search_mapping` is the staged, memoized pipeline over all three:
memo lookup, then engine selection (``engine="auto"`` picks by
enumerated candidate count — tiny spaces take the plain loop, large
batch-supported spaces the vectorized engine, everything else the
pruned walk; ``REPRO_SEARCH_ENGINE`` or the ``engine=`` argument force
one), with graceful fallback when a forced engine cannot run.  All
engines return byte-identical results.

Equivalence rests on two invariants: every engine visits (or accounts
for) candidates in the reference's enumeration order, and pruning is
*strict* — only subtrees whose best possible score is strictly below the
incumbent are skipped, so every potential tie still reaches the
reservoir sampler and consumes the same random draws.
"""

from __future__ import annotations

import itertools
import math
import os
import random
import time
from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional, Sequence, Tuple

from ..config import (
    BLOCK_SIZE_CANDIDATES,
    MAX_BLOCK_SIZE,
    SEARCH_ENGINE_ENV,
    SEARCH_ENGINES,
    SEARCH_SMALL_SPACE_CANDIDATES,
    TIE_BREAK_SEED,
)
from ..errors import ReproError, SearchError
from ..observability import get_metrics, get_tracer, instrumented_stage
from ..resilience.budget import Budget
from ..resilience.faults import maybe_inject
from .cache import get_search_cache, search_cache_key
from .constraints import ConstraintSet
from .dop import DopWindow, control_dop
from .mapping import DIM_MAX_THREADS, Dim, LevelMapping, Mapping, seq_level
from .scoring import ScoredMapping, hard_feasible, score_mapping
from .tables import ConstraintTables, batch_supported, span_options_for_levels


class _BudgetStop(Exception):
    """Internal: unwinds the candidate walk when the budget runs out."""


@dataclass
class SearchResult:
    """The winning mapping plus diagnostics about the explored space."""

    mapping: Mapping
    score: float
    dop: int
    candidates_total: int
    candidates_feasible: int
    #: Every feasible candidate with its score (populated only when
    #: ``keep_all=True``; used by the Fig. 17 scatter experiment).
    all_scored: List[ScoredMapping] = field(default_factory=list)
    # -- search telemetry ------------------------------------------------
    #: Candidates whose score was individually evaluated.
    candidates_scored: int = 0
    #: Candidates accounted for without individual evaluation (their
    #: subtree was pruned by a hard violation or the score bound).
    candidates_skipped: int = 0
    #: Tree nodes cut by branch-and-bound (each covers many candidates).
    nodes_pruned: int = 0
    #: True when this result was served from the cross-sweep memo.
    cache_hit: bool = False
    #: Wall time of the search that produced this result.
    elapsed_ms: float = 0.0
    #: "pruned", "reference", "reference-fallback" (opaque constraints),
    #: or "fallback" (budget exhausted / absorbed fault).
    strategy: str = "pruned"
    #: True when the search gave up and returned the conservative
    #: fallback mapping instead of the Algorithm 1 winner.
    degraded: bool = False
    #: Why the search degraded (empty for full-fidelity results).
    degraded_reason: str = ""
    #: ``(rows, levels)`` of the candidate matrix when the vectorized
    #: engine ran; None for the walking engines.
    batch_shape: Optional[Tuple[int, int]] = None

    def telemetry(self) -> dict:
        """The canonical diagnostics view of this result.

        Single source for every reporting surface: the metrics registry
        (:func:`_record_search_metrics`), the ``--explain`` rendering
        (:func:`repro.analysis.explain.render_telemetry`), and the
        provenance artifact — so search counters are defined once, not
        duplicated per format.
        """
        return {
            "strategy": self.strategy,
            "cache_hit": self.cache_hit,
            "candidates_total": self.candidates_total,
            "candidates_feasible": self.candidates_feasible,
            "candidates_scored": self.candidates_scored,
            "candidates_skipped": self.candidates_skipped,
            "nodes_pruned": self.nodes_pruned,
            "elapsed_ms": self.elapsed_ms,
            "degraded": self.degraded,
            # getattr: results unpickled from artifacts written before the
            # field existed must still render.  Rendered as a list so the
            # dict is JSON-round-trip stable (provenance artifacts compare
            # loaded against built).
            "batch_shape": (
                list(self.batch_shape)
                if getattr(self, "batch_shape", None) is not None
                else None
            ),
        }


def _effective_block_sizes(
    num_levels: int, block_sizes: Sequence[int]
) -> Tuple[int, ...]:
    if num_levels >= 4 and block_sizes is BLOCK_SIZE_CANDIDATES:
        # The space is exponential in nest depth (Section IV-D); beyond
        # three levels a power-of-4 block grid keeps the search under a
        # second while still spanning the useful shapes.
        return (1, 4, 16, 64, 256, 1024)
    return tuple(block_sizes)


def resolve_engine(engine: Optional[str]) -> str:
    """Normalize an engine request (argument > environment > ``auto``).

    ``engine=None`` defers to the ``REPRO_SEARCH_ENGINE`` environment
    variable, which defers to ``auto``.  Unknown names raise
    :class:`~repro.errors.SearchError` — a typo'd override failing loudly
    beats a sweep silently run on the wrong engine.
    """
    if engine is None:
        engine = os.environ.get(SEARCH_ENGINE_ENV) or "auto"
    engine = engine.strip().lower()
    if engine not in SEARCH_ENGINES:
        raise SearchError(
            f"unknown search engine {engine!r}; expected one of "
            f"{', '.join(SEARCH_ENGINES)}"
        )
    return engine


def count_candidates(
    num_levels: int,
    cset: ConstraintSet,
    block_sizes: Sequence[int] = BLOCK_SIZE_CANDIDATES,
) -> int:
    """Exact size of the enumerated candidate space, without enumerating.

    The same counting DP the pruned walk uses for skipped subtrees,
    summed over every dimension permutation: structurally valid block
    size tuples (per-dim caps, per-block product cap) times the span
    combinations.  Auto engine selection reads this to route tiny spaces
    to the plain exhaustive loop, whose fixed costs are the lowest.
    """
    block_sizes = tuple(block_sizes)
    span_mult = 1
    for options in span_options_for_levels(cset, num_levels):
        span_mult *= len(options)
    dims = list(Dim)[:num_levels]
    total = 0
    for dim_perm in itertools.permutations(dims, num_levels):
        memo: dict = {}

        def tuples(k: int, budget: int) -> int:
            if k == num_levels:
                return 1
            key = (k, budget)
            hit = memo.get(key)
            if hit is not None:
                return hit
            cap = DIM_MAX_THREADS[dim_perm[k]]
            count = 0
            for size in block_sizes:
                if size <= cap and size <= budget:
                    count += tuples(k + 1, budget // size)
            memo[key] = count
            return count

        total += tuples(0, MAX_BLOCK_SIZE)
    return total * span_mult


def enumerate_candidates(
    num_levels: int,
    cset: ConstraintSet,
    block_sizes: Sequence[int] = BLOCK_SIZE_CANDIDATES,
) -> Iterator[Mapping]:
    """Yield structurally valid candidate mappings.

    Enumeration applies the cheap hard limits inline (distinct dims,
    per-dim and per-block thread caps, forced Span(all) levels) so the
    scorer only sees plausible mappings.
    """
    dims = list(Dim)[:num_levels]
    span_options_per_level = span_options_for_levels(cset, num_levels)

    for dim_perm in itertools.permutations(dims, num_levels):
        for sizes in itertools.product(block_sizes, repeat=num_levels):
            product = 1
            valid = True
            for dim, size in zip(dim_perm, sizes):
                if size > DIM_MAX_THREADS[dim]:
                    valid = False
                    break
                product *= size
            if not valid or product > MAX_BLOCK_SIZE:
                continue
            for spans in itertools.product(*span_options_per_level):
                yield Mapping(
                    tuple(
                        LevelMapping(dim, size, span)
                        for dim, size, span in zip(dim_perm, sizes, spans)
                    )
                )


class _Incumbent:
    """Best-so-far state with the reservoir tie-break.

    Both search implementations route every feasible candidate through
    :meth:`decide`, in the same enumeration order, so the sequence of
    random draws — and therefore the winner — is identical between them.

    The deterministic tie-break chain is score, then DOP, then
    lexicographically larger per-level block sizes (outermost level
    first): at equal score and parallelism, threads are better spent on
    the outer Span(1) levels than on oversizing a Span(all) level whose
    domain they exceed.  The k-th candidate tying all three replaces the
    incumbent with probability 1/k, which samples uniformly from the tie
    pool (the old ``rng.random() < 0.5`` over-weighted later candidates
    for three-way-or-larger ties).
    """

    __slots__ = ("rng", "mapping", "score", "dop", "sizes", "ties")

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.mapping: Optional[Mapping] = None
        self.score = -1.0
        self.dop = -1
        self.sizes: Tuple[int, ...] = ()
        self.ties = 0

    def decide(self, score: float, dop: int, bsizes: Tuple[int, ...]) -> bool:
        """Should this candidate replace the incumbent?  (Stateful.)"""
        if score > self.score:
            self.score, self.dop, self.sizes, self.ties = score, dop, bsizes, 1
            return True
        if score == self.score and dop >= self.dop:
            if dop > self.dop or bsizes > self.sizes:
                self.dop, self.sizes, self.ties = dop, bsizes, 1
                return True
            if bsizes == self.sizes:
                self.ties += 1
                return self.rng.random() < 1.0 / self.ties
        return False


def _cannot_reach(bound: float, best: float) -> bool:
    """Float-safe strict comparison for pruning.

    The optimistic bound is assembled with plain additions while true
    scores use exact ``fsum``; the slack keeps a bound that merely
    *rounds* below the incumbent from pruning a genuine tie (which would
    desynchronize the reservoir sampler from the reference).
    """
    return bound < best - (abs(best) * 1e-12 + 1e-12)


def _validate(num_levels: int, sizes: Sequence[int]) -> Tuple[int, ...]:
    sizes_t = tuple(sizes)
    if len(sizes_t) != num_levels:
        raise SearchError(
            f"expected {num_levels} level sizes, got {len(sizes_t)}"
        )
    return sizes_t


def _finish(
    inc: _Incumbent,
    cset: ConstraintSet,
    sizes_t: Tuple[int, ...],
    window: DopWindow,
    total: int,
    feasible: int,
    all_scored: List[ScoredMapping],
    scored: int,
    skipped: int,
    nodes_pruned: int,
    strategy: str,
) -> SearchResult:
    if inc.mapping is None:
        raise SearchError("no feasible mapping satisfies the hard constraints")
    adjusted = control_dop(inc.mapping, sizes_t, window, cset.span_all_levels())
    return SearchResult(
        mapping=adjusted,
        score=inc.score,
        dop=adjusted.dop(sizes_t),
        candidates_total=total,
        candidates_feasible=feasible,
        all_scored=all_scored,
        candidates_scored=scored,
        candidates_skipped=skipped,
        nodes_pruned=nodes_pruned,
        strategy=strategy,
    )


def _search_exhaustive(
    num_levels: int,
    cset: ConstraintSet,
    sizes_t: Tuple[int, ...],
    window: DopWindow,
    block_sizes: Tuple[int, ...],
    keep_all: bool,
    seed: int,
    strategy: str,
    budget: Optional[Budget] = None,
) -> SearchResult:
    """The original brute-force loop (shared by the reference entry point
    and the opaque-constraint fallback)."""
    rng = random.Random(seed)
    inc = _Incumbent(rng)
    total = 0
    feasible = 0
    all_scored: List[ScoredMapping] = []

    for mapping in enumerate_candidates(num_levels, cset, block_sizes):
        if budget is not None and not budget.spend():
            raise _BudgetStop()
        total += 1
        score = score_mapping(mapping, cset, sizes_t)
        if score is None:
            continue
        feasible += 1
        dop = mapping.dop(sizes_t)
        if keep_all:
            all_scored.append(ScoredMapping(mapping, score, dop))
        if inc.decide(
            score, dop, tuple(lm.block_size for lm in mapping.levels)
        ):
            inc.mapping = mapping

    return _finish(
        inc, cset, sizes_t, window, total, feasible, all_scored,
        scored=total, skipped=0, nodes_pruned=0, strategy=strategy,
    )


def _fallback_result(
    num_levels: int,
    cset: ConstraintSet,
    sizes_t: Tuple[int, ...],
    window: DopWindow,
    reason: str,
    budget: Optional[Budget] = None,
) -> SearchResult:
    """Degrade to the guaranteed-feasible conservative mapping.

    Raises :class:`~repro.errors.SearchError` only when even the fallback
    violates a hard constraint (the exhaustive search would have raised
    the same error).
    """
    from ..resilience.fallback import (
        conservative_fallback_mapping,
        fallback_score,
    )

    mapping = conservative_fallback_mapping(num_levels, cset, sizes_t, window)
    nodes = budget.nodes_spent if budget is not None else 0
    return SearchResult(
        mapping=mapping,
        score=fallback_score(mapping, cset, sizes_t),
        dop=mapping.dop(sizes_t),
        candidates_total=nodes,
        candidates_feasible=0,
        candidates_skipped=nodes,
        strategy="fallback",
        degraded=True,
        degraded_reason=reason,
    )


def _corrupt_memo_hit(hit: SearchResult, kind: str) -> SearchResult:
    """Apply an injected memo fault to a cache hit (test-only path).

    ``corrupt`` destroys the mapping outright; ``stale`` models an entry
    recorded for a different nest depth (one extra sequential level).
    """
    if kind == "stale":
        try:
            return replace(
                hit, mapping=Mapping(hit.mapping.levels + (seq_level(),))
            )
        except ReproError:  # pragma: no cover - Seq levels always append
            pass
    return replace(hit, mapping=None)


def _valid_memo_hit(
    hit: object,
    num_levels: int,
    cset: ConstraintSet,
    sizes_t: Tuple[int, ...],
) -> bool:
    """Is this cache hit structurally sound for the current query?

    The memo is trusted but verified: a corrupted or stale entry must
    cost one request a recomputation, never a wrong or infeasible
    mapping.
    """
    if not isinstance(hit, SearchResult):
        return False
    mapping = hit.mapping
    if not isinstance(mapping, Mapping):
        return False
    if len(mapping.levels) != num_levels:
        return False
    if not math.isfinite(hit.score):
        return False
    return hard_feasible(mapping, cset, sizes_t)


def _record_search_metrics(result: SearchResult) -> None:
    """Publish one search's telemetry into the metrics registry.

    Consumes :meth:`SearchResult.telemetry` — the same dict the
    ``--explain`` rendering uses — so the counters exist in exactly one
    shape.  Cache hits only bump the served counter: their work counters
    describe the original search, which already reported itself.
    """
    metrics = get_metrics()
    if not metrics.enabled:
        return
    data = result.telemetry()
    metrics.counter("search.runs").inc()
    if data["cache_hit"]:
        metrics.counter("search.cache.served").inc()
        return
    metrics.counter("search.candidates.total").inc(data["candidates_total"])
    metrics.counter("search.candidates.feasible").inc(
        data["candidates_feasible"]
    )
    metrics.counter("search.candidates.scored").inc(data["candidates_scored"])
    metrics.counter("search.candidates.skipped").inc(
        data["candidates_skipped"]
    )
    metrics.counter("search.nodes.pruned").inc(data["nodes_pruned"])
    metrics.counter(f"search.strategy.{data['strategy']}").inc()
    metrics.histogram("search.elapsed_ms").observe(data["elapsed_ms"])
    if data["batch_shape"] is not None:
        metrics.histogram("search.batch.candidates").observe(
            data["batch_shape"][0]
        )
    if data["degraded"]:
        metrics.counter("resilience.fallback.activations").inc()


def search_mapping_reference(
    num_levels: int,
    cset: ConstraintSet,
    sizes: Sequence[int],
    window: Optional[DopWindow] = None,
    block_sizes: Sequence[int] = BLOCK_SIZE_CANDIDATES,
    keep_all: bool = False,
    seed: int = TIE_BREAK_SEED,
    budget: Optional[Budget] = None,
) -> SearchResult:
    """Run Algorithm 1 by exhaustive enumeration (the equivalence oracle)."""
    if window is None:
        window = DopWindow()
    block_sizes = _effective_block_sizes(num_levels, block_sizes)
    sizes_t = _validate(num_levels, sizes)
    start = time.perf_counter()
    if budget is not None:
        budget.start()
    with instrumented_stage(
        "search", inject=False, levels=num_levels, mode="reference"
    ):
        try:
            result = _search_exhaustive(
                num_levels, cset, sizes_t, window, block_sizes, keep_all,
                seed, strategy="reference", budget=budget,
            )
        except _BudgetStop:
            result = _fallback_result(
                num_levels, cset, sizes_t, window,
                reason="search budget exhausted (reference enumeration)",
                budget=budget,
            )
    result.elapsed_ms = (time.perf_counter() - start) * 1e3
    _record_search_metrics(result)
    return result


def _search_pruned(
    num_levels: int,
    cset: ConstraintSet,
    sizes_t: Tuple[int, ...],
    window: DopWindow,
    block_sizes: Tuple[int, ...],
    keep_all: bool,
    seed: int,
    tables: ConstraintTables,
    budget: Optional[Budget] = None,
) -> SearchResult:
    """Branch-and-bound over the candidate tree using the tables."""
    # ``budget`` here is the work budget; the walk's positional ``budget``
    # parameter below is the remaining thread-block-size budget.
    work_budget = budget
    # Per-subtree visit/prune instants are high-volume, so they only fire
    # for a detail-mode tracer (``repro trace --detail``); the flag is
    # hoisted so the disabled cost inside the walk is one local check.
    tracer = get_tracer()
    emit_events = tracer.enabled and tracer.detail
    rng = random.Random(seed)
    inc = _Incumbent(rng)
    dims = list(Dim)[:num_levels]
    cells = tables.cells
    span_counts = [len(opts) for opts in tables.span_options]
    cross_opt = tables.cross_optimistic

    total = 0
    feasible = 0
    scored = 0
    skipped = 0
    nodes_pruned = 0
    all_scored: List[ScoredMapping] = []

    # keep_all must retain every feasible candidate, so only subtrees with
    # zero feasible candidates may be skipped; exact feasibility counting
    # for bound-pruned subtrees additionally needs hard feasibility to
    # factorize per level.
    allow_bound_prune = tables.hard_level_only and not keep_all
    allow_leaf_skip = not keep_all

    chosen_cells: List = [None] * num_levels
    chosen_sizes = [0] * num_levels

    for dim_perm in itertools.permutations(dims, num_levels):
        # Optimistic soft weight attainable by levels k.. for this
        # dimension assignment (used in the branch-and-bound test).
        suffix = [0.0] * (num_levels + 1)
        for level in range(num_levels - 1, -1, -1):
            suffix[level] = (
                suffix[level + 1]
                + tables.level_dim_max[(level, dim_perm[level])]
            )

        # Counting DP: candidates in the subtree of a size prefix, as the
        # reference would have enumerated them.  Memoized per remaining
        # block budget (a handful of values).
        memo: dict = {}

        def completions(k: int, budget: int) -> Tuple[int, int]:
            """(total, hard-feasible) candidate counts over levels k.. ."""
            if k == num_levels:
                return (1, 1)
            key = (k, budget)
            hit = memo.get(key)
            if hit is not None:
                return hit
            t_count = f_count = 0
            dim = dim_perm[k]
            cap = DIM_MAX_THREADS[dim]
            for size in block_sizes:
                if size > cap or size > budget:
                    continue
                sub_t, sub_f = completions(k + 1, budget // size)
                t_count += sub_t * span_counts[k]
                f_count += sub_f * cells[(k, dim, size)].feasible_spans
            memo[key] = (t_count, f_count)
            return (t_count, f_count)

        def leaf(span_mult: int, feas_mult: int) -> None:
            nonlocal total, feasible, scored, skipped, nodes_pruned
            product = 1
            for size in chosen_sizes:
                product *= size
            block_ok, block_w = tables.block_eval(product)
            warp_ok, warp_w = tables.warp_eval(dim_perm, chosen_sizes)
            if not (block_ok and warp_ok):
                total += span_mult
                skipped += span_mult
                nodes_pruned += 1
                if emit_events:
                    tracer.instant(
                        "search.prune", kind="block-infeasible",
                        sizes=str(tuple(chosen_sizes)), candidates=span_mult,
                    )
                return
            base_w = block_w + warp_w
            wmax = math.fsum(base_w)
            for cell in chosen_cells:
                wmax += cell.max_weight
            if allow_leaf_skip and _cannot_reach(wmax, inc.score):
                total += span_mult
                feasible += feas_mult
                skipped += span_mult
                nodes_pruned += 1
                if emit_events:
                    tracer.instant(
                        "search.prune", kind="score-bound",
                        sizes=str(tuple(chosen_sizes)), candidates=span_mult,
                    )
                return
            sizes_key = tuple(chosen_sizes)
            if emit_events:
                tracer.instant(
                    "search.visit", sizes=str(sizes_key),
                    candidates=span_mult,
                )
            for combo in itertools.product(
                *(cell.choices for cell in chosen_cells)
            ):
                if work_budget is not None and not work_budget.spend():
                    raise _BudgetStop()
                total += 1
                scored += 1
                if not all(ch.hard_ok for ch in combo):
                    continue
                feasible += 1
                weights = base_w
                dop = 1
                for ch in combo:
                    weights = weights + ch.weights
                    dop *= ch.dop
                score = math.fsum(weights)

                def make_mapping(combo=combo) -> Mapping:
                    return Mapping(
                        tuple(
                            LevelMapping(
                                dim_perm[level],
                                chosen_sizes[level],
                                combo[level].span,
                            )
                            for level in range(num_levels)
                        )
                    )

                if keep_all:
                    mapping = make_mapping()
                    all_scored.append(ScoredMapping(mapping, score, dop))
                    if inc.decide(score, dop, sizes_key):
                        inc.mapping = mapping
                elif inc.decide(score, dop, sizes_key):
                    inc.mapping = make_mapping()

        def walk(
            k: int, budget: int, opt_prefix: float,
            span_mult: int, feas_mult: int,
        ) -> None:
            nonlocal total, feasible, skipped, nodes_pruned
            if work_budget is not None and not work_budget.spend():
                raise _BudgetStop()
            if k == num_levels:
                leaf(span_mult, feas_mult)
                return
            dim = dim_perm[k]
            cap = DIM_MAX_THREADS[dim]
            for size in block_sizes:
                if size > cap or size > budget:
                    continue
                cell = cells[(k, dim, size)]
                sub_mult = span_mult * span_counts[k]
                if cell.feasible_spans == 0:
                    # Level k violates a hard constraint for every span:
                    # the whole subtree is infeasible.
                    sub_t, _ = completions(k + 1, budget // size)
                    count = sub_t * sub_mult
                    total += count
                    skipped += count
                    nodes_pruned += 1
                    if emit_events:
                        tracer.instant(
                            "search.prune", kind="hard-subtree",
                            level=k, block_size=size, candidates=count,
                        )
                    continue
                opt = opt_prefix + cell.max_weight
                if allow_bound_prune and _cannot_reach(
                    opt + suffix[k + 1] + cross_opt, inc.score
                ):
                    sub_t, sub_f = completions(k + 1, budget // size)
                    total += sub_t * sub_mult
                    feasible += sub_f * feas_mult * cell.feasible_spans
                    skipped += sub_t * sub_mult
                    nodes_pruned += 1
                    if emit_events:
                        tracer.instant(
                            "search.prune", kind="bound-subtree",
                            level=k, block_size=size,
                            candidates=sub_t * sub_mult,
                        )
                    continue
                chosen_cells[k] = cell
                chosen_sizes[k] = size
                walk(
                    k + 1, budget // size, opt,
                    sub_mult, feas_mult * cell.feasible_spans,
                )

        walk(0, MAX_BLOCK_SIZE, 0.0, 1, 1)

    return _finish(
        inc, cset, sizes_t, window, total, feasible, all_scored,
        scored=scored, skipped=skipped, nodes_pruned=nodes_pruned,
        strategy="pruned",
    )


def search_mapping(
    num_levels: int,
    cset: ConstraintSet,
    sizes: Sequence[int],
    window: Optional[DopWindow] = None,
    block_sizes: Sequence[int] = BLOCK_SIZE_CANDIDATES,
    keep_all: bool = False,
    seed: int = TIE_BREAK_SEED,
    use_cache: bool = True,
    budget: Optional[Budget] = None,
    engine: Optional[str] = None,
) -> SearchResult:
    """Run Algorithm 1 and return the selected mapping.

    This is the staged pipeline: memo lookup, engine selection, then the
    chosen engine (plain exhaustive loop, pruned tree walk, or the
    vectorized batch engine).  Results are byte-identical to
    :func:`search_mapping_reference` whichever engine runs (asserted by
    ``tests/analysis/test_search_equivalence.py`` and
    ``tests/analysis/test_search_engines.py``).

    Args:
        num_levels: nest depth of the kernel.
        cset: constraints from :func:`generate_constraints`.
        sizes: representative domain size per level (analysis hints).
        window: device DOP window for ControlDOP (defaults to K20c's).
        keep_all: retain every feasible candidate with its score
            (needed by the score-vs-performance experiment).
        seed: tie-break seed (the paper breaks final ties randomly).
        use_cache: serve/record the cross-sweep memo.
        budget: optional node/deadline budget; on exhaustion the search
            returns the conservative fallback mapping (``degraded=True``)
            instead of raising.
        engine: ``"auto"`` (default; also via ``REPRO_SEARCH_ENGINE``)
            picks the cheapest engine for the space — the plain
            exhaustive loop below ``SEARCH_SMALL_SPACE_CANDIDATES``
            candidates, the vectorized batch engine when every
            constraint has a batch predicate, the pruned walk otherwise.
            ``"exhaustive"`` / ``"pruned"`` / ``"vectorized"`` force one;
            a forced engine that cannot run the set falls back to the
            next correct one rather than failing.
    """
    if window is None:
        window = DopWindow()
    engine = resolve_engine(engine)
    block_sizes = _effective_block_sizes(num_levels, block_sizes)
    sizes_t = _validate(num_levels, sizes)
    start = time.perf_counter()

    with instrumented_stage("search", levels=num_levels) as scope:
        span = scope.span
        fault = scope.fault
        if fault is not None and fault.kind == "deadline":
            # A simulated deadline overrun: the budget expires immediately.
            if budget is None:
                budget = Budget(deadline_s=0.0)
            budget.force_expire()
        if budget is not None:
            budget.start()

        cache = get_search_cache() if use_cache else None
        key = None
        if cache is not None:
            # The engine is part of the key: all engines return
            # byte-identical mappings, but the telemetry (strategy,
            # batch shape, work counters) describes the engine that ran,
            # and a forced-engine caller must not be served another
            # engine's diagnostics.
            key = search_cache_key(
                cset, num_levels, sizes_t, block_sizes, window, keep_all,
                seed, engine=engine,
            )
            try:
                hit = cache.get(key)
                fault = maybe_inject("memo")
                if fault is not None and hit is not None:
                    hit = _corrupt_memo_hit(hit, fault.kind)
            except ReproError:
                # A failing memo costs this request a recomputation, nothing
                # more: treat the lookup as a miss.
                hit = None
            if hit is not None:
                if _valid_memo_hit(hit, num_levels, cset, sizes_t):
                    result = replace(hit, cache_hit=True)
                    span.set(**result.telemetry())
                    _record_search_metrics(result)
                    return result
                # Corrupt or stale entry: discard it and recompute.
                cache.invalidate(key)

        result = _search_fresh(
            num_levels, cset, sizes_t, window, block_sizes, keep_all, seed,
            budget, engine=engine,
        )
        # The one and only elapsed_ms assignment for a fresh result:
        # pruned, reference-fallback, and budget-degraded paths all flow
        # through here, so a budget-exhausted search reports the true wall
        # time of this call exactly once (previously the early-exhausted
        # return and the main exit each carried their own assignment).
        result.elapsed_ms = (time.perf_counter() - start) * 1e3
        if cache is not None and key is not None and not result.degraded:
            # Degraded results are a budget artifact, not the true answer
            # for this key; caching them would poison budget-free callers.
            cache.put(key, result)
        span.set(**result.telemetry())
    _record_search_metrics(result)
    return result


def _search_fresh(
    num_levels: int,
    cset: ConstraintSet,
    sizes_t: Tuple[int, ...],
    window: DopWindow,
    block_sizes: Tuple[int, ...],
    keep_all: bool,
    seed: int,
    budget: Optional[Budget],
    engine: str = "auto",
) -> SearchResult:
    """The uncached search body.  Leaves ``elapsed_ms`` unset — the
    caller stamps it once, whichever path produced the result."""
    from .vectorized import BatchUnsupported, _search_vectorized

    if budget is not None and budget.exhausted():
        return _fallback_result(
            num_levels, cset, sizes_t, window,
            reason="search budget exhausted before enumeration",
            budget=budget,
        )

    if engine == "auto":
        # Cheapest engine for the space: tiny spaces lose more to staging
        # (tables, arrays) than the plain loop costs; large batch-capable
        # spaces belong to the vectorized engine; the pruned walk covers
        # the rest.  A detail-mode tracer wants the per-subtree
        # visit/prune instants only the walk can emit, so it pins the
        # walk rather than silently tracing nothing.
        tracer = get_tracer()
        if tracer.enabled and tracer.detail:
            engine = "pruned"
        elif (count_candidates(num_levels, cset, block_sizes)
                <= SEARCH_SMALL_SPACE_CANDIDATES):
            engine = "exhaustive"
        elif batch_supported(cset):
            engine = "vectorized"
        else:
            engine = "pruned"

    try:
        # The exhaustive loop and the batch engine detect infeasibility
        # and opacity themselves, so neither pays for constraint tables.
        if engine == "exhaustive":
            return _search_exhaustive(
                num_levels, cset, sizes_t, window, block_sizes, keep_all,
                seed, strategy="exhaustive", budget=budget,
            )
        if engine == "vectorized":
            try:
                return _search_vectorized(
                    num_levels, cset, sizes_t, window, block_sizes,
                    keep_all, seed, budget=budget,
                )
            except BatchUnsupported:
                # Opaque constraint or int64 overflow: degrade to the
                # walking engines below, which handle both.
                pass

        tables = ConstraintTables.build(
            cset, num_levels, sizes_t, block_sizes
        )
        if tables.always_infeasible:
            # A hard constraint no candidate can satisfy (the reference
            # would enumerate everything and raise the same error).
            raise SearchError(
                "no feasible mapping satisfies the hard constraints"
            )
        if tables.has_opaque:
            # Unknown constraint types: fall back to per-candidate
            # evaluation (correct for any satisfied_by, just not
            # table-accelerated).  This also guards a forced "pruned":
            # the walk cannot evaluate opaque constraints at all.
            return _search_exhaustive(
                num_levels, cset, sizes_t, window, block_sizes, keep_all,
                seed, strategy="reference-fallback", budget=budget,
            )
        return _search_pruned(
            num_levels, cset, sizes_t, window, block_sizes, keep_all,
            seed, tables, budget=budget,
        )
    except _BudgetStop:
        return _fallback_result(
            num_levels, cset, sizes_t, window,
            reason=(
                "search budget exhausted after "
                f"{budget.nodes_spent if budget is not None else 0} node(s)"
            ),
            budget=budget,
        )
