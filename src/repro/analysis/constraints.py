"""Constraint model and constraint generation (Section IV-C, Table II).

Constraints are classified on two orthogonal axes:

* **weight**: *hard* constraints must hold for correct execution; *soft*
  constraints are performance hints that add their derived weight to a
  mapping's score when satisfied.
* **scope**: *local* constraints concern a single pattern/level; *global*
  constraints relate multiple patterns or the whole block shape.

Derived weights follow the paper: each soft constraint has an intrinsic
weight (coalescing highest, because pattern workloads are bandwidth-bound)
multiplied by the number of times the associated code executes (the product
of enclosing pattern sizes, with 1000 assumed for unknown sizes) and
discounted by enclosing branch probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import (
    ANALYSIS_CACHE_BYTES,
    INTRINSIC_WEIGHT_BLOCK_FLOOR,
    INTRINSIC_WEIGHT_COALESCE,
    INTRINSIC_WEIGHT_NO_DIVERGENCE,
    MIN_BLOCK_SIZE,
    WARP_SIZE,
)
from .access import AccessSummary
from .mapping import SPAN_CODE_SPANALL, Dim, Mapping, Seq, Span, SpanAll, Split
from .nesting import Nest
from .shapes import SizeEnv


@dataclass(frozen=True)
class Constraint:
    """Base class; ``hard`` and ``scope`` implement Table II's taxonomy."""

    hard: bool
    scope: str  # "local" | "global"
    description: str

    def satisfied_by(self, mapping: Mapping, sizes: Tuple[int, ...]) -> bool:
        raise NotImplementedError

    def footprint(self) -> Optional[Tuple]:
        """Which part of a candidate mapping satisfaction depends on.

        The staged search (:mod:`repro.analysis.tables`) uses this to
        precompute partial-satisfaction tables instead of calling
        :meth:`satisfied_by` per candidate.  Given fixed analysis sizes, a
        constraint may declare that it reads only

        * ``("level", i)`` — the :class:`~repro.analysis.mapping.LevelMapping`
          of level ``i`` (its dim, block size, and span);
        * ``("block",)`` — the total threads per block;
        * ``("warp", levels)`` — the warp-variance of the given levels
          (dims and block sizes of every level, but no spans).

        ``None`` (the default) means *opaque*: satisfaction may depend on
        anything, and the search falls back to per-candidate evaluation.
        Subclasses that override this promise that ``satisfied_by`` really
        is invariant in everything outside the declared footprint for the
        candidates the search enumerates (all-parallel levels).
        """
        return None

    def batch_satisfied(self, batch) -> Optional["object"]:
        """Vectorized satisfaction over a whole candidate matrix.

        ``batch`` is a :class:`repro.analysis.vectorized.CandidateBatch`
        — integer-coded ``(candidate, level)`` arrays of dims, block
        sizes, and spans for every candidate the search enumerates (all
        levels parallel, spans limited to Span(1)/Span(all)).  The
        return value is a boolean NumPy array of shape ``(len(batch),)``
        that must equal ``[self.satisfied_by(m, batch.sizes) for m in
        candidates]`` element for element — the vectorized engine's
        byte-identical contract rests on that equality, and the
        three-engine equivalence tests enforce it.

        ``None`` (the base default) means *no batch path*: the engine
        falls back to the branch-and-bound walk (or per-candidate
        evaluation for opaque constraints).  Subclasses overriding this
        make the same promise as :meth:`footprint`: the predicate must
        agree with ``satisfied_by`` for search-space candidates.
        """
        return None

    #: Declares that :meth:`batch_satisfied` never reads ``batch.spans``.
    #: Candidate spans expand innermost, so the vectorized engine
    #: evaluates span-free predicates on the (permutation, block-size)
    #: base rows — ``span_tile`` times fewer — and broadcasts the column.
    #: Like :meth:`footprint`, the declaration is trusted: a predicate
    #: claiming span freedom while reading spans would silently break
    #: the byte-identical contract (the equivalence suite would catch
    #: it).
    batch_span_free = False

    #: The dual declaration: :meth:`batch_satisfied` reads *only*
    #: ``batch.spans`` (plus ``num_levels``/``len``).  The engine then
    #: evaluates the predicate once per span combination — a handful of
    #: rows — and tiles the column across the base pairs.
    batch_base_free = False


@dataclass(frozen=True)
class SpanAllRequired(Constraint):
    """Hard/local: the level must use Span(all) (or a Split refinement).

    ``reason`` distinguishes the paper's two triggers: ``"sync"`` (global
    synchronization, e.g. Reduce) may later be relaxed to ``Split(k)`` with
    a combiner kernel; ``"dynamic"`` (launch-dynamic size) may not.
    """

    level: int = 0
    reason: str = "sync"

    def satisfied_by(self, mapping: Mapping, sizes: Tuple[int, ...]) -> bool:
        if self.level >= mapping.num_levels:
            return False
        span = mapping.level(self.level).span
        if isinstance(span, (SpanAll, Seq)):
            return True
        if isinstance(span, Split):
            return self.reason == "sync"
        return False

    @property
    def splittable(self) -> bool:
        return self.reason == "sync"

    def footprint(self) -> Optional[Tuple]:
        return ("level", self.level)

    batch_base_free = True

    def batch_satisfied(self, batch):
        import numpy as np

        if self.level >= batch.num_levels:
            return np.zeros(len(batch), dtype=bool)
        # Search candidates only carry Span(1)/Span(all): the Seq and
        # Split branches of satisfied_by are unreachable here.
        return batch.spans[:, self.level] == SPAN_CODE_SPANALL


@dataclass(frozen=True)
class CoalesceDimX(Constraint):
    """Soft/local: assign the level to dim x with a warp-multiple block.

    Generated for every level in which some access has unit stride; when
    satisfied, adjacent threads issue adjacent memory requests and the
    hardware coalesces them (the paper's highest-weighted hint).
    """

    level: int = 0
    weight: float = 0.0
    array_key: str = ""

    def satisfied_by(self, mapping: Mapping, sizes: Tuple[int, ...]) -> bool:
        if self.level >= mapping.num_levels:
            return False
        lm = mapping.level(self.level)
        if not lm.parallel:
            return False
        return lm.dim == Dim.X and lm.block_size % WARP_SIZE == 0

    def footprint(self) -> Optional[Tuple]:
        return ("level", self.level)

    batch_span_free = True

    def batch_satisfied(self, batch):
        import numpy as np

        if self.level >= batch.num_levels:
            return np.zeros(len(batch), dtype=bool)
        return (batch.dims[:, self.level] == int(Dim.X)) & (
            batch.block_sizes[:, self.level] % WARP_SIZE == 0
        )


@dataclass(frozen=True)
class AvoidDivergence(Constraint):
    """Soft/local: branch conditions should be warp-uniform.

    A condition depending on an index that differs between the lanes of a
    warp makes the warp execute both paths (Table II's "avoid thread
    divergence" family).  Satisfied when none of the condition's index
    dependencies vary within a warp under the mapping.
    """

    levels: Tuple[int, ...] = ()
    weight: float = 0.0

    def satisfied_by(self, mapping: Mapping, sizes: Tuple[int, ...]) -> bool:
        return not any(
            level < mapping.num_levels
            and mapping.varies_within_warp(level, WARP_SIZE)
            for level in self.levels
        )

    def footprint(self) -> Optional[Tuple]:
        return ("warp", self.levels)

    batch_span_free = True

    def batch_satisfied(self, batch):
        import numpy as np

        out = np.ones(len(batch), dtype=bool)
        for level in self.levels:
            if level < batch.num_levels:
                out &= ~batch.warp_varies(level)
        return out


@dataclass(frozen=True)
class BlockSizeFloor(Constraint):
    """Soft/global: total threads per block should be at least 64."""

    weight: float = 0.0

    def satisfied_by(self, mapping: Mapping, sizes: Tuple[int, ...]) -> bool:
        return mapping.threads_per_block() >= MIN_BLOCK_SIZE

    def footprint(self) -> Optional[Tuple]:
        return ("block",)

    batch_span_free = True

    def batch_satisfied(self, batch):
        return batch.threads_per_block >= MIN_BLOCK_SIZE


@dataclass(frozen=True)
class NoWastedThreads(Constraint):
    """Soft/local: a level's block size should not exceed its domain.

    Oversized blocks guarantee idle threads in every block; a mild
    divergence-avoidance hint.
    """

    level: int = 0
    weight: float = 0.0

    def satisfied_by(self, mapping: Mapping, sizes: Tuple[int, ...]) -> bool:
        if self.level >= mapping.num_levels:
            return False
        lm = mapping.level(self.level)
        if not lm.parallel:
            return True
        size = sizes[self.level] if self.level < len(sizes) else 1
        return lm.block_size <= max(1, size)

    def footprint(self) -> Optional[Tuple]:
        return ("level", self.level)

    batch_span_free = True

    def batch_satisfied(self, batch):
        import numpy as np

        if self.level >= batch.num_levels:
            return np.zeros(len(batch), dtype=bool)
        sizes = batch.sizes
        size = sizes[self.level] if self.level < len(sizes) else 1
        return batch.block_sizes[:, self.level] <= max(1, size)


def has_batch_predicate(constraint: Constraint) -> bool:
    """Does this constraint carry a vectorized batch path?

    Resolution is by method identity, mirroring how ``footprint`` is
    trusted: a subclass that overrides ``satisfied_by`` without also
    overriding ``batch_satisfied`` (or ``footprint``) is declaring that
    the inherited classification still holds.
    """
    return type(constraint).batch_satisfied is not Constraint.batch_satisfied


@dataclass
class ConstraintSet:
    """All constraints for one kernel, with convenience accessors."""

    constraints: List[Constraint] = field(default_factory=list)

    def add(self, constraint: Constraint) -> None:
        self.constraints.append(constraint)

    @property
    def hard(self) -> List[Constraint]:
        return [c for c in self.constraints if c.hard]

    @property
    def soft(self) -> List[Constraint]:
        return [c for c in self.constraints if not c.hard]

    def span_all_levels(self) -> Dict[int, bool]:
        """Levels that must be Span(all), mapped to splittability."""
        result: Dict[int, bool] = {}
        for c in self.constraints:
            if isinstance(c, SpanAllRequired):
                # A level is splittable only if *every* reason allows it.
                result[c.level] = result.get(c.level, True) and c.splittable
        return result

    def max_score(self) -> float:
        return sum(getattr(c, "weight", 0.0) for c in self.soft)

    def describe(self) -> str:
        lines = []
        for c in self.constraints:
            kind = "hard" if c.hard else "soft"
            weight = getattr(c, "weight", None)
            suffix = f" (w={weight:.3g})" if weight is not None else ""
            lines.append(f"[{kind}/{c.scope}] {c.description}{suffix}")
        return "\n".join(lines)


def _collect_branches(nest: Nest, env: SizeEnv):
    """Yield (dep levels, execution count) per branch condition in the nest.

    A branch's dependency set is the enclosing pattern levels whose indices
    appear in its condition; the count is the number of times the branch
    executes (product of enclosing sizes, discounted like access weights).
    """
    from ..ir.expr import If, Select
    from ..ir.patterns import PatternExpr
    from .access import index_vars_in
    from .shapes import eval_size

    results = []

    def visit(node, stack):
        if isinstance(node, PatternExpr):
            inner = stack + (node,)
            for child in node.body_nodes():
                visit(child, inner)
            return
        if isinstance(node, (If, Select)):
            names = {p.index.name: lvl for lvl, p in enumerate(stack)}
            deps = index_vars_in(node.cond, frozenset(names))
            levels = frozenset(
                names[name] for name in deps if name in names
            )
            count = 1.0
            for p in stack:
                count *= max(1, int(eval_size(p.size, env)))
            results.append((levels, count))
        for child in node.children():
            visit(child, stack)

    visit(nest.root, ())
    return results


def generate_constraints(
    nest: Nest,
    accesses: AccessSummary,
    env: Optional[SizeEnv] = None,
) -> ConstraintSet:
    """Derive the constraint set for one kernel nest.

    This is the IR-traversal step of Section IV-C: hard Span(all)
    requirements from pattern types and launch-dynamic sizes, plus soft
    coalescing/block-shape hints weighted by execution counts.
    """
    if env is None:
        env = SizeEnv()
    cset = ConstraintSet()

    # Hard/local + the paper's hard/global "most conservative span per
    # level" rule, applied level-wide.
    for level_info in nest.levels:
        for pinfo in level_info.patterns:
            if pinfo.needs_sync:
                cset.add(
                    SpanAllRequired(
                        hard=True,
                        scope="local",
                        description=(
                            f"level {pinfo.level}: "
                            f"{type(pinfo.pattern).__name__} requires global "
                            "synchronization -> Span(all)"
                        ),
                        level=pinfo.level,
                        reason="sync",
                    )
                )
            if pinfo.launch_dynamic:
                cset.add(
                    SpanAllRequired(
                        hard=True,
                        scope="local",
                        description=(
                            f"level {pinfo.level}: size unknown at launch "
                            "-> Span(all)"
                        ),
                        level=pinfo.level,
                        reason="dynamic",
                    )
                )

    # Soft/local coalescing hints, merged per (level, array).
    coalesce_weights: Dict[Tuple[int, str], float] = {}
    for site in accesses.sites:
        if site.flexible_layout:
            # Preallocated intermediates get their layout *after* the
            # mapping decision (Section V-A), so they impose nothing here.
            continue
        count = site.exec_count(env)
        # Arrays whose footprint fits in cache are cheap to re-read
        # regardless of coalescing; discount them so the genuinely
        # bandwidth-bound accesses dominate the decision.
        footprint = site.footprint_bytes(env)
        cache_factor = min(1.0, footprint / ANALYSIS_CACHE_BYTES)
        for level in site.sequential_levels():
            key = (level, site.array_key)
            coalesce_weights[key] = (
                coalesce_weights.get(key, 0.0)
                + INTRINSIC_WEIGHT_COALESCE * count * cache_factor
            )
    for (level, array_key), weight in sorted(coalesce_weights.items()):
        cset.add(
            CoalesceDimX(
                hard=False,
                scope="local",
                description=(
                    f"level {level}: sequential accesses to {array_key!r} "
                    "-> dim x, block multiple of warp"
                ),
                level=level,
                weight=weight,
                array_key=array_key,
            )
        )

    # Soft/local divergence hints: one per distinct branch-dependency set.
    divergence_weights: Dict[Tuple[int, ...], float] = {}
    for dep_levels, count in _collect_branches(nest, env):
        if not dep_levels:
            continue
        key = tuple(sorted(dep_levels))
        divergence_weights[key] = (
            divergence_weights.get(key, 0.0)
            + INTRINSIC_WEIGHT_NO_DIVERGENCE * count
        )
    for levels, weight in sorted(divergence_weights.items()):
        cset.add(
            AvoidDivergence(
                hard=False,
                scope="local",
                description=(
                    f"branch condition depends on level(s) "
                    f"{list(levels)} -> keep them warp-uniform"
                ),
                levels=levels,
                weight=weight,
            )
        )

    total_iterations = 1.0
    for level_info in nest.levels:
        total_iterations *= max(1, level_info.size)

    # Soft/global block-size floor.
    cset.add(
        BlockSizeFloor(
            hard=False,
            scope="global",
            description=f"threads per block >= {MIN_BLOCK_SIZE}",
            weight=INTRINSIC_WEIGHT_BLOCK_FLOOR * total_iterations,
        )
    )

    # Soft/local thread-waste hints.
    for level_info in nest.levels:
        cset.add(
            NoWastedThreads(
                hard=False,
                scope="local",
                description=(
                    f"level {level_info.level}: block size <= domain size"
                ),
                level=level_info.level,
                weight=INTRINSIC_WEIGHT_NO_DIVERGENCE * total_iterations,
            )
        )

    return cset
