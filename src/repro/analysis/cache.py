"""Cross-sweep memoization for mapping-search results.

Shape sweeps and repeated kernels re-run Algorithm 1 with identical
inputs; this module gives the search a process-wide LRU cache keyed by a
canonical fingerprint of everything the result depends on: the constraint
set (every field of every constraint), the nest depth, the analysis
sizes, the block-size grid, the DOP window, the tie-break seed, and
whether all candidates are retained.  Two searches with equal keys return
byte-identical results, so serving the memo is safe.

A second, smaller cache memoizes the cost-model auto-tuner, whose key
additionally covers the kernel IR, the size environment, and the device
(the cost model reads all three).
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple

from ..observability import get_metrics
from .constraints import Constraint, ConstraintSet


def _freeze(value: Any) -> Hashable:
    """Recursively convert a field value into something hashable."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_freeze(v) for v in value))
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__qualname__,
            tuple(
                (f.name, _freeze(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    if isinstance(value, (int, float, str, bool, bytes)) or value is None:
        return value
    return repr(value)


def constraint_fingerprint(constraint: Constraint) -> Tuple:
    """Canonical, hashable identity of one constraint (all fields)."""
    if dataclasses.is_dataclass(constraint):
        return (
            type(constraint).__qualname__,
            tuple(
                (f.name, _freeze(getattr(constraint, f.name)))
                for f in dataclasses.fields(constraint)
            ),
        )
    return (type(constraint).__qualname__, repr(constraint))


def constraint_set_fingerprint(cset: ConstraintSet) -> Tuple:
    """Fingerprint of a whole constraint set, in insertion order."""
    return tuple(constraint_fingerprint(c) for c in cset.constraints)


def search_cache_key(
    cset: ConstraintSet,
    num_levels: int,
    sizes: Tuple[int, ...],
    block_sizes: Tuple[int, ...],
    window,
    keep_all: bool,
    seed: int,
    engine: str = "auto",
) -> Tuple:
    """Key for one ``search_mapping`` invocation.

    ``engine`` is part of the key: every engine returns byte-identical
    mappings and scores, but the telemetry (strategy label, nodes
    visited, batch shape) legitimately differs, so a result computed by
    one engine must not be served for a request that forced another.
    """
    return (
        "search",
        constraint_set_fingerprint(cset),
        num_levels,
        tuple(sizes),
        tuple(block_sizes),
        (window.min_dop, window.max_dop),
        keep_all,
        seed,
        engine,
    )


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters, snapshot at read time."""

    hits: int
    misses: int
    size: int
    maxsize: int
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


#: Sentinel distinguishing "absent" from a stored ``None``.
_MISSING = object()


class SearchCache:
    """A small thread-safe LRU keyed by canonical search fingerprints.

    ``name`` labels this cache's metrics (``cache.<name>.hits`` /
    ``.misses`` / ``.evictions`` / ``.invalidations`` in the registry);
    the internal counters remain authoritative for :meth:`stats`.
    """

    def __init__(self, maxsize: int = 4096, name: str = "search") -> None:
        self.maxsize = maxsize
        self.name = name
        self._entries: "OrderedDict[Tuple, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Tuple) -> Optional[Any]:
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                get_metrics().counter(f"cache.{self.name}.misses").inc()
                return None
            self._entries.move_to_end(key)
            self._hits += 1
        get_metrics().counter(f"cache.{self.name}.hits").inc()
        return value

    def put(self, key: Tuple, value: Any) -> None:
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                evicted += 1
            self._evictions += evicted
        if evicted:
            get_metrics().counter(
                f"cache.{self.name}.evictions"
            ).inc(evicted)

    def invalidate(self, key: Tuple) -> bool:
        """Drop one entry (a hit that failed validation); True if present."""
        with self._lock:
            dropped = self._entries.pop(key, _MISSING) is not _MISSING
        if dropped:
            get_metrics().counter(f"cache.{self.name}.invalidations").inc()
        return dropped

    def evict_where(self, predicate) -> int:
        """Drop every entry whose ``(key, value)`` satisfies ``predicate``.

        The scan runs over a snapshot taken under the lock, so concurrent
        ``get``/``put`` calls during a sweep neither crash the iteration
        nor deadlock on re-entry; entries inserted mid-sweep are simply
        not considered.  Returns the number of entries dropped.
        """
        with self._lock:
            snapshot = list(self._entries.items())
        doomed = [key for key, value in snapshot if predicate(key, value)]
        dropped = 0
        with self._lock:
            for key in doomed:
                if self._entries.pop(key, _MISSING) is not _MISSING:
                    dropped += 1
        return dropped

    def snapshot(self) -> list:
        """A point-in-time copy of every ``(key, value)`` entry, in LRU
        order (least recent first).

        This is the persistence surface: the compile service pickles the
        snapshot to disk and :meth:`load`\\ s it back on restart, so the
        on-disk memo and the in-memory cache share one invalidation path
        — whatever :meth:`invalidate`/:meth:`evict_where` dropped before
        the snapshot simply is not in it.
        """
        with self._lock:
            return list(self._entries.items())

    def load(self, entries) -> int:
        """Install ``(key, value)`` pairs (a prior :meth:`snapshot`).

        Existing entries win LRU-recency over loaded ones only when
        re-inserted later; loaded entries overwrite equal keys.  The
        cache is trimmed to ``maxsize`` afterwards (oldest first), so
        loading a snapshot from a larger cache cannot overflow this one.
        Returns the number of entries installed.
        """
        installed = 0
        evicted = 0
        with self._lock:
            for key, value in entries:
                self._entries[key] = value
                self._entries.move_to_end(key)
                installed += 1
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                evicted += 1
            self._evictions += evicted
        if evicted:
            get_metrics().counter(f"cache.{self.name}.evictions").inc(evicted)
        return installed

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._entries),
                maxsize=self.maxsize,
                evictions=self._evictions,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_SEARCH_CACHE = SearchCache(maxsize=4096, name="search")
_AUTOTUNE_CACHE = SearchCache(maxsize=512, name="autotune")


def get_search_cache() -> SearchCache:
    """The process-wide mapping-search memo."""
    return _SEARCH_CACHE


def get_autotune_cache() -> SearchCache:
    """The process-wide auto-tune memo."""
    return _AUTOTUNE_CACHE


def clear_caches() -> None:
    """Reset both caches and their statistics (tests, benchmarks).

    Also drops the vectorized engine's candidate-structure memo so a
    full reset leaves no process-wide search state behind.
    """
    _SEARCH_CACHE.clear()
    _AUTOTUNE_CACHE.clear()
    from .vectorized import clear_batch_memo

    clear_batch_memo()
    from ..service.api import clear_digest_memo

    clear_digest_memo()
