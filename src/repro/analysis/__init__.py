"""Mapping analysis — the paper's core contribution (Section IV).

Public surface:

* :mod:`repro.analysis.mapping` — Dim / block size / Span-Split parameters.
* :mod:`repro.analysis.analyzer` — one-call program analysis facade.
* :mod:`repro.analysis.search` — the staged Algorithm-1 search (pruned
  branch-and-bound plus an exhaustive reference oracle).
* :mod:`repro.analysis.vectorized` — the NumPy batch search engine
  (byte-identical to the reference, candidate matrix at once).
* :mod:`repro.analysis.cache` — cross-sweep memoization of search results.
* :mod:`repro.analysis.strategies` — fixed baselines from prior work.
"""

from .access import (  # noqa: F401
    AccessSite,
    AccessSummary,
    LinearForm,
    collect_accesses,
    inline_scalar_binds,
    linear_form,
)
from .autotune import AutotuneResult, autotune_mapping  # noqa: F401
from .cache import (  # noqa: F401
    CacheStats,
    SearchCache,
    clear_caches,
    constraint_set_fingerprint,
    get_autotune_cache,
    get_search_cache,
    search_cache_key,
)
from .explain import (  # noqa: F401
    MappingExplanation,
    explain_mapping,
    render_telemetry,
)
from .analyzer import (  # noqa: F401
    KernelAnalysis,
    ProgramAnalysis,
    analyze_kernel,
    analyze_program,
)
from .constraints import (  # noqa: F401
    BlockSizeFloor,
    CoalesceDimX,
    Constraint,
    ConstraintSet,
    NoWastedThreads,
    SpanAllRequired,
    generate_constraints,
)
from .dop import DopWindow, control_dop  # noqa: F401
from .mapping import (  # noqa: F401
    Dim,
    LevelMapping,
    Mapping,
    Seq,
    Span,
    SpanAll,
    Split,
    seq_level,
)
from .nesting import Nest, build_nest, extract_kernels, outermost_patterns  # noqa: F401
from .scoring import ScoredMapping, score_mapping, satisfied_constraints  # noqa: F401
from .search import (  # noqa: F401
    SearchResult,
    count_candidates,
    enumerate_candidates,
    resolve_engine,
    search_mapping,
    search_mapping_reference,
)
from .vectorized import (  # noqa: F401
    BatchUnsupported,
    CandidateBatch,
    clear_batch_memo,
    iter_feasible_mappings,
    materialize_candidates,
    search_mapping_vectorized,
)
from .shapes import SizeEnv, eval_size  # noqa: F401
from .tables import ConstraintTables, span_options_for_levels  # noqa: F401
from .strategies import (  # noqa: F401
    FIXED_STRATEGIES,
    fixed_strategy,
    one_d,
    thread_block_thread,
    warp_based,
)
