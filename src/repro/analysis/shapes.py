"""Size and shape evaluation for analysis time.

The mapping analysis needs concrete numbers for pattern domains and array
strides.  Sizes are IR expressions; this module evaluates them under a
:class:`SizeEnv` that binds size parameters to representative values.  When
a size cannot be resolved (dynamically computed inner domains, unknown
array extents) the paper's default of 1000 is assumed (Section IV-C), and
the fact that it was a guess is recorded so the hard-constraint generator
can force ``Span(all)`` where required.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..config import DEFAULT_HINT_KEY, DEFAULT_SIZE_HINT, SKEW_HINT_KEY
from ..ir.expr import (
    BinOp,
    Cast,
    Const,
    Expr,
    Length,
    Param,
    Select,
    UnOp,
    Var,
)
from ..ir.patterns import PatternExpr, Program
from ..ir.traversal import walk


@dataclass
class SizeEnv:
    """Bindings from size-parameter names to representative integer values.

    ``array_shapes`` optionally binds array parameter names to concrete
    extents so that :class:`~repro.ir.expr.Length` nodes resolve exactly.
    """

    values: Dict[str, int] = field(default_factory=dict)
    array_shapes: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    default: int = DEFAULT_SIZE_HINT
    #: Warp-max/mean ratio for dynamically sized inner domains (load
    #: imbalance of skewed loops; 1.0 = perfectly balanced).
    skew: float = 1.0

    @staticmethod
    def for_program(program: Program, **overrides: int) -> "SizeEnv":
        """Build an environment from a program's size hints plus overrides.

        Array-parameter shapes recorded by the builder are evaluated under
        the merged bindings so stride computation has concrete extents.
        The reserved ``__default__`` and ``__skew__`` hints configure the
        dynamic-size fallback and imbalance model.
        """
        values = dict(program.size_hints)
        values.update(overrides)
        default = int(values.pop(DEFAULT_HINT_KEY, DEFAULT_SIZE_HINT))
        skew = float(values.pop(SKEW_HINT_KEY, 1.0))
        env = SizeEnv(values=values, default=default, skew=skew)
        for name, shape_exprs in program.array_shapes.items():
            env.array_shapes[name] = tuple(
                int(eval_size(e, env)) for e in shape_exprs
            )
        return env

    def bind(self, **values: int) -> "SizeEnv":
        """Return a copy with additional/overriding bindings."""
        merged = dict(self.values)
        merged.update(values)
        return SizeEnv(values=merged, array_shapes=dict(self.array_shapes),
                       default=self.default, skew=self.skew)


@dataclass(frozen=True)
class SizeValue:
    """An evaluated size: the value plus whether it was exactly known."""

    value: int
    exact: bool

    def __int__(self) -> int:
        return self.value


def eval_size(expr: Expr, env: SizeEnv) -> SizeValue:
    """Evaluate a size expression to a representative integer.

    Exactness propagates: any subterm that fell back to the default hint
    makes the whole result inexact.
    """
    if isinstance(expr, Const):
        return SizeValue(int(expr.value), True)
    if isinstance(expr, Param):
        if expr.name in env.values:
            return SizeValue(int(env.values[expr.name]), True)
        return SizeValue(env.default, False)
    if isinstance(expr, Var):
        # A size depending on an enclosing pattern index (per-iteration
        # dynamic domain): representative value only.
        if expr.name in env.values:
            return SizeValue(int(env.values[expr.name]), True)
        return SizeValue(env.default, False)
    if isinstance(expr, Length):
        key = _array_key(expr.array)
        if key is not None and key in env.array_shapes:
            shape = env.array_shapes[key]
            if expr.axis < len(shape):
                return SizeValue(int(shape[expr.axis]), True)
        return SizeValue(env.default, False)
    if isinstance(expr, Cast):
        return eval_size(expr.operand, env)
    if isinstance(expr, UnOp) and expr.op == "-":
        inner = eval_size(expr.operand, env)
        return SizeValue(-inner.value, inner.exact)
    if isinstance(expr, BinOp):
        lhs = eval_size(expr.lhs, env)
        rhs = eval_size(expr.rhs, env)
        exact = lhs.exact and rhs.exact
        if not exact:
            # Arithmetic over guessed operands fabricates nonsense (e.g.
            # offsets[n+1] - offsets[n] would "evaluate" to 0); fall back
            # to the default hint for the whole expression instead.
            return SizeValue(env.default, False)
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "//": lambda a, b: a // b if b else 0,
            "/": lambda a, b: a // b if b else 0,
            "%": lambda a, b: a % b if b else 0,
            "min": min,
            "max": max,
        }
        if expr.op not in ops:
            return SizeValue(env.default, False)
        return SizeValue(int(ops[expr.op](lhs.value, rhs.value)), exact)
    if isinstance(expr, Select):
        taken = eval_size(expr.if_true, env)
        return SizeValue(taken.value, False)
    # Anything else (reads, calls, random) is treated as unknown.
    return SizeValue(env.default, False)


def _array_key(expr: Expr) -> Optional[str]:
    """A stable name for an array object, if it has one."""
    from ..ir.expr import FieldRead

    if isinstance(expr, Param):
        return expr.name
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, FieldRead):
        base = _array_key(expr.struct)
        return f"{base}.{expr.field_name}" if base else None
    return None


def size_depends_on_indices(size: Expr, index_names: frozenset) -> bool:
    """True when a pattern's domain size varies per outer iteration.

    This is the paper's first ``Span(all)`` trigger: the size is not known
    at kernel-launch time because it depends on an enclosing pattern index
    (e.g. a vertex's neighbor count in BFS/PageRank).
    """
    for node in walk(size):
        if isinstance(node, Var) and node.name in index_names:
            return True
        if isinstance(node, Length):
            # Length of something selected by an outer index (e.g. a
            # per-row neighbor list) is also launch-dynamic.
            for sub in walk(node.array):
                if isinstance(sub, Var) and sub.name in index_names:
                    return True
    return False


def pattern_size(pattern: PatternExpr, env: SizeEnv) -> SizeValue:
    """Evaluate a pattern's domain size under the environment."""
    return eval_size(pattern.size, env)
