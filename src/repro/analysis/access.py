"""Memory-access analysis: affine descriptors for every array access.

The locality analysis reduces each array access inside a nest to a *linear
form* over the enclosing pattern indices::

    offset(i0, i1, ...) = c0*i0 + c1*i1 + ... + const (+ opaque terms)

The coefficient of a pattern index is the element stride of the access with
respect to that index.  A coefficient of 1 means adjacent iterations of
that pattern touch adjacent memory — the *sequential access* that triggers
the paper's dim-x soft constraint, and the quantity the coalescing cost
model needs.  Non-affine subterms (gathers through another array, random
indices) are captured conservatively as opaque terms tagged with the index
variables they depend on.

Both the constraint generator and the GPU cost model consume the
:class:`AccessSite` records produced here, so the mapping the search picks
and the time the simulator charges are driven by the same facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from ..ir.expr import (
    Alloc,
    ArrayRead,
    BinOp,
    Bind,
    Block,
    Cast,
    Const,
    Expr,
    If,
    Length,
    Node,
    Param,
    RandomIndex,
    Select,
    Store,
    UnOp,
    Var,
)
from ..ir.patterns import Filter, Foreach, GroupBy, Map, PatternExpr, Reduce
from ..ir.types import ArrayType, ScalarType
from .shapes import SizeEnv, _array_key, eval_size


@dataclass(frozen=True)
class LinearForm:
    """An affine function of pattern indices, with conservative escape
    hatches for anything non-affine."""

    coeffs: Tuple[Tuple[str, float], ...] = ()
    const: float = 0.0
    opaque_deps: FrozenSet[str] = frozenset()
    has_random: bool = False

    @staticmethod
    def constant(value: float) -> "LinearForm":
        return LinearForm(const=value)

    @staticmethod
    def index(name: str) -> "LinearForm":
        return LinearForm(coeffs=((name, 1.0),))

    @staticmethod
    def opaque(deps: FrozenSet[str], random: bool = False) -> "LinearForm":
        return LinearForm(opaque_deps=deps, has_random=random)

    def coeff(self, name: str) -> float:
        for var, c in self.coeffs:
            if var == name:
                return c
        return 0.0

    @property
    def coeff_dict(self) -> Dict[str, float]:
        return dict(self.coeffs)

    @property
    def is_pure_constant(self) -> bool:
        return not self.coeffs and not self.opaque_deps and not self.has_random

    def depends_on(self, name: str) -> bool:
        """Does the value change when index ``name`` changes?"""
        return self.coeff(name) != 0.0 or name in self.opaque_deps

    def plus(self, other: "LinearForm") -> "LinearForm":
        merged = dict(self.coeffs)
        for var, c in other.coeffs:
            merged[var] = merged.get(var, 0.0) + c
        coeffs = tuple(
            (var, c) for var, c in sorted(merged.items()) if c != 0.0
        )
        return LinearForm(
            coeffs=coeffs,
            const=self.const + other.const,
            opaque_deps=self.opaque_deps | other.opaque_deps,
            has_random=self.has_random or other.has_random,
        )

    def minus(self, other: "LinearForm") -> "LinearForm":
        return self.plus(other.scaled(-1.0))

    def scaled(self, factor: float) -> "LinearForm":
        return LinearForm(
            coeffs=tuple((var, c * factor) for var, c in self.coeffs),
            const=self.const * factor,
            opaque_deps=self.opaque_deps,
            has_random=self.has_random,
        )

    def blurred(self) -> "LinearForm":
        """Collapse into a fully opaque form keeping only the dependencies."""
        deps = frozenset(var for var, _ in self.coeffs) | self.opaque_deps
        return LinearForm(opaque_deps=deps, has_random=self.has_random)


def index_vars_in(node: Node, index_names: FrozenSet[str]) -> FrozenSet[str]:
    """Index variables occurring anywhere under ``node``."""
    from ..ir.traversal import walk

    found = set()
    for sub in walk(node):
        if isinstance(sub, Var) and sub.name in index_names:
            found.add(sub.name)
        if isinstance(sub, RandomIndex):
            found.add("__random__")
    return frozenset(found)


def linear_form(
    expr: Expr,
    index_names: FrozenSet[str],
    env: SizeEnv,
    bindings: Optional[Dict[str, LinearForm]] = None,
) -> LinearForm:
    """Extract the affine form of an index expression.

    ``index_names`` are the pattern indices in scope; ``bindings`` carries
    the forms of non-inlined scalar let-bindings (e.g. a random row index
    drawn once per outer iteration); every other variable or parameter is
    resolved to a representative constant via ``env``.
    """
    if isinstance(expr, Const):
        return LinearForm.constant(float(expr.value))
    if isinstance(expr, Var):
        if expr.name in index_names:
            return LinearForm.index(expr.name)
        if bindings and expr.name in bindings:
            return bindings[expr.name]
        return LinearForm.constant(float(int(eval_size(expr, env))))
    if isinstance(expr, Param):
        return LinearForm.constant(float(int(eval_size(expr, env))))
    if isinstance(expr, Length):
        return LinearForm.constant(float(int(eval_size(expr, env))))
    if isinstance(expr, RandomIndex):
        # A fresh draw per enclosing iteration: arbitrary-but-fixed within
        # one index combination, unrelated across combinations.
        return LinearForm(opaque_deps=index_names, has_random=True)
    if isinstance(expr, Cast):
        return linear_form(expr.operand, index_names, env, bindings)
    if isinstance(expr, UnOp) and expr.op == "-":
        return linear_form(expr.operand, index_names, env, bindings).scaled(-1.0)
    if isinstance(expr, BinOp):
        lhs = linear_form(expr.lhs, index_names, env, bindings)
        rhs = linear_form(expr.rhs, index_names, env, bindings)
        if expr.op == "+":
            return lhs.plus(rhs)
        if expr.op == "-":
            return lhs.minus(rhs)
        if expr.op == "*":
            if lhs.is_pure_constant:
                return rhs.scaled(lhs.const)
            if rhs.is_pure_constant:
                return lhs.scaled(rhs.const)
            return lhs.blurred().plus(rhs.blurred()).blurred()
        if expr.op in ("//", "/", "%"):
            if lhs.is_pure_constant and rhs.is_pure_constant and rhs.const:
                if expr.op == "%":
                    return LinearForm.constant(lhs.const % rhs.const)
                return LinearForm.constant(lhs.const // rhs.const)
            return lhs.blurred().plus(rhs.blurred()).blurred()
        if expr.op in ("min", "max"):
            # Index clamping (stencil boundaries): away from the boundary
            # the clamp is the identity, so the non-constant side's affine
            # structure is what the bulk of accesses see.
            if lhs.is_pure_constant and not rhs.is_pure_constant:
                return rhs
            if rhs.is_pure_constant and not lhs.is_pure_constant:
                return lhs
            if lhs.is_pure_constant and rhs.is_pure_constant:
                value = (
                    min(lhs.const, rhs.const)
                    if expr.op == "min"
                    else max(lhs.const, rhs.const)
                )
                return LinearForm.constant(value)
            return lhs.blurred().plus(rhs.blurred()).blurred()
        return lhs.blurred().plus(rhs.blurred()).blurred()
    # Gathers, selects, calls: conservatively opaque in whatever indices
    # appear inside.
    deps = index_vars_in(expr, index_names)
    random = "__random__" in deps
    return LinearForm.opaque(deps - {"__random__"}, random=random)


@dataclass
class AccessSite:
    """One static memory access occurrence inside a nest."""

    array_key: str
    kind: str  # "read" or "write"
    elem_bytes: int
    #: One linear form per logical axis of the access.
    axis_forms: Tuple[LinearForm, ...]
    #: Representative extents per axis (for stride computation).
    shape: Tuple[int, ...]
    #: Enclosing patterns, outermost first; the access executes once per
    #: combination of their indices.
    pattern_stack: Tuple[PatternExpr, ...]
    #: Product of static probabilities of enclosing branches.
    branch_prob: float = 1.0
    #: True for preallocated intermediates whose physical layout the
    #: compiler may freely choose after the mapping decision (Section V-A).
    flexible_layout: bool = False
    #: True when this access is synthesized (pattern output write).
    synthetic: bool = False
    #: The original index expressions (None for synthesized sites); used
    #: by the trace validator to execute accesses concretely.
    index_exprs: Optional[Tuple[Expr, ...]] = None

    @property
    def level(self) -> int:
        return len(self.pattern_stack) - 1

    @property
    def index_names(self) -> Tuple[str, ...]:
        return tuple(p.index.name for p in self.pattern_stack)

    def row_major_strides(self) -> Tuple[int, ...]:
        """Element strides for the canonical row-major layout."""
        strides: List[int] = []
        acc = 1
        for extent in reversed(self.shape):
            strides.append(acc)
            acc *= max(1, extent)
        strides.reverse()
        return tuple(strides)

    def offset_form(self, strides: Optional[Sequence[int]] = None) -> LinearForm:
        """The linearized element-offset form under the given layout."""
        if strides is None:
            strides = self.row_major_strides()
        if len(strides) != len(self.axis_forms):
            raise AnalysisError(
                f"{len(strides)} strides for rank-{len(self.axis_forms)} access"
            )
        total = LinearForm.constant(0.0)
        for form, stride in zip(self.axis_forms, strides):
            total = total.plus(form.scaled(float(stride)))
        return total

    def sequential_levels(self) -> List[int]:
        """Levels whose index has unit stride in this access (row-major).

        These are the levels for which the paper adds the "assign dim x"
        soft constraint.
        """
        offset = self.offset_form()
        result = []
        for level, name in enumerate(self.index_names):
            if abs(offset.coeff(name)) == 1.0:
                result.append(level)
        return result

    def exec_count(self, env: SizeEnv) -> float:
        """How many times the access executes per kernel run."""
        count = self.branch_prob
        for pattern in self.pattern_stack:
            count *= max(1, int(eval_size(pattern.size, env)))
        return count

    def footprint_bytes(self, env: SizeEnv) -> float:
        """Distinct bytes this access can touch (cache-residency proxy).

        The product of the domain sizes of the levels the offset depends
        on, capped by the array's total size.
        """
        offset = self.offset_form()
        distinct = 1.0
        for level, name in enumerate(self.index_names):
            if offset.depends_on(name):
                distinct *= max(
                    1, int(eval_size(self.pattern_stack[level].size, env))
                )
        if offset.has_random:
            distinct = max(distinct, self.exec_count(env))
        array_elems = 1.0
        for extent in self.shape:
            array_elems *= max(1, extent)
        return min(distinct, array_elems) * self.elem_bytes


@dataclass(frozen=True)
class AllocationSite:
    """One dynamic allocation performed inside a pattern body.

    Without the preallocation optimization, every parallel iteration of the
    enclosing patterns performs one device-side malloc (Section V-A).
    """

    array_key: str
    elem_bytes: int
    #: Elements allocated per call (representative).
    elems_per_alloc: int
    #: Enclosing patterns at the allocation point, outermost first.
    pattern_stack: Tuple[PatternExpr, ...]

    def alloc_count(self, env: SizeEnv) -> int:
        count = 1
        for pattern in self.pattern_stack:
            count *= max(1, int(eval_size(pattern.size, env)))
        return count


@dataclass
class AccessSummary:
    """All access and allocation sites of one kernel nest."""

    sites: List[AccessSite] = field(default_factory=list)
    allocs: List[AllocationSite] = field(default_factory=list)

    def reads(self) -> List[AccessSite]:
        return [s for s in self.sites if s.kind == "read"]

    def writes(self) -> List[AccessSite]:
        return [s for s in self.sites if s.kind == "write"]

    def for_array(self, key: str) -> List[AccessSite]:
        return [s for s in self.sites if s.array_key == key]

    def flexible_arrays(self) -> List[str]:
        """Array keys whose physical layout the compiler may choose."""
        seen: List[str] = []
        for s in self.sites:
            if s.flexible_layout and s.array_key not in seen:
                seen.append(s.array_key)
        return seen


@dataclass(frozen=True)
class _Intermediate:
    """Bookkeeping for an array-valued let binding (a materialized
    inner-pattern result or explicit Alloc)."""

    #: Index names of the patterns enclosing the binding; the preallocated
    #: physical array gains one leading axis per enclosing index.
    outer_axes: Tuple[str, ...]
    #: Full physical shape: enclosing sizes followed by the logical shape.
    shape: Tuple[int, ...]
    flexible: bool


class _Collector:
    """Walks a nest gathering :class:`AccessSite` records."""

    def __init__(self, env: SizeEnv):
        self.env = env
        self.sites: List[AccessSite] = []
        self.allocs: List[AllocationSite] = []
        self.intermediates: Dict[str, _Intermediate] = {}
        #: Forms of non-inlined scalar let-bindings (random draws etc.).
        self.scalar_forms: Dict[str, LinearForm] = {}

    # -- entry ----------------------------------------------------------

    def collect(self, root: PatternExpr) -> AccessSummary:
        self._visit_pattern(root, stack=(), prob=1.0)
        self._synthesize_output(root)
        return AccessSummary(self.sites, self.allocs)

    # -- traversal --------------------------------------------------------

    def _visit_pattern(
        self, pattern: PatternExpr, stack: Tuple[PatternExpr, ...], prob: float
    ) -> None:
        inner_stack = stack + (pattern,)
        if isinstance(pattern, Reduce) and pattern.combine is not None:
            self._visit(pattern.combine[2], inner_stack, prob)
        for node in pattern.body_nodes():
            self._visit(node, inner_stack, prob)

    def _visit(self, node: Node, stack: Tuple[PatternExpr, ...], prob: float) -> None:
        if isinstance(node, PatternExpr):
            self._visit_pattern(node, stack, prob)
            return
        if isinstance(node, ArrayRead):
            self._record(node.array, node.indices, "read", stack, prob)
            self._visit(node.array, stack, prob)
            for idx in node.indices:
                self._visit(idx, stack, prob)
            return
        if isinstance(node, Store):
            self._record(node.array, node.indices, "write", stack, prob)
            for idx in node.indices:
                self._visit(idx, stack, prob)
            self._visit(node.value, stack, prob)
            return
        if isinstance(node, Select):
            self._visit(node.cond, stack, prob)
            self._visit(node.if_true, stack, prob * node.prob)
            self._visit(node.if_false, stack, prob * (1.0 - node.prob))
            return
        if isinstance(node, If):
            self._visit(node.cond, stack, prob)
            for stmt in node.then:
                self._visit(stmt, stack, prob * node.prob)
            for stmt in node.otherwise:
                self._visit(stmt, stack, prob * (1.0 - node.prob))
            return
        if isinstance(node, Block):
            for stmt in node.stmts:
                if isinstance(stmt, Bind):
                    self._register_bind(stmt, stack)
                    self._visit(stmt.value, stack, prob)
                else:
                    self._visit(stmt, stack, prob)
            self._visit(node.result, stack, prob)
            return
        if isinstance(node, Bind):
            self._register_bind(node, stack)
            self._visit(node.value, stack, prob)
            return
        for child in node.children():
            self._visit(child, stack, prob)

    def _register_bind(self, bind: Bind, stack: Tuple[PatternExpr, ...]) -> None:
        """Record array-valued bindings as flexible-layout intermediates.

        The preallocated physical array carries one leading axis per
        enclosing pattern index (Figure 11), and one allocation site is
        recorded for the malloc-overhead model.  Scalar bindings that were
        not inlined (they contain randomness) get their form tracked so
        later index expressions resolve them correctly.
        """
        value = bind.value
        if isinstance(value.ty, ScalarType):
            index_names = frozenset(p.index.name for p in stack)
            self.scalar_forms[bind.var.name] = linear_form(
                value, index_names, self.env, self.scalar_forms
            )
            return
        outer_axes = tuple(p.index.name for p in stack)
        outer_shape = tuple(
            max(1, int(eval_size(p.size, self.env))) for p in stack
        )
        if isinstance(value, PatternExpr) and isinstance(value.ty, ArrayType):
            logical = self._pattern_output_shape(value)
        elif isinstance(value, Alloc):
            logical = tuple(
                max(1, int(eval_size(s, self.env))) for s in value.shape
            )
        else:
            return
        elem_ty = value.ty.elem if isinstance(value.ty, ArrayType) else None
        elem_bytes = elem_ty.size_bytes if isinstance(elem_ty, ScalarType) else 8
        self.intermediates[bind.var.name] = _Intermediate(
            outer_axes=outer_axes,
            shape=outer_shape + logical,
            flexible=True,
        )
        if stack:
            elems = 1
            for extent in logical:
                elems *= extent
            self.allocs.append(
                AllocationSite(
                    array_key=bind.var.name,
                    elem_bytes=elem_bytes,
                    elems_per_alloc=elems,
                    pattern_stack=stack,
                )
            )
        if isinstance(value, PatternExpr):
            # The materialized inner pattern writes its output once per
            # element; model that traffic explicitly.
            index_names = frozenset(p.index.name for p in stack) | {
                value.index.name
            }
            spine: List[PatternExpr] = [value]
            body = value.body_nodes()[0] if value.body_nodes() else None
            while isinstance(body, Map):
                spine.append(body)
                body = body.body
            axis_forms = tuple(
                LinearForm.index(name) for name in outer_axes
            ) + tuple(LinearForm.index(p.index.name) for p in spine)
            self.sites.append(
                AccessSite(
                    array_key=bind.var.name,
                    kind="write",
                    elem_bytes=elem_bytes,
                    axis_forms=axis_forms,
                    shape=self.intermediates[bind.var.name].shape,
                    pattern_stack=stack + tuple(spine),
                    branch_prob=1.0,
                    flexible_layout=True,
                    synthetic=True,
                )
            )

    def _pattern_output_shape(self, pattern: PatternExpr) -> Tuple[int, ...]:
        dims = [max(1, int(eval_size(pattern.size, self.env)))]
        body = pattern.body_nodes()[0] if pattern.body_nodes() else None
        while isinstance(body, Map):
            dims.append(max(1, int(eval_size(body.size, self.env))))
            body = body.body
        return tuple(dims)

    # -- recording --------------------------------------------------------

    def _record(
        self,
        array: Expr,
        indices: Sequence[Expr],
        kind: str,
        stack: Tuple[PatternExpr, ...],
        prob: float,
    ) -> None:
        if not stack:
            return  # accesses outside any pattern are host-side
        key = _array_key(array) or f"<anon:{type(array).__name__}>"
        index_names = frozenset(p.index.name for p in stack)
        axis_forms = tuple(
            linear_form(idx, index_names, self.env, self.scalar_forms)
            for idx in indices
        )
        elem_ty = array.ty.elem if isinstance(array.ty, ArrayType) else None
        elem_bytes = elem_ty.size_bytes if isinstance(elem_ty, ScalarType) else 8
        # Loop-invariant hoisting: an access whose indices do not involve
        # the innermost pattern's index executes once per iteration of the
        # outermost level it *does* depend on (any real compiler hoists
        # it), so truncate the stack accordingly.
        if not any(form.has_random for form in axis_forms):
            deps = set()
            for form in axis_forms:
                deps.update(name for name, _ in form.coeffs)
                deps.update(form.opaque_deps)
            while stack and stack[-1].index.name not in deps:
                stack = stack[:-1]
            if not stack:
                return  # a kernel-invariant scalar read; negligible
        flexible = False
        trace_indices: Tuple[Expr, ...] = tuple(indices)
        if key in self.intermediates:
            # Accesses to a preallocated intermediate gain the enclosing
            # indices as leading physical axes (Figure 11).
            inter = self.intermediates[key]
            axis_forms = tuple(
                LinearForm.index(name) if name in index_names
                else LinearForm.constant(0.0)
                for name in inter.outer_axes
            ) + axis_forms
            from ..ir.types import I64

            trace_indices = tuple(
                Var(name, I64) if name in index_names else Const(0)
                for name in inter.outer_axes
            ) + trace_indices
            shape: Tuple[int, ...] = inter.shape
            flexible = inter.flexible
        else:
            shape = self._shape_for(key, array, len(indices))
        self.sites.append(
            AccessSite(
                array_key=key,
                kind=kind,
                elem_bytes=elem_bytes,
                axis_forms=axis_forms,
                shape=shape,
                pattern_stack=stack,
                branch_prob=prob,
                flexible_layout=flexible,
                index_exprs=trace_indices,
            )
        )

    def _shape_for(self, key: str, array: Expr, rank: int) -> Tuple[int, ...]:
        if key in self.env.array_shapes:
            shape = self.env.array_shapes[key]
            if len(shape) == rank:
                return tuple(int(s) for s in shape)
        return tuple(self.env.default for _ in range(rank))

    # -- synthetic output access -----------------------------------------

    def _synthesize_output(self, root: PatternExpr) -> None:
        """Model the kernel's output write as an access site.

        Walking the spine of result-position patterns: each Map level
        contributes its index as an output axis; a Reduce ends indexing
        (one value per enclosing combination); Filter/GroupBy write
        compacted output sequential in their own index.
        """
        indices: List[PatternExpr] = []
        stack: List[PatternExpr] = []
        node: Optional[Node] = root
        elem_bytes = 8
        while isinstance(node, PatternExpr):
            stack.append(node)
            if isinstance(node, (Filter, GroupBy)):
                indices.append(node)
                body = node.value if not isinstance(node, GroupBy) else node.value
                if isinstance(body.ty, ScalarType):
                    elem_bytes = body.ty.size_bytes
                break
            if isinstance(node, Reduce):
                if isinstance(node.body.ty, ScalarType):
                    elem_bytes = node.body.ty.size_bytes
                break
            if isinstance(node, Foreach):
                # Explicit stores already recorded; no synthetic output.
                return
            # Map / ZipWith
            indices.append(node)
            body = node.body
            if isinstance(body, Block):
                body = body.result
            if isinstance(body.ty, ScalarType):
                elem_bytes = body.ty.size_bytes
            node = body if isinstance(body, PatternExpr) else None

        if not indices:
            indices = stack[:1]
        axis_forms = tuple(LinearForm.index(p.index.name) for p in indices)
        shape = tuple(
            max(1, int(eval_size(p.size, self.env))) for p in indices
        )
        self.sites.append(
            AccessSite(
                array_key="__out__",
                kind="write",
                elem_bytes=elem_bytes,
                axis_forms=axis_forms,
                shape=shape,
                pattern_stack=tuple(stack[: len(indices)]) or (root,),
                branch_prob=1.0,
                flexible_layout=False,
                synthetic=True,
            )
        )


def inline_scalar_binds(root: PatternExpr) -> PatternExpr:
    """Inline pure scalar let-bindings for analysis purposes.

    Index arithmetic routed through a ``Bind`` (``base = i*C; m[base+j]``)
    would otherwise lose its affine structure.  Bindings whose value
    contains patterns, allocations, stores, or randomness are kept.
    """
    from ..ir.rewrite import rewrite, substitute_var
    from ..ir.traversal import walk as walk_nodes

    def is_pure_scalar(expr: Expr) -> bool:
        if not isinstance(expr.ty, ScalarType):
            return False
        for sub in walk_nodes(expr):
            if isinstance(sub, (PatternExpr, Alloc, Store, RandomIndex)):
                return False
        return True

    def transform(node: Node) -> Optional[Node]:
        if not isinstance(node, Block):
            return None
        kept: List = []
        result: Node = node.result
        changed = False
        pending = list(node.stmts)
        while pending:
            stmt = pending.pop(0)
            if isinstance(stmt, Bind) and is_pure_scalar(stmt.value):
                changed = True
                replacement = stmt.value
                pending = [
                    _subst_stmt(s, stmt.var.name, replacement) for s in pending
                ]
                result = substitute_var(result, stmt.var.name, replacement)
            else:
                kept.append(stmt)
        if not changed:
            return None
        if not kept:
            return result
        return Block(tuple(kept), result)  # type: ignore[arg-type]

    def _subst_stmt(stmt, name, replacement):
        return substitute_var(stmt, name, replacement)

    return rewrite(root, transform)  # type: ignore[return-value]


def collect_accesses(
    root: PatternExpr, env: Optional[SizeEnv] = None, inline: bool = True
) -> AccessSummary:
    """Collect every access site of a nest.

    By default scalar let-bindings are inlined first so index arithmetic
    stays affine; pass ``inline=False`` when the caller has already
    canonicalized the tree (and needs node identities to line up with other
    analyses over the same tree).
    """
    if env is None:
        env = SizeEnv()
    tree = inline_scalar_binds(root) if inline else root
    return _Collector(env).collect(tree)
