"""Fixed mapping strategies from prior work, expressed in our parameters.

Figure 7 of the paper shows that previous strategies are points in its
mapping space:

* **1D mapping** — parallelize only the outermost pattern (Thrust, Firepile,
  Nikola).  Inner levels run sequentially inside each thread.
* **thread-block/thread** — outer iterations to blocks, inner iterations to
  the threads of a block (Copperhead).
* **warp-based** — outer iterations to warps (block-size-16 groups along y),
  inner iterations to the 32 threads of a warp (Hong et al.).

These are *restricted parameter assignments*, not separate code paths —
which is exactly the paper's coverage claim.  The benchmark harness selects
them by name to produce the comparison figures.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..config import MAX_BLOCK_SIZE, WARP_SIZE
from ..errors import MappingError
from .mapping import Dim, LevelMapping, Mapping, Span, SpanAll, Split, seq_level


def one_d(sizes: Sequence[int], block_size: int = 256) -> Mapping:
    """Parallelize only level 0; deeper levels are sequential per thread."""
    if not sizes:
        raise MappingError("need at least one level")
    levels = [LevelMapping(Dim.X, block_size, Span(1))]
    levels.extend(seq_level() for _ in sizes[1:])
    return Mapping(tuple(levels))


def thread_block_thread(sizes: Sequence[int]) -> Mapping:
    """Copperhead's strategy: outer -> thread blocks, inner -> threads.

    Equivalent parameters (Fig. 7a): level 0 ``[DimY, 1, Span(1)]``,
    level 1 ``[DimX, min(J, 1024) rounded to a block size, Span(all)]``.
    Only two levels of parallelism are exploitable; deeper levels run
    sequentially.
    """
    if len(sizes) < 2:
        # A flat pattern leaves nothing for the inner dimension; the
        # strategy degenerates to the 1D mapping.
        return one_d(sizes)
    inner = _clamp_block(sizes[1], MAX_BLOCK_SIZE)
    levels = [
        LevelMapping(Dim.Y, 1, Span(1)),
        LevelMapping(Dim.X, inner, SpanAll()),
    ]
    levels.extend(seq_level() for _ in sizes[2:])
    return Mapping(tuple(levels))


def warp_based(sizes: Sequence[int]) -> Mapping:
    """Hong et al.'s strategy: outer -> warps, inner -> threads in a warp.

    Equivalent parameters (Fig. 7b): level 0 ``[DimY, 16, Span(1)]``,
    level 1 ``[DimX, 32, Span(all)]`` — 16 chosen so a block holds enough
    total threads (16 warps of 32 = 512 threads/block).
    """
    if len(sizes) < 2:
        return one_d(sizes)
    levels = [
        LevelMapping(Dim.Y, 16, Span(1)),
        LevelMapping(Dim.X, WARP_SIZE, SpanAll()),
    ]
    levels.extend(seq_level() for _ in sizes[2:])
    return Mapping(tuple(levels))


def split_forcing(
    sizes: Sequence[int], level: int, k: int = 2, block_size: int = 64
) -> Mapping:
    """A mapping that forces ``Split(k)`` degree reduction at one level.

    The differential-testing oracle uses this to exercise the combiner-kernel
    code path deliberately: level ``level`` gets ``[DimX, block_size,
    Split(k)]`` while level 0 (when distinct) keeps a block-spanning
    ``[DimY, 1, Span(1)]`` assignment and every other level runs
    sequentially.  The caller is responsible for picking a level whose
    hard constraints are splittable (``SpanAllRequired.splittable``).
    """
    if not sizes:
        raise MappingError("need at least one level")
    if not 0 <= level < len(sizes):
        raise MappingError(f"split level {level} out of range for {len(sizes)} levels")
    levels = []
    for i in range(len(sizes)):
        if i == level:
            levels.append(LevelMapping(Dim.X, block_size, Split(k)))
        elif i == 0:
            levels.append(LevelMapping(Dim.Y, 1, Span(1)))
        else:
            levels.append(seq_level())
    return Mapping(tuple(levels))


def _clamp_block(size: int, limit: int) -> int:
    """Round a domain size down to a power-of-two block size within limits."""
    clamped = max(1, min(size, limit))
    return 1 << (clamped.bit_length() - 1)


#: Strategy registry used by the benchmark harness.
FIXED_STRATEGIES: Dict[str, Callable[[Sequence[int]], Mapping]] = {
    "1d": one_d,
    "thread-block/thread": thread_block_thread,
    "warp-based": warp_based,
}


def fixed_strategy(name: str, sizes: Sequence[int]) -> Mapping:
    """Look up and instantiate a fixed strategy by name."""
    try:
        factory = FIXED_STRATEGIES[name]
    except KeyError:
        raise MappingError(
            f"unknown strategy {name!r}; known: {sorted(FIXED_STRATEGIES)}"
        )
    return factory(sizes)
