"""Vectorized batch mapping search: the candidate space as NumPy arrays.

The third search engine (after the exhaustive reference and the pruned
branch-and-bound walk).  Instead of walking candidates one Python object
at a time, it materializes the *whole* candidate space as integer-coded
matrices — one row per candidate, one column per nest level, separate
arrays for the dimension assignment, the block size, and the span code —
and evaluates every constraint once as a vectorized predicate over the
full candidate matrix (:meth:`repro.analysis.constraints.Constraint.batch_satisfied`).

The space is a cross product of three small factor axes — dimension
permutations, block-size grid rows, span combinations — and the batch
keeps that factorization: candidates are (permutation, grid row) base
pairs tiled by the span combinations, and everything that depends on
only one factor (threads per block, tie-break codes, DOP factors, warp
variance, span-free or span-only predicates) is computed on the factor
table and broadcast.  The per-candidate axis only ever sees a fixed
number of cheap elementwise passes; nothing is sorted along it.

The factor tables themselves depend only on the nest depth, the
block-size grid, and which levels carry a hard Span(all) requirement —
not on constraint *values* — so they are memoized process-wide
(:data:`_STRUCTURE_MEMO`, cleared by
:func:`repro.analysis.cache.clear_caches`) and repeated searches over
the same shape skip straight to predicate evaluation.

Byte-identical contract
-----------------------

The engine must reproduce :func:`~repro.analysis.search.search_mapping_reference`
bit for bit — mapping, score, DOP, candidate counts, ``all_scored``
ordering, and the seeded tie-break.  Four mechanisms carry that:

* **Enumeration order.**  Rows are materialized in the reference's exact
  enumeration order (dimension permutations outermost, then the
  block-size cross product, spans innermost), so "the k-th candidate"
  means the same thing in both engines.
* **Exact scores.**  Per-candidate scores are *not* computed with a
  float dot product (which rounds per add).  Candidates are grouped by
  their satisfied-soft-constraint bit pattern (a ``bincount`` fold over
  the constraint columns) and each distinct pattern is summed once with
  :func:`math.fsum` — the exact, order-independent sum both other
  engines use, so equal weight sets give equal floats.
* **Tie-break replay.**  The reference threads every feasible candidate
  through a stateful reservoir sampler whose random draws depend on the
  running incumbent.  The engine packs each candidate's
  ``(score, dop, block sizes)`` tie-break key into one ``int64``
  (rank-coded score, raw DOP, rank-coded sizes), takes a prefix maximum,
  and reads the draw positions off it: the reference draws exactly when
  a candidate's key equals the running maximum.  Draws before the final
  maximum's first appearance are skipped in bulk; only the final tie
  pool — typically a handful of candidates — replays its draws one by
  one.
* **Overflow containment.**  DOP products are compared as int64; when
  the worst-case product cannot fit, the engine declines
  (:class:`BatchUnsupported`) and the caller falls back to the walk,
  which compares arbitrary-precision Python ints.

Eligibility: every constraint must carry a batch predicate
(:func:`repro.analysis.tables.batch_supported`); opaque constraints or a
``batch_satisfied`` returning ``None`` raise :class:`BatchUnsupported`
and the staged pipeline falls back exactly as it does for the tables.
"""

from __future__ import annotations

import itertools
import math
import random
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import (
    BLOCK_SIZE_CANDIDATES,
    MAX_BLOCK_SIZE,
    TIE_BREAK_SEED,
    WARP_SIZE,
)
from ..errors import SearchError
from ..observability import instrumented_stage
from ..resilience.budget import Budget
from .constraints import Constraint, ConstraintSet, has_batch_predicate
from .dop import DopWindow
from .mapping import (
    DIM_MAX_THREADS,
    SPAN_CODE_SPAN1,
    Dim,
    LevelMapping,
    Mapping,
    span_code,
)
from .scoring import ScoredMapping
from .tables import span_options_for_levels

#: int64 head-room bound for exact DOP / packed-key comparison; above
#: this the engine declines rather than risk silent wrap-around.
_INT64_SAFE_BITS = 62

#: Bin ceiling for one pattern-fold bincount chunk (2**16 int64 bins is
#: half a megabyte — cheap — while folding 16 constraint columns in one
#: pass instead of sixteen).
_FOLD_CHUNK_BINS = 1 << 16


class BatchUnsupported(Exception):
    """The candidate space cannot be evaluated as a batch.

    Raised when a constraint lacks a batch predicate (or returns ``None``
    at runtime) or when exact int64 DOP comparison could overflow.  The
    staged pipeline catches this and falls back to the pruned walk — the
    same containment the tables apply to opaque constraints.
    """


class CandidateBatch:
    """The materialized candidate space, one row per candidate.

    Integer coding: ``dims[i, l]`` is the :class:`Dim` value of level
    ``l`` under candidate ``i``; ``block_sizes[i, l]`` its block size;
    ``spans[i, l]`` a span code (:data:`SPAN_CODE_SPAN1` /
    :data:`SPAN_CODE_SPANALL`).  Rows are in the reference engine's
    enumeration order.

    The batch stores its factorization — candidate ``i`` is base pair
    ``i // span_tile`` (a permutation row and a block-size grid row)
    with span combination ``i % span_tile`` — and the per-candidate
    arrays above are *lazy* expansions that only materialize if a
    predicate without a span-free/base-free declaration reads them.
    Declared predicates run against :meth:`base_view` or
    :meth:`combo_view` instead and never touch the full axis.

    ``shared`` is the lazy-expansion cache.  Batches built from the
    process-wide structure memo pass the memo's dict so expansions
    survive across searches; ad-hoc batches get a private one.  The
    cached arrays are treated as immutable.
    """

    def __init__(
        self,
        num_levels: int,
        sizes: Tuple[int, ...],
        perm_table: np.ndarray,   # (P, L) int8 Dim codes
        grid_table: np.ndarray,   # (G, L) int64 block sizes
        span_table: np.ndarray,   # (T, L) int8 span codes
        base_perm_ids: np.ndarray,  # (n_base,) into perm_table
        base_size_ids: np.ndarray,  # (n_base,) into grid_table
        base_span_ids: np.ndarray,  # (n_base,) into span_table (views)
        span_tile: int,
        warp_size: int = WARP_SIZE,
        shared: Optional[dict] = None,
    ) -> None:
        self.num_levels = num_levels
        self.sizes = sizes
        self.perm_table = perm_table
        self.grid_table = grid_table
        self.span_table = span_table
        self.base_perm_ids = base_perm_ids
        self.base_size_ids = base_size_ids
        self.base_span_ids = base_span_ids
        self.span_tile = span_tile
        self.warp_size = warp_size
        self._shared = shared if shared is not None else {}

    def __len__(self) -> int:
        return self.base_perm_ids.shape[0] * self.span_tile

    def _cached(self, key: str, compute):
        value = self._shared.get(key)
        if value is None:
            value = compute()
            self._shared[key] = value
        return value

    # -- factor views ----------------------------------------------------

    def base_view(self) -> "CandidateBatch":
        """One row per (permutation, block-size) base pair.

        Candidate ``i`` corresponds to base row ``i // span_tile``; a
        span-free predicate column computed here broadcasts back with
        ``np.repeat(col, span_tile)``.  The view's span codes are the
        first combination's — a predicate honouring its
        ``batch_span_free`` declaration never reads them.
        """
        if self.span_tile == 1:
            return self
        return CandidateBatch(
            self.num_levels, self.sizes,
            self.perm_table, self.grid_table, self.span_table,
            self.base_perm_ids, self.base_size_ids,
            np.zeros(len(self.base_perm_ids), dtype=np.int64),
            span_tile=1, warp_size=self.warp_size,
            shared=self._shared.setdefault("__base__", {}),
        )

    def combo_view(self) -> "CandidateBatch":
        """One row per span combination (``span_tile`` rows total).

        Candidate ``i`` corresponds to combo row ``i % span_tile``; a
        base-free predicate column computed here broadcasts back with
        ``np.tile(col, n_base)``.  The view's dims/block sizes are the
        first base pair's — a predicate honouring its
        ``batch_base_free`` declaration never reads them.
        """
        first = np.zeros(self.span_tile, dtype=np.int64)
        return CandidateBatch(
            self.num_levels, self.sizes,
            self.perm_table, self.grid_table, self.span_table,
            first + self.base_perm_ids[0], first + self.base_size_ids[0],
            np.arange(self.span_tile, dtype=np.int64),
            span_tile=1, warp_size=self.warp_size,
            shared=self._shared.setdefault("__combo__", {}),
        )

    # -- per-candidate arrays (lazy expansions) -------------------------

    @property
    def perm_ids(self) -> np.ndarray:
        return self._cached(
            "perm_ids",
            lambda: np.repeat(self.base_perm_ids, self.span_tile),
        )

    @property
    def size_ids(self) -> np.ndarray:
        return self._cached(
            "size_ids",
            lambda: np.repeat(self.base_size_ids, self.span_tile),
        )

    @property
    def span_ids(self) -> np.ndarray:
        if self.span_tile == 1:
            return self.base_span_ids
        return self._cached(
            "span_ids",
            lambda: np.tile(
                np.arange(self.span_tile, dtype=np.int64),
                self.base_perm_ids.shape[0],
            ),
        )

    @property
    def dims(self) -> np.ndarray:
        return self._cached("dims", lambda: self.perm_table[self.perm_ids])

    @property
    def block_sizes(self) -> np.ndarray:
        return self._cached(
            "block_sizes", lambda: self.grid_table[self.size_ids]
        )

    @property
    def spans(self) -> np.ndarray:
        return self._cached("spans", lambda: self.span_table[self.span_ids])

    @property
    def grid_threads(self) -> np.ndarray:
        """Threads per block, per *grid row* (the factor table)."""
        return self._cached(
            "grid_threads",
            lambda: self.grid_table.prod(axis=1, dtype=np.int64),
        )

    @property
    def threads_per_block(self) -> np.ndarray:
        """Total threads per block, per candidate (all levels parallel)."""
        return self._cached(
            "threads",
            lambda: np.repeat(
                self.grid_threads[self.base_size_ids], self.span_tile
            ),
        )

    def _warp_varies_base(self) -> np.ndarray:
        dims_b = self.perm_table[self.base_perm_ids]
        bs_b = self.grid_table[self.base_size_ids]
        n_base, levels = dims_b.shape
        varies = np.empty((n_base, levels), dtype=bool)
        for lvl in range(levels):
            faster = dims_b < dims_b[:, lvl : lvl + 1]
            stride = np.where(faster, bs_b, 1).prod(axis=1, dtype=np.int64)
            varies[:, lvl] = (bs_b[:, lvl] > 1) & (stride < self.warp_size)
        return varies

    def warp_varies(self, level: int) -> np.ndarray:
        """Per candidate: does ``level``'s index differ within a warp?

        Mirrors :meth:`Mapping.varies_within_warp`: the stride of a
        level is the product of the block sizes of all faster (lower)
        dimensions; the level varies when its block size exceeds 1 and
        that stride is below the warp size.  Spans never matter, so the
        computation runs on the (permutation, grid row) base pairs and
        is repeated per candidate.
        """
        varies = self._cached("warp_varies", self._warp_varies_base)
        if self.span_tile == 1:
            return varies[:, level]
        return np.repeat(varies[:, level], self.span_tile)


def _grid_codes(
    grid_table: np.ndarray, block_sizes: Tuple[int, ...]
) -> np.ndarray:
    """Rank-packed block-size tuples, one code per grid row.

    Order-isomorphic to tuple comparison of the block sizes (outermost
    level most significant), which is exactly the incumbent's
    lexicographic size tie-break.
    """
    sorted_sizes = np.asarray(sorted(block_sizes), dtype=np.int64)
    ranks = np.searchsorted(sorted_sizes, grid_table)
    base = len(block_sizes) + 1
    codes = np.zeros(grid_table.shape[0], dtype=np.int64)
    for level in range(grid_table.shape[1]):
        codes = codes * base + ranks[:, level]
    return codes


class _CandidateStructure:
    """Memoized factor tables for one candidate-space shape.

    Everything here is a pure function of ``(num_levels, block_sizes,
    forced Span(all) levels)`` — constraint *values* (weights, which
    soft constraints exist) never enter, so one structure serves every
    search over the same shape.  ``shared`` is the lazy-expansion cache
    handed to every batch built from this structure; ``dop_memo`` caches
    the per-(grid row, span combo) DOP table per analysis-size tuple.
    """

    __slots__ = (
        "num_levels", "perm_table", "grid_table", "span_table",
        "base_perm_ids", "base_size_ids", "span_combos", "span_tile",
        "grid_codes", "shared", "dop_memo",
    )

    def __init__(
        self,
        num_levels: int,
        block_sizes: Tuple[int, ...],
        span_options: Tuple[Tuple, ...],
    ) -> None:
        self.num_levels = num_levels
        dims = list(Dim)[:num_levels]
        perms = list(itertools.permutations(dims, num_levels))
        self.span_combos = list(itertools.product(*span_options))
        self.span_tile = len(self.span_combos)

        sizes_arr = np.asarray(block_sizes, dtype=np.int64)
        n_sizes = len(block_sizes)
        n_grid = n_sizes ** num_levels
        # Every block-size tuple, in itertools.product order (row-major):
        # level l cycles with period n_sizes**(L-1-l).
        row = np.arange(n_grid)
        grid_table = np.empty((n_grid, num_levels), dtype=np.int64)
        for level in range(num_levels):
            period = n_sizes ** (num_levels - 1 - level)
            grid_table[:, level] = sizes_arr[(row // period) % n_sizes]
        product_ok = (
            grid_table.prod(axis=1, dtype=np.int64) <= MAX_BLOCK_SIZE
        )

        perm_table = np.asarray(
            [[int(d) for d in p] for p in perms], dtype=np.int8
        )
        caps = np.asarray(
            [DIM_MAX_THREADS[d] for d in Dim], dtype=np.int64
        )[perm_table]  # (P, L)
        # Permutations mostly share their per-level cap row (only *which*
        # dims carry the 1024 cap varies), so validity is computed once
        # per distinct cap row and gathered — never as a (P, G, L)
        # broadcast.
        cap_rows, cap_inverse = np.unique(
            caps, axis=0, return_inverse=True
        )
        pattern_valid = product_ok[None, :] & (
            grid_table[None, :, :] <= cap_rows[:, None, :]
        ).all(axis=2)  # (distinct cap rows, G)
        valid = pattern_valid[cap_inverse.ravel()]  # (P, G)

        # np.nonzero iterates row-major: permutation-major, then size
        # order — the reference's loop nesting.  Spans expand innermost
        # (the tile).
        self.base_perm_ids, self.base_size_ids = np.nonzero(valid)
        self.perm_table = perm_table
        self.grid_table = grid_table
        self.span_table = np.asarray(
            [[span_code(s) for s in combo] for combo in self.span_combos],
            dtype=np.int8,
        ).reshape(self.span_tile, num_levels)
        self.grid_codes = _grid_codes(grid_table, block_sizes)
        self.shared: dict = {}
        self.dop_memo: Dict[Tuple[int, ...], Tuple[np.ndarray, int]] = {}

    def batch(self, sizes: Tuple[int, ...]) -> CandidateBatch:
        """A batch over this structure at the given analysis sizes.

        Cheap per call: the arrays are shared, only the wrapper object
        (which carries the per-search ``sizes``) is fresh.
        """
        return CandidateBatch(
            num_levels=self.num_levels,
            sizes=sizes,
            perm_table=self.perm_table,
            grid_table=self.grid_table,
            span_table=self.span_table,
            base_perm_ids=self.base_perm_ids,
            base_size_ids=self.base_size_ids,
            base_span_ids=np.zeros(
                self.base_perm_ids.shape[0], dtype=np.int64
            ),
            span_tile=self.span_tile,
            shared=self.shared,
        )


_STRUCTURE_MEMO: Dict[Tuple, _CandidateStructure] = {}
_STRUCTURE_MEMO_MAX = 16
_STRUCTURE_LOCK = threading.Lock()


def clear_batch_memo() -> None:
    """Drop the memoized candidate structures (tests, benchmarks)."""
    with _STRUCTURE_LOCK:
        _STRUCTURE_MEMO.clear()


def _structure_for(
    num_levels: int, cset: ConstraintSet, block_sizes: Tuple[int, ...]
) -> _CandidateStructure:
    forced = tuple(
        sorted(
            level
            for level in cset.span_all_levels()
            if level < num_levels
        )
    )
    key = (num_levels, block_sizes, forced)
    with _STRUCTURE_LOCK:
        struct = _STRUCTURE_MEMO.get(key)
    if struct is not None:
        return struct
    struct = _CandidateStructure(
        num_levels, block_sizes, span_options_for_levels(cset, num_levels)
    )
    with _STRUCTURE_LOCK:
        existing = _STRUCTURE_MEMO.get(key)
        if existing is not None:
            return existing
        while len(_STRUCTURE_MEMO) >= _STRUCTURE_MEMO_MAX:
            _STRUCTURE_MEMO.pop(next(iter(_STRUCTURE_MEMO)))
        _STRUCTURE_MEMO[key] = struct
    return struct


def materialize_candidates(
    num_levels: int,
    cset: ConstraintSet,
    block_sizes: Sequence[int] = BLOCK_SIZE_CANDIDATES,
    sizes: Tuple[int, ...] = (),
) -> Tuple[CandidateBatch, List[Tuple]]:
    """Build the candidate matrix in the reference enumeration order.

    Returns ``(batch, span_combos)`` where
    ``span_combos[i % batch.span_tile]`` holds candidate ``i``'s actual
    per-level span objects (for :class:`Mapping` reconstruction).
    """
    struct = _structure_for(num_levels, cset, tuple(block_sizes))
    return struct.batch(tuple(sizes)), struct.span_combos


def _predicate_column(c: Constraint, batch: CandidateBatch) -> np.ndarray:
    col = c.batch_satisfied(batch)
    if col is None:
        raise BatchUnsupported(f"{type(c).__name__} has no batch predicate")
    return np.asarray(col, dtype=bool)


def _fold_patterns(
    columns: List[np.ndarray],
    n: int,
    init_state: Optional[np.ndarray] = None,
    init_bits: Optional[List[Tuple[bool, ...]]] = None,
) -> Tuple[np.ndarray, List[Tuple[bool, ...]]]:
    """Group candidates by their soft-satisfaction bit pattern.

    Folds the constraint columns in chunks: a chunk's raw id is (state,
    chunk bits), one ``bincount`` finds which raw ids actually occur,
    and occupied ids are relabelled compactly before the next chunk.
    Everything stays O(candidates) per chunk with no sort of the
    candidate axis; the chunk width is capped so one bincount never
    exceeds :data:`_FOLD_CHUNK_BINS` bins, and the live state count
    stays bounded by the number of patterns that actually occur.

    ``init_state``/``init_bits`` continue a fold started on a coarser
    row set (the span-free base fold) with further columns.
    """
    if init_state is not None:
        state = init_state.astype(np.int64, copy=False)
        state_bits = list(init_bits or [()])
    else:
        state = np.zeros(n, dtype=np.int64)
        state_bits = [()]
    index = 0
    while index < len(columns):
        width = 0
        bins = max(1, len(state_bits))
        while (
            index + width < len(columns)
            and bins << (width + 1) <= _FOLD_CHUNK_BINS
        ):
            width += 1
        if width == 0:  # a single column always fits the next chunk
            width = 1
        raw = state
        for col in columns[index : index + width]:
            raw = raw * 2 + col
        index += width
        occupied = np.nonzero(
            np.bincount(raw, minlength=bins << width)
        )[0]
        remap = np.zeros(bins << width, dtype=np.int64)
        remap[occupied] = np.arange(occupied.shape[0])
        state = remap[raw]
        state_bits = [
            state_bits[r >> width]
            + tuple(
                bool((r >> (width - 1 - b)) & 1) for b in range(width)
            )
            for r in occupied
        ]
    return state, state_bits


def _state_scores(
    state_bits: List[Tuple[bool, ...]], soft: List[Constraint]
) -> np.ndarray:
    """Exact fsum score per satisfaction pattern.

    ``soft`` must be in the fold's column order; fsum is the correctly
    rounded exact sum, so the result is identical to the reference's
    per-candidate fsum regardless of that order.
    """
    weights = [getattr(c, "weight", 0.0) for c in soft]
    return np.asarray(
        [
            math.fsum(w for w, bit in zip(weights, bits) if bit)
            for bits in state_bits
        ],
        dtype=np.float64,
    )


def _dop_table(struct, sizes_t: Tuple[int, ...]) -> Tuple[np.ndarray, int]:
    """Exact DOP per (grid row, span combo), plus the worst-case bound.

    Mirrors :meth:`Mapping.dop` for the search's span space: a Span(1)
    level contributes ``max(1, size)``, a Span(all) level
    ``min(block_size, max(1, size))``.  Computed on the factor tables —
    a (G, T) product of L broadcasts — never per candidate.  ``struct``
    is anything with ``grid_table``/``span_table`` (a structure or a
    batch).
    """
    bound = 1
    for size in sizes_t:
        bound *= max(1, size)
    if bound.bit_length() >= _INT64_SAFE_BITS:
        raise BatchUnsupported(
            "DOP products exceed exact int64 range at these sizes"
        )
    grid = struct.grid_table  # (G, L)
    span_table = struct.span_table  # (T, L)
    table = np.ones((grid.shape[0], span_table.shape[0]), dtype=np.int64)
    for lvl in range(len(sizes_t)):
        hint = max(1, sizes_t[lvl])
        span1 = span_table[:, lvl] == SPAN_CODE_SPAN1  # (T,)
        capped = np.minimum(grid[:, lvl], hint)  # (G,)
        table *= np.where(span1[None, :], hint, capped[:, None])
    return table, bound


def _dop_table_cached(
    struct: _CandidateStructure, sizes_t: Tuple[int, ...]
) -> Tuple[np.ndarray, int]:
    cached = struct.dop_memo.get(sizes_t)
    if cached is None:
        cached = _dop_table(struct, sizes_t)
        if len(struct.dop_memo) >= 8:
            struct.dop_memo.pop(next(iter(struct.dop_memo)))
        struct.dop_memo[sizes_t] = cached
    return cached


def _key_bits(n_scores: int, dop_bound: int, code_bound: int):
    """Bit widths for the packed tie-break key, or None on overflow."""
    dop_bits = max(1, int(dop_bound).bit_length())
    code_bits = max(1, int(code_bound).bit_length())
    score_bits = max(1, int(n_scores).bit_length())
    if score_bits + dop_bits + code_bits >= _INT64_SAFE_BITS:
        return None
    return dop_bits, code_bits


def _packed_keys(
    score_rank: np.ndarray,
    n_scores: int,
    dop: np.ndarray,
    dop_bound: int,
    code: np.ndarray,
    code_bound: int,
) -> np.ndarray:
    """One int64 per candidate, order-isomorphic to (score, dop, sizes).

    Raw DOP values are packed directly when the per-component bounds
    fit in 62 bits together; otherwise DOP is rank-compressed first
    (one sort of the feasible subset — the rare path).
    """
    bits = _key_bits(n_scores, dop_bound, code_bound)
    if bits is None:
        uniq, dop = np.unique(dop, return_inverse=True)
        dop = dop.astype(np.int64, copy=False)
        bits = _key_bits(n_scores, uniq.shape[0], code_bound)
        if bits is None:
            raise BatchUnsupported(
                "tie-break key exceeds exact int64 range"
            )
    dop_bits, code_bits = bits
    return (
        ((score_rank.astype(np.int64) << dop_bits) | dop) << code_bits
    ) | code


def _replay_reservoir(keys: np.ndarray, seed: int) -> int:
    """The index the reference's reservoir sampler would have chosen.

    Reconstructs the reference's stream of ``rng.random()`` draws: one
    draw per candidate whose key equals the running maximum (a tie with
    the incumbent), none for strict improvements.  Draws before the
    final maximum's first appearance only advance the stream; the final
    tie pool replays its draws with the 1/k acceptance the reservoir
    uses.
    """
    running = np.maximum.accumulate(keys)
    prefix = np.empty_like(running)
    prefix[0] = -1
    prefix[1:] = running[:-1]
    ties = keys == prefix

    first_best = int(np.argmax(keys))
    rng = random.Random(seed)
    pre_draws = int(np.count_nonzero(ties[:first_best]))
    for _ in range(pre_draws):
        rng.random()

    winner = first_best
    pool = np.nonzero(ties[first_best + 1 :])[0] + first_best + 1
    count = 1
    for index in pool:
        count += 1
        if rng.random() < 1.0 / count:
            winner = int(index)
    return winner


def _hard_feasible_rows(
    cset: ConstraintSet,
    batch: CandidateBatch,
    base: CandidateBatch,
    combo: CandidateBatch,
) -> Tuple[Optional[np.ndarray], int]:
    """Hard-feasibility rows for one candidate batch.

    Span-free predicates run on the base pairs, span-only predicates on
    the combo rows, the undeclared remainder at full resolution — each
    tier is a handful of rows times cheaper than the last.  Returns
    ``(rows, count)``; ``rows`` is ``None`` when every candidate is
    feasible (so callers can skip the gather entirely).
    """
    tile = batch.span_tile
    n_base = len(base)
    base_mask: Optional[np.ndarray] = None
    combo_mask: Optional[np.ndarray] = None
    full_mask: Optional[np.ndarray] = None
    for c in cset.hard:
        if c.batch_span_free:
            col = _predicate_column(c, base)
            base_mask = col if base_mask is None else base_mask & col
        elif c.batch_base_free:
            col = _predicate_column(c, combo)
            combo_mask = col if combo_mask is None else combo_mask & col
        else:
            col = _predicate_column(c, batch)
            full_mask = col if full_mask is None else full_mask & col

    feasible_mask: Optional[np.ndarray] = None  # None = all feasible
    if base_mask is not None and not base_mask.all():
        feasible_mask = np.repeat(base_mask, tile)
    if combo_mask is not None and not combo_mask.all():
        tiled = np.tile(combo_mask, n_base)
        feasible_mask = (
            tiled if feasible_mask is None else feasible_mask & tiled
        )
    if full_mask is not None and not full_mask.all():
        feasible_mask = (
            full_mask
            if feasible_mask is None
            else feasible_mask & full_mask
        )
    if feasible_mask is None:
        return None, len(batch)
    feasible_rows = np.nonzero(feasible_mask)[0]
    return feasible_rows, int(feasible_rows.shape[0])


def iter_feasible_mappings(
    num_levels: int,
    cset: ConstraintSet,
    sizes: Sequence[int],
    block_sizes: Sequence[int] = BLOCK_SIZE_CANDIDATES,
):
    """Yield hard-feasible candidate mappings in enumeration order.

    A batch prefilter for per-candidate consumers (the cost-model
    auto-tuner): the hard masks are evaluated once over the whole
    candidate matrix, then only surviving rows are materialized as
    :class:`Mapping` objects — in exactly the order
    ``enumerate_candidates`` + ``hard_feasible`` would have produced
    them.  Raises :class:`BatchUnsupported` when a hard constraint has
    no batch predicate (callers fall back to the scalar filter).
    """
    if not all(has_batch_predicate(c) for c in cset.hard):
        raise BatchUnsupported(
            "hard constraint set contains members without a batch predicate"
        )
    struct = _structure_for(num_levels, cset, tuple(block_sizes))
    batch = struct.batch(tuple(sizes))
    rows, n_feas = _hard_feasible_rows(
        cset, batch, batch.base_view(), batch.combo_view()
    )
    span_combos = struct.span_combos
    indices = range(len(batch)) if rows is None else rows
    for row in indices:
        yield _mapping_for_row(int(row), batch, span_combos)


def _mapping_for_row(
    row: int, batch: CandidateBatch, span_combos: List[Tuple]
) -> Mapping:
    base_row, combo_row = divmod(row, batch.span_tile)
    perm = batch.perm_table[batch.base_perm_ids[base_row]]
    sizes = batch.grid_table[batch.base_size_ids[base_row]]
    spans = span_combos[combo_row]
    return Mapping(
        tuple(
            LevelMapping(Dim(int(dim)), int(size), span)
            for dim, size, span in zip(perm, sizes, spans)
        )
    )


def search_mapping_vectorized(
    num_levels: int,
    cset: ConstraintSet,
    sizes: Sequence[int],
    window: Optional[DopWindow] = None,
    block_sizes: Sequence[int] = BLOCK_SIZE_CANDIDATES,
    keep_all: bool = False,
    seed: int = TIE_BREAK_SEED,
    budget: Optional[Budget] = None,
):
    """Run Algorithm 1 with the batch engine (public, self-timing entry).

    Byte-identical to :func:`search_mapping_reference`; raises
    :class:`BatchUnsupported` when a constraint has no batch predicate.
    Most callers want :func:`~repro.analysis.search.search_mapping`,
    which auto-selects the engine and falls back gracefully.
    """
    from .search import (
        _BudgetStop,
        _effective_block_sizes,
        _fallback_result,
        _record_search_metrics,
        _validate,
    )

    if window is None:
        window = DopWindow()
    block_sizes = _effective_block_sizes(num_levels, block_sizes)
    sizes_t = _validate(num_levels, sizes)
    start = time.perf_counter()
    if budget is not None:
        budget.start()
    with instrumented_stage(
        "search", inject=False, levels=num_levels, mode="vectorized"
    ):
        try:
            result = _search_vectorized(
                num_levels, cset, sizes_t, window, block_sizes, keep_all,
                seed, budget=budget,
            )
        except _BudgetStop:
            result = _fallback_result(
                num_levels, cset, sizes_t, window,
                reason="search budget exhausted (vectorized batch)",
                budget=budget,
            )
    result.elapsed_ms = (time.perf_counter() - start) * 1e3
    _record_search_metrics(result)
    return result


def _search_vectorized(
    num_levels: int,
    cset: ConstraintSet,
    sizes_t: Tuple[int, ...],
    window: DopWindow,
    block_sizes: Tuple[int, ...],
    keep_all: bool,
    seed: int,
    budget: Optional[Budget] = None,
):
    """The batch engine body (no timing; the caller stamps elapsed_ms)."""
    from .search import _BudgetStop, _finish, _Incumbent

    if not all(has_batch_predicate(c) for c in cset.constraints):
        raise BatchUnsupported(
            "constraint set contains members without a batch predicate"
        )

    struct = _structure_for(num_levels, cset, block_sizes)
    span_combos = struct.span_combos
    batch = struct.batch(sizes_t)
    total = len(batch)
    if budget is not None and (not budget.spend(total) or budget.exhausted()):
        raise _BudgetStop()
    if total == 0:
        raise SearchError("no feasible mapping satisfies the hard constraints")

    base = batch.base_view()
    combo = batch.combo_view()
    tile = batch.span_tile
    n_base = len(base)

    feasible_rows, n_feas = _hard_feasible_rows(cset, batch, base, combo)
    if n_feas == 0:
        raise SearchError("no feasible mapping satisfies the hard constraints")

    # Exact scores: fold soft columns into pattern states, fsum each
    # distinct pattern once, gather.  Span-free constraints fold on the
    # base rows, span-only ones on the combo rows, the undeclared
    # remainder at full resolution.  The fold order may differ from
    # cset.soft order, but fsum is the correctly-rounded exact sum, so
    # the per-pattern floats are identical either way.
    soft_base = [c for c in cset.soft if c.batch_span_free]
    soft_combo = [
        c for c in cset.soft
        if c.batch_base_free and not c.batch_span_free
    ]
    soft_full = [
        c for c in cset.soft
        if not c.batch_span_free and not c.batch_base_free
    ]
    state_b, state_bits = _fold_patterns(
        [_predicate_column(c, base) for c in soft_base], n_base
    )
    base_only_scores = not soft_combo and not soft_full

    dop_table, dop_bound = _dop_table_cached(struct, sizes_t)
    code_bound = (len(block_sizes) + 1) ** num_levels

    state: Optional[np.ndarray] = None  # per-feasible-row state ids
    if base_only_scores:
        state_scores = _state_scores(state_bits, soft_base)
        uniq_scores = np.unique(state_scores)
        state_rank = np.searchsorted(uniq_scores, state_scores)
        bits = _key_bits(uniq_scores.shape[0], dop_bound, code_bound)
    else:
        bits = None

    if base_only_scores and bits is not None:
        # Fast path: scores depend only on the base pair, so the key
        # factorizes — base part (score rank and size code) broadcast
        # against the span axis (DOP) with one (n_base, T) add; no
        # per-candidate id arrays or gathers are ever built.
        dop_bits, code_bits = bits
        base_part = (
            state_rank[state_b] << np.int64(dop_bits + code_bits)
        ) | struct.grid_codes[batch.base_size_ids]
        keys = (
            base_part[:, None]
            | (dop_table << np.int64(code_bits))[batch.base_size_ids]
        ).reshape(-1)
        if feasible_rows is not None:
            keys = keys[feasible_rows]
    else:
        # General path: continue the fold at feasible-row resolution for
        # combo/full soft constraints, then gather each key component.
        if feasible_rows is not None:
            feas_base = feasible_rows // tile
            feas_combo = feasible_rows - feas_base * tile
        else:
            feas_base = np.repeat(
                np.arange(n_base, dtype=np.int64), tile
            )
            feas_combo = np.tile(np.arange(tile, dtype=np.int64), n_base)
        state = state_b[feas_base]
        if soft_combo:
            state, state_bits = _fold_patterns(
                [
                    _predicate_column(c, combo)[feas_combo]
                    for c in soft_combo
                ],
                n_feas, init_state=state, init_bits=state_bits,
            )
        if soft_full:
            cols = [_predicate_column(c, batch) for c in soft_full]
            if feasible_rows is not None:
                cols = [col[feasible_rows] for col in cols]
            state, state_bits = _fold_patterns(
                cols, n_feas, init_state=state, init_bits=state_bits,
            )
        state_scores = _state_scores(
            state_bits, soft_base + soft_combo + soft_full
        )
        uniq_scores = np.unique(state_scores)
        state_rank = np.searchsorted(uniq_scores, state_scores)
        feas_size = batch.base_size_ids[feas_base]
        keys = _packed_keys(
            state_rank[state],
            uniq_scores.shape[0],
            dop_table.reshape(-1)[feas_size * tile + feas_combo],
            dop_bound,
            struct.grid_codes[feas_size],
            code_bound,
        )

    winner = _replay_reservoir(keys, seed)
    winner_row = (
        winner if feasible_rows is None else int(feasible_rows[winner])
    )

    all_scored: List[ScoredMapping] = []
    if keep_all:
        rows_iter = (
            range(total) if feasible_rows is None else feasible_rows
        )
        dop_flat = dop_table.reshape(-1)
        for pos, row in enumerate(rows_iter):
            row = int(row)
            base_row, combo_row = divmod(row, tile)
            if state is None:
                score = float(state_scores[state_b[base_row]])
            else:
                score = float(state_scores[state[pos]])
            dop = int(
                dop_flat[batch.base_size_ids[base_row] * tile + combo_row]
            )
            all_scored.append(
                ScoredMapping(
                    _mapping_for_row(row, batch, span_combos), score, dop
                )
            )

    # A pre-decided shim for _finish: the winner and its score are known.
    winner_base = winner_row // tile
    if state is None:
        winner_score = float(state_scores[state_b[winner_base]])
    else:
        winner_score = float(state_scores[state[winner]])
    inc = _Incumbent(random.Random(0))
    inc.mapping = _mapping_for_row(winner_row, batch, span_combos)
    inc.score = winner_score
    result = _finish(
        inc, cset, sizes_t, window, total, n_feas, all_scored,
        scored=total, skipped=0, nodes_pruned=0, strategy="vectorized",
    )
    result.batch_shape = (total, num_levels)
    return result
