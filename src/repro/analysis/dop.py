"""Degree-of-parallelism control (procedure ControlDOP of Algorithm 1).

After the constraint-driven search picks the best-scoring mapping, the DOP
is checked against a device-derived window ``[MIN_DOP, MAX_DOP]``:

* below the minimum, a ``Span(all)`` level is relaxed to ``Split(k)`` —
  legal only when the Span(all) came from a synchronization requirement
  (a combiner kernel re-synchronizes the partials);
* above the maximum, a ``Span(1)`` level is coarsened to ``Span(n)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..config import DEFAULT_MAX_DOP, DEFAULT_MIN_DOP
from .constraints import ConstraintSet
from .mapping import LevelMapping, Mapping, Span, SpanAll, Split


@dataclass(frozen=True)
class DopWindow:
    """Device-derived DOP bounds (Section IV-D).

    For a Tesla K20c: ``min_dop = 13 SMs * 2048 threads = 26624`` and
    ``max_dop = 100 * min_dop``.
    """

    min_dop: int = DEFAULT_MIN_DOP
    max_dop: int = DEFAULT_MAX_DOP

    def __post_init__(self) -> None:
        if self.min_dop < 1 or self.max_dop < self.min_dop:
            raise ValueError(
                f"invalid DOP window [{self.min_dop}, {self.max_dop}]"
            )


def control_dop(
    mapping: Mapping,
    sizes: Sequence[int],
    window: DopWindow,
    splittable_levels: Optional[Dict[int, bool]] = None,
) -> Mapping:
    """Adjust span factors so the mapping's DOP falls inside the window.

    ``splittable_levels`` comes from
    :meth:`~repro.analysis.constraints.ConstraintSet.span_all_levels`; a
    level mapped Span(all) for a *dynamic-size* reason is never split.
    """
    from ..observability import instrumented_stage

    sizes = list(sizes)
    current = mapping.dop(sizes)

    with instrumented_stage("control_dop", inject=False, dop=current) as span:
        if current < window.min_dop:
            k = math.ceil(window.min_dop / max(1, current))
            level = _pick_split_level(mapping, sizes, splittable_levels or {})
            if level is not None and k >= 2:
                lm = mapping.level(level)
                # Splitting beyond the per-block iteration count is useless.
                iterations = mapping.thread_iterations(level, sizes[level])
                k = min(k, max(2, iterations))
                mapping = mapping.with_level(
                    level, LevelMapping(lm.dim, lm.block_size, Split(k))
                )
                span.set(adjustment=f"split({k})@{level}")
            return mapping

        if current > window.max_dop:
            n = math.ceil(current / window.max_dop)
            level = _pick_coarsen_level(mapping, sizes)
            if level is not None and n >= 2:
                lm = mapping.level(level)
                n = min(n, max(1, sizes[level]))
                mapping = mapping.with_level(
                    level, LevelMapping(lm.dim, lm.block_size, Span(n))
                )
                span.set(adjustment=f"span({n})@{level}")
            return mapping

        return mapping


def _pick_split_level(
    mapping: Mapping, sizes: Sequence[int], splittable: Dict[int, bool]
) -> Optional[int]:
    """Choose the Span(all) level with the most work to split."""
    best: Optional[int] = None
    best_size = -1
    for i, lm in enumerate(mapping.levels):
        if not isinstance(lm.span, SpanAll):
            continue
        if i in splittable and not splittable[i]:
            continue
        if sizes[i] > best_size:
            best, best_size = i, sizes[i]
    return best


def _pick_coarsen_level(mapping: Mapping, sizes: Sequence[int]) -> Optional[int]:
    """Choose the Span(1) level with the largest domain to coarsen."""
    best: Optional[int] = None
    best_size = -1
    for i, lm in enumerate(mapping.levels):
        if isinstance(lm.span, Span) and lm.span.n == 1 and sizes[i] > best_size:
            best, best_size = i, sizes[i]
    return best
