"""Terminal dashboard for the compile fleet (``repro fleet top``).

The renderer is a pure function from the two scrape payloads —
``/v1/stats`` (router counters, per-backend dispatch accounting,
breaker state, last-probe load) and ``/v1/metrics`` (the merged
fleet-wide registry snapshot with histogram exemplars) — to one block
of text, so tests can pin the layout against fixture payloads without
a server.  The polling loop around it is the only part that touches
the network or the terminal.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from .. import config as _config
from ..observability.aggregate import histogram_quantile

#: ANSI: clear screen + home.  Emitted once per refresh so the display
#: repaints in place instead of scrolling.
CLEAR = "\x1b[2J\x1b[H"

#: The latency histogram the dashboard quantiles; exemplar trace_ids in
#: its buckets are surfaced so an operator can jump from "p99 is bad"
#: to ``repro fleet trace <id>`` in one step.
LATENCY_HISTOGRAMS = ("fleet.request_ms", "service.request_ms")


def _rate(part: int, whole: int) -> str:
    if whole <= 0:
        return "-"
    return f"{100.0 * part / whole:.1f}%"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _pick_latency_histogram(
    histograms: Dict[str, Any]
) -> Optional[Dict[str, Any]]:
    for name in LATENCY_HISTOGRAMS:
        data = histograms.get(name)
        if data and data.get("count"):
            return {"name": name, **data}
    return None


def _exemplar_line(histogram: Dict[str, Any]) -> Optional[str]:
    """The exemplar resolving to the slowest populated bucket.

    That is the trace worth looking at: the request that landed in the
    highest latency bucket anyone hit — the p99/pmax story, with a
    trace id an operator can fetch.
    """
    exemplars = histogram.get("exemplars") or {}
    if not exemplars:
        return None
    index = max(int(k) for k in exemplars)
    buckets: List[float] = histogram.get("buckets") or []
    upper = (
        f"<= {buckets[index]:g}ms" if index < len(buckets) else
        f"> {buckets[-1]:g}ms" if buckets else "?"
    )
    return f"slowest bucket ({upper}) exemplar: {exemplars[str(index)]}"


def render_fleet_top(
    stats_payload: Dict[str, Any],
    metrics_payload: Optional[Dict[str, Any]] = None,
    url: str = "",
) -> str:
    """One dashboard frame from the two scrape payloads."""
    service: Dict[str, Any] = stats_payload.get("service") or {}
    lines: List[str] = []
    requests = int(service.get("requests", 0))
    uptime = float(service.get("uptime_s", 0.0))
    lines.append(
        f"repro fleet top{' — ' + url if url else ''}  "
        f"(uptime {uptime:.0f}s)"
    )
    lines.append(
        f"queue {service.get('queue_depth', 0)}/"
        f"{service.get('queue_limit', 0)}  "
        f"dispatchers {service.get('dispatchers', 0)}  "
        f"requests {requests}"
    )
    lines.append("")

    # -- request mix -----------------------------------------------------
    lru = int(service.get("lru_hits", 0))
    store = int(service.get("store_hits", 0))
    misses = int(service.get("misses", 0))
    coalesced = int(service.get("coalesced", 0))
    errors = int(service.get("errors", 0))
    shed = int(service.get("deadline_shed", 0))
    lines.append(
        f"hits: lru {lru} ({_rate(lru, requests)})  "
        f"store {store} ({_rate(store, requests)})  "
        f"misses {misses} ({_rate(misses, requests)})  "
        f"coalesced {coalesced} ({_rate(coalesced, requests)})"
    )
    reroutes = int(service.get("reroutes", 0))
    lines.append(
        f"reroutes {reroutes} "
        f"(saturation {service.get('reroutes_saturation', 0)}, "
        f"transport {service.get('reroutes_transport', 0)})  "
        f"hedges {service.get('hedges', 0)}"
        f"/{service.get('hedge_wins', 0)} won  "
        f"shed {shed}  errors {errors}"
    )
    lines.append(
        f"probes {service.get('probes', 0)}  "
        f"breaker_opened {service.get('breaker_opened', 0)}  "
        f"readmissions {service.get('readmissions', 0)}"
    )

    # -- latency ---------------------------------------------------------
    latency = service.get("latency_ms") or {}
    if latency.get("count"):
        lines.append(
            f"latency p50 {latency.get('p50', 0.0):.2f}ms  "
            f"p99 {latency.get('p99', 0.0):.2f}ms  "
            f"max {latency.get('max', 0.0):.2f}ms  "
            f"(n={latency.get('count')})"
        )
    merged = _merged_snapshot(metrics_payload)
    if merged is not None:
        histogram = _pick_latency_histogram(merged.get("histograms") or {})
        if histogram is not None:
            lines.append(
                f"fleet-wide {histogram['name']}: "
                f"p50<={histogram_quantile(histogram, 0.5):g}ms  "
                f"p99<={histogram_quantile(histogram, 0.99):g}ms  "
                f"(n={histogram['count']}, "
                f"sources={len(merged.get('sources') or [])})"
            )
            exemplar = _exemplar_line(histogram)
            if exemplar is not None:
                lines.append(f"  {exemplar}")
        missing = merged.get("missing") or []
        if missing:
            lines.append(f"  unreachable scrape targets: {missing}")
        unmerged = merged.get("unmerged") or []
        if unmerged:
            lines.append(f"  histograms with skewed bounds: {unmerged}")
    lines.append("")

    # -- per-backend table -----------------------------------------------
    backends: Dict[str, Any] = service.get("backends") or {}
    if backends:
        header = (
            f"{'backend':<12} {'state':<10} {'queue':>9} {'served':>7} "
            f"{'fail(sat/net)':>14} {'rerouted':>9}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for name in sorted(backends):
            entry = backends[name]
            breaker = entry.get("breaker") or {}
            state = breaker.get("state", "?") if isinstance(
                breaker, dict
            ) else str(breaker)
            if not entry.get("alive", True):
                state = f"{state}!" if state != "open" else state
            health = entry.get("last_health") or {}
            depth = health.get("queue_depth")
            limit = health.get("queue_limit")
            queue = (
                f"{depth}/{limit}"
                if depth is not None and limit is not None
                else "-"
            )
            failures = (
                f"{entry.get('failures', 0)}"
                f"({entry.get('failures_saturation', 0)}/"
                f"{entry.get('failures_transport', 0)})"
            )
            lines.append(
                f"{name:<12} {state:<10} {queue:>9} "
                f"{entry.get('served', 0):>7} {failures:>14} "
                f"{entry.get('reroutes_from', 0):>9}"
            )
    lru_stats = service.get("lru") or {}
    if lru_stats:
        lines.append("")
        lines.append(
            "lru: " + "  ".join(
                f"{key}={_fmt(lru_stats[key])}" for key in sorted(lru_stats)
            )
        )
    return "\n".join(lines)


def _merged_snapshot(
    metrics_payload: Optional[Dict[str, Any]]
) -> Optional[Dict[str, Any]]:
    """The merged registry snapshot inside a ``/v1/metrics`` payload.

    A fleet front-end answers ``{"enabled", "fleet": {merged...}}``; a
    plain server answers ``{"enabled", "metrics": {snapshot...}}`` —
    both carry ``histograms``, so the renderer treats them uniformly.
    """
    if not metrics_payload or not metrics_payload.get("enabled"):
        return None
    return metrics_payload.get("fleet") or metrics_payload.get("metrics")


def run_fleet_top(
    client: Any,
    interval_s: float = _config.DEFAULT_FLEET_TOP_INTERVAL_S,
    iterations: Optional[int] = None,
    emit: Callable[[str], None] = print,
    clear: bool = True,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Poll ``/v1/stats`` + ``/v1/metrics`` and repaint until interrupted.

    ``iterations`` bounds the loop (``--once`` passes 1; tests pass a
    small count); ``None`` runs until KeyboardInterrupt.  Returns a CLI
    exit code.
    """
    from ..errors import ServiceError

    count = 0
    while iterations is None or count < iterations:
        count += 1
        try:
            stats_payload = client.stats()
        except ServiceError as exc:
            emit(f"error: {exc}")
            return 75
        try:
            metrics_payload = client.metrics()
        except ServiceError:
            metrics_payload = None  # metrics are additive, not required
        frame = render_fleet_top(
            stats_payload, metrics_payload, url=getattr(client, "url", "")
        )
        emit((CLEAR + frame) if clear else frame)
        if iterations is not None and count >= iterations:
            break
        try:
            sleep(interval_s)
        except KeyboardInterrupt:
            break
    return 0


__all__ = ["render_fleet_top", "run_fleet_top"]
