"""Thin stdlib client for the compile service.

Transport failures (server down, timeout, non-JSON response) raise
:class:`~repro.errors.ServiceError`; a 503 from the server's bounded
admission queue raises :class:`~repro.errors.QueueFullError`; a 400
(unknown app, malformed IR) re-raises as
:class:`~repro.errors.RuntimeConfigError` so ``repro submit`` exits with
the same code a local ``repro map`` would.  A *typed pipeline failure*
(422) is NOT an exception: it returns a
:class:`~repro.service.api.CompileOutcome` whose ``error`` carries the
replayable failure report, which the CLI writes to disk and turns into a
``repro replay-failure`` invocation.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple, Union

from ..errors import QueueFullError, RuntimeConfigError, ServiceError
from .api import CompileOutcome, CompileRequest


class ServiceClient:
    """JSON-over-HTTP access to one compile server."""

    def __init__(self, url: str, timeout: float = 120.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.url}{path}", data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.status, self._decode(response.read())
        except urllib.error.HTTPError as exc:
            # 4xx/5xx still carry a JSON payload we want to interpret.
            return exc.code, self._decode(exc.read())
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach compile service at {self.url}: {exc.reason}"
            )
        except TimeoutError:
            raise ServiceError(
                f"compile service at {self.url} timed out "
                f"after {self.timeout}s"
            )

    def _decode(self, raw: bytes) -> Dict[str, Any]:
        try:
            data = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(
                f"compile service at {self.url} returned a non-JSON "
                f"response: {exc}"
            )
        if not isinstance(data, dict):
            raise ServiceError(
                f"compile service at {self.url} returned "
                f"{type(data).__name__}, expected an object"
            )
        return data

    # -- endpoints -------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        status, data = self._request("GET", "/v1/healthz")
        if status != 200 or not data.get("ok"):
            raise ServiceError(
                f"compile service at {self.url} is unhealthy "
                f"(status {status}): {data}"
            )
        return data

    def stats(self) -> Dict[str, Any]:
        status, data = self._request("GET", "/v1/stats")
        if status != 200:
            raise ServiceError(
                f"stats request failed with status {status}: {data}"
            )
        return data

    def artifact(self, digest: str) -> Optional[Dict[str, Any]]:
        status, data = self._request("GET", f"/v1/artifacts/{digest}")
        if status == 404:
            return None
        if status != 200:
            raise ServiceError(
                f"artifact request failed with status {status}: {data}"
            )
        return data

    def clear_cache(self) -> int:
        status, data = self._request("POST", "/v1/cache/clear", payload={})
        if status != 200:
            raise ServiceError(
                f"cache clear failed with status {status}: {data}"
            )
        return int(data.get("cleared", 0))

    def compile(
        self, request: Union[CompileRequest, Dict[str, Any]]
    ) -> CompileOutcome:
        payload = (
            request.to_dict()
            if isinstance(request, CompileRequest)
            else request
        )
        status, data = self._request("POST", "/v1/compile", payload=payload)
        if status in (200, 422):
            return CompileOutcome.from_dict(data)
        message = data.get("message", str(data))
        if status == 503:
            raise QueueFullError(message)
        if status == 400:
            raise RuntimeConfigError(message)
        raise ServiceError(
            f"compile request failed with status {status}: {message}"
        )
