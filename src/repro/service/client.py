"""Thin stdlib client for the compile service.

Transport failures (server down, timeout, connection reset mid-read, a
half-closed response, non-JSON body) raise
:class:`~repro.errors.ServiceError` — every escape hatch the socket
layer has is mapped onto the one typed error, so a CLI caller always
exits 75 with a one-line message, never a raw traceback; a 503 from the
server's bounded admission queue raises
:class:`~repro.errors.QueueFullError`; a 400 (unknown app, malformed IR)
re-raises as :class:`~repro.errors.RuntimeConfigError` so ``repro
submit`` exits with the same code a local ``repro map`` would.  A *typed
pipeline failure* (422) is NOT an exception: it returns a
:class:`~repro.service.api.CompileOutcome` whose ``error`` carries the
replayable failure report, which the CLI writes to disk and turns into a
``repro replay-failure`` invocation.

With ``retries > 0`` the client re-issues a request that failed in
transport, sleeping the PR-3 deterministic full-jitter schedule
(:func:`repro.resilience.retry.backoff_delays`) between attempts.
Retrying a compile is safe by construction: requests are content-
addressed, so a retry of a request the server *did* receive lands on
the same digest and is absorbed by the store or the single-flight
table — the pipeline still runs at most once.  HTTP-level errors
(4xx/5xx with a JSON body) are never retried here; they are semantic
answers, and backpressure policy belongs to the caller (the fleet
router reroutes a 503 to the next ring node instead of hammering the
same one).
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Callable, Dict, Optional, Tuple, Union

from ..errors import QueueFullError, RuntimeConfigError, ServiceError
from ..resilience.retry import backoff_delays
from .api import CompileOutcome, CompileRequest


class ServiceClient:
    """JSON-over-HTTP access to one compile server."""

    def __init__(
        self,
        url: str,
        timeout: float = 120.0,
        retries: int = 0,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        backoff_seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        keep_alive: bool = False,
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.keep_alive = keep_alive
        parsed = urllib.parse.urlsplit(self.url)
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port or 80
        # Persistent connections are per-thread: http.client connections
        # are not thread-safe, and one ServiceClient is shared by every
        # dispatcher thread of a fleet backend.
        self._local = threading.local()
        self._delays = backoff_delays(
            retries,
            base_delay=backoff_base_s,
            max_delay=backoff_max_s,
            seed=backoff_seed,
        )
        self._sleep = sleep

    # -- transport -------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One logical request: transport retries happen inside."""
        for attempt in range(self.retries + 1):
            try:
                return self._request_once(method, path, payload)
            except ServiceError:
                if attempt >= self.retries:
                    raise
                self._sleep(self._delays[attempt])
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.keep_alive:
            return self._request_persistent(method, path, body, headers)
        request = urllib.request.Request(
            f"{self.url}{path}", data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.status, self._decode(response.read())
        except urllib.error.HTTPError as exc:
            # 4xx/5xx still carry a JSON payload we want to interpret;
            # reading it can itself die on a shutting-down server.
            try:
                raw = exc.read()
            except (OSError, http.client.HTTPException) as read_exc:
                raise ServiceError(
                    f"compile service at {self.url} dropped the "
                    f"connection mid-response: {read_exc}"
                )
            return exc.code, self._decode(raw)
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach compile service at {self.url}: {exc.reason}"
            )
        except TimeoutError:
            raise ServiceError(
                f"compile service at {self.url} timed out "
                f"after {self.timeout}s"
            )
        except (OSError, http.client.HTTPException) as exc:
            # Everything urllib does NOT wrap: a connection reset while
            # reading the body, a server that accepted then closed
            # without a status line (RemoteDisconnected), a truncated
            # Content-Length (IncompleteRead).  All of these are "the
            # server went away mid-request" — one typed, retryable error.
            raise ServiceError(
                f"connection to compile service at {self.url} failed "
                f"mid-request: {type(exc).__name__}: {exc}"
            )

    # -- persistent transport (keep_alive=True) --------------------------

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout
            )
            self._local.conn = conn
        if conn.sock is None:
            conn.connect()
            # Request line/headers and body are separate writes; without
            # TCP_NODELAY, Nagle would stall the second one on a reused
            # connection waiting for the server's delayed ACK.
            conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        self._local.conn = None
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def close(self) -> None:
        """Close this thread's persistent connection (if any)."""
        self._drop_connection()

    def _request_persistent(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Dict[str, str],
    ) -> Tuple[int, Dict[str, Any]]:
        """One request over a reused connection.

        Error mapping mirrors the urllib path exactly.  The one extra
        case keep-alive introduces: the server may close an idle
        connection between our requests, which surfaces as an
        immediate failure on first reuse — retried once on a fresh
        connection (safe even for POST: compile requests are
        content-addressed, so a replay is absorbed by the store or the
        single-flight table).
        """
        for attempt in range(2):
            cached = getattr(self._local, "conn", None)
            reused = cached is not None and cached.sock is not None
            try:
                conn = self._connection()
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                status = response.status
                raw = response.read()
            except (ConnectionRefusedError, socket.gaierror) as exc:
                self._drop_connection()
                raise ServiceError(
                    f"cannot reach compile service at {self.url}: {exc}"
                )
            except TimeoutError:
                self._drop_connection()
                raise ServiceError(
                    f"compile service at {self.url} timed out "
                    f"after {self.timeout}s"
                )
            except (OSError, http.client.HTTPException) as exc:
                self._drop_connection()
                if reused and attempt == 0:
                    continue  # stale keep-alive connection; go fresh
                raise ServiceError(
                    f"connection to compile service at {self.url} failed "
                    f"mid-request: {type(exc).__name__}: {exc}"
                )
            if response.will_close:
                self._drop_connection()
            return status, self._decode(raw)
        raise AssertionError("unreachable")  # pragma: no cover

    def _decode(self, raw: bytes) -> Dict[str, Any]:
        try:
            data = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(
                f"compile service at {self.url} returned a non-JSON "
                f"response: {exc}"
            )
        if not isinstance(data, dict):
            raise ServiceError(
                f"compile service at {self.url} returned "
                f"{type(data).__name__}, expected an object"
            )
        return data

    # -- endpoints -------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        status, data = self._request("GET", "/v1/healthz")
        if status != 200 or not data.get("ok"):
            raise ServiceError(
                f"compile service at {self.url} is unhealthy "
                f"(status {status}): {data}"
            )
        return data

    def health_detail(self) -> Dict[str, Any]:
        """The ``/v1/health`` payload (liveness + queue depth/saturation).

        This is the probe the fleet's breaker-driving prober issues:
        unreachable, draining (``ok: false``), or pre-health servers all
        raise :class:`~repro.errors.ServiceError` — one typed "this
        backend is not serving" signal.
        """
        status, data = self._request("GET", "/v1/health")
        if status != 200 or not data.get("ok"):
            raise ServiceError(
                f"compile service at {self.url} failed its health probe "
                f"(status {status}): {data}"
            )
        return data

    def stats(self) -> Dict[str, Any]:
        status, data = self._request("GET", "/v1/stats")
        if status != 200:
            raise ServiceError(
                f"stats request failed with status {status}: {data}"
            )
        return data

    def metrics(self) -> Dict[str, Any]:
        """The ``/v1/metrics`` scrape payload.

        ``{"enabled": bool, "metrics": ...}`` from a plain server; a
        fleet front-end adds the merged fleet-wide aggregate.
        """
        status, data = self._request("GET", "/v1/metrics")
        if status != 200:
            raise ServiceError(
                f"metrics scrape failed with status {status}: {data}"
            )
        return data

    def trace(
        self, trace_id: str, raw: bool = False
    ) -> Optional[Dict[str, Any]]:
        """One trace by id: stitched document, or the unstitched
        per-process fragment with ``raw=True``.  ``None`` when the
        server has no events for that id (or the id is malformed)."""
        suffix = "?raw=1" if raw else ""
        status, data = self._request("GET", f"/v1/trace/{trace_id}{suffix}")
        if status == 404:
            return None
        if status != 200:
            raise ServiceError(
                f"trace request failed with status {status}: {data}"
            )
        return data

    def events(self, since: Optional[int] = None) -> Dict[str, Any]:
        """The structured event-log snapshot (``since`` filters by
        sequence number for incremental follows)."""
        suffix = f"?since={int(since)}" if since is not None else ""
        status, data = self._request("GET", f"/v1/events{suffix}")
        if status != 200:
            raise ServiceError(
                f"events request failed with status {status}: {data}"
            )
        return data

    def artifact(self, digest: str) -> Optional[Dict[str, Any]]:
        status, data = self._request("GET", f"/v1/artifacts/{digest}")
        if status == 404:
            return None
        if status != 200:
            raise ServiceError(
                f"artifact request failed with status {status}: {data}"
            )
        return data

    def clear_cache(self) -> int:
        status, data = self._request("POST", "/v1/cache/clear", payload={})
        if status != 200:
            raise ServiceError(
                f"cache clear failed with status {status}: {data}"
            )
        return int(data.get("cleared", 0))

    def compile(
        self, request: Union[CompileRequest, Dict[str, Any]]
    ) -> CompileOutcome:
        payload = (
            request.to_dict()
            if isinstance(request, CompileRequest)
            else request
        )
        status, data = self._request("POST", "/v1/compile", payload=payload)
        if status in (200, 422, 504):
            # 504 is the typed deadline-shed outcome: like 422 it is a
            # semantic answer (the caller's budget is spent), not a
            # transport failure — never retried, never an exception.
            return CompileOutcome.from_dict(data)
        message = data.get("message", str(data))
        if status == 503:
            raise QueueFullError(message)
        if status == 400:
            raise RuntimeConfigError(message)
        raise ServiceError(
            f"compile request failed with status {status}: {message}"
        )
