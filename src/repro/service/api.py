"""Wire types for the compile service: requests and outcomes.

A :class:`CompileRequest` names *what* to compile — a registered app or a
serialized IR program, plus size bindings, a device, a strategy, and
optimization flags.  Requests serialize to plain JSON (the HTTP body) and
resolve server-side into the concrete pipeline inputs; the resolved form
is hashed with :func:`repro.ir.serialize.compile_digest` into the
content address every cache layer keys on.

A :class:`CompileOutcome` is what a requester gets back: the digest, how
the request was served (``hit`` / ``miss`` / ``coalesced`` / ``error``),
the artifact on success, and a typed error — carrying the replayable
failure report when one was attached — on failure.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..errors import RuntimeConfigError
from ..gpusim.device import DEVICES, GpuDevice, default_device
from ..ir.patterns import Program
from ..ir.serialize import compile_digest, program_from_dict, program_to_dict
from ..optim.pipeline import OptimizationFlags

#: How one request was served.
STATUS_HIT = "hit"                # served from the artifact store
STATUS_MISS = "miss"              # this request ran the pipeline
STATUS_COALESCED = "coalesced"    # single-flighted onto an in-flight miss
STATUS_ERROR = "error"            # the pipeline raised a typed error

#: Request-JSON -> compile digest.  Hashing a request means rebuilding
#: the IR program and alpha-renaming it — ~0.5 ms of CPU the router
#: front-end would otherwise pay on *every* submit of the warm path.
#: The digest is a pure function of the request content, so a small
#: process-wide LRU makes repeat submissions (the warm case by
#: definition) cost one JSON dump instead.
_DIGEST_MEMO_CAPACITY = 1024
_DIGEST_MEMO: "OrderedDict[str, str]" = OrderedDict()
_DIGEST_MEMO_LOCK = threading.Lock()


def clear_digest_memo() -> None:
    """Drop the request-digest memo (tests, benchmarks)."""
    with _DIGEST_MEMO_LOCK:
        _DIGEST_MEMO.clear()


@dataclass
class CompileRequest:
    """One compilation request.  Exactly one of ``app``/``program_ir``."""

    app: Optional[str] = None
    program_ir: Optional[Dict[str, Any]] = None
    sizes: Dict[str, int] = field(default_factory=dict)
    strategy: str = "multidim"
    device: Optional[str] = None
    flags: OptimizationFlags = field(default_factory=OptimizationFlags)
    #: Remaining request budget in seconds, relative to the moment the
    #: request is (re)serialized.  Carried on the wire so every hop —
    #: router failover, backend admission queue, worker pickup — can shed
    #: expired work with a typed 504-style outcome instead of compiling
    #: it pointlessly.  ``None`` means no deadline.  Deliberately *not*
    #: part of the compile digest: the same program compiled under a
    #: different budget is the same artifact.
    deadline_s: Optional[float] = None
    #: Distributed trace context (W3C-traceparent shape): the 32-hex
    #: trace id this request belongs to and the 16-hex span id of the
    #: caller's active span.  Carried on the wire so a backend's spans
    #: parent onto the router's dispatch span and the per-process
    #: fragments stitch into one trace.  Like ``deadline_s``, trace
    #: context is *not* part of the compile digest: the same program
    #: observed under a different trace is the same artifact.
    trace_id: Optional[str] = None
    parent_span_id: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.app is None) == (self.program_ir is None):
            raise RuntimeConfigError(
                "compile request needs exactly one of 'app' (a registered "
                "application name) or 'program_ir' (a serialized program)"
            )
        if self.deadline_s is not None:
            # Non-positive budgets are legal on the wire (a hop may
            # forward an already-spent budget; the receiver sheds).
            self.deadline_s = float(self.deadline_s)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "sizes": {k: int(v) for k, v in self.sizes.items()},
            "strategy": self.strategy,
            "flags": {
                "prealloc": self.flags.prealloc,
                "layout_opt": self.flags.layout_opt,
                "shared_memory": self.flags.shared_memory,
            },
        }
        if self.app is not None:
            data["app"] = self.app
        if self.program_ir is not None:
            data["program_ir"] = self.program_ir
        if self.device is not None:
            data["device"] = self.device
        if self.deadline_s is not None:
            data["deadline_s"] = self.deadline_s
        if self.trace_id is not None:
            data["trace_id"] = self.trace_id
        if self.parent_span_id is not None:
            data["parent_span_id"] = self.parent_span_id
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CompileRequest":
        if not isinstance(data, dict):
            raise RuntimeConfigError(
                f"compile request must be a JSON object, got {type(data).__name__}"
            )
        flags_data = data.get("flags") or {}
        if not isinstance(flags_data, dict):
            raise RuntimeConfigError("'flags' must be an object of booleans")
        flags = OptimizationFlags(
            prealloc=bool(flags_data.get("prealloc", True)),
            layout_opt=bool(flags_data.get("layout_opt", True)),
            shared_memory=bool(flags_data.get("shared_memory", True)),
        )
        sizes_data = data.get("sizes") or {}
        try:
            sizes = {str(k): int(v) for k, v in sizes_data.items()}
        except (AttributeError, TypeError, ValueError):
            raise RuntimeConfigError(
                "'sizes' must be an object of integer bindings"
            )
        deadline_s = data.get("deadline_s")
        if deadline_s is not None:
            try:
                deadline_s = float(deadline_s)
            except (TypeError, ValueError):
                raise RuntimeConfigError(
                    "'deadline_s' must be a number of seconds"
                )
        trace_id = data.get("trace_id")
        parent_span_id = data.get("parent_span_id")
        if trace_id is not None and not isinstance(trace_id, str):
            raise RuntimeConfigError("'trace_id' must be a string")
        if parent_span_id is not None and not isinstance(parent_span_id, str):
            raise RuntimeConfigError("'parent_span_id' must be a string")
        return cls(
            app=data.get("app"),
            program_ir=data.get("program_ir"),
            sizes=sizes,
            strategy=str(data.get("strategy", "multidim")),
            device=data.get("device"),
            flags=flags,
            deadline_s=deadline_s,
            trace_id=trace_id,
            parent_span_id=parent_span_id,
        )

    def with_deadline(
        self, deadline_s: Optional[float]
    ) -> "CompileRequest":
        """A copy carrying ``deadline_s`` as its remaining budget — how a
        forwarding hop (the fleet router) rebases the caller's deadline
        onto the wire for the next hop."""
        import dataclasses

        return dataclasses.replace(self, deadline_s=deadline_s)

    def with_trace(
        self, trace_id: Optional[str], parent_span_id: Optional[str]
    ) -> "CompileRequest":
        """A copy carrying distributed trace context — how a forwarding
        hop stamps its own dispatch span as the next hop's parent."""
        import dataclasses

        return dataclasses.replace(
            self, trace_id=trace_id, parent_span_id=parent_span_id
        )

    # -- resolution ------------------------------------------------------

    def resolve_device(self) -> GpuDevice:
        if self.device is None:
            return default_device()
        try:
            return DEVICES[self.device]
        except KeyError:
            # Device names contain spaces ("Tesla K20c"); fold case so
            # the wire format can use any casing.
            folded = {name.lower(): dev for name, dev in DEVICES.items()}
            try:
                return folded[self.device.lower()]
            except KeyError:
                known = ", ".join(sorted(DEVICES))
                raise RuntimeConfigError(
                    f"unknown device {self.device!r}; known: {known}"
                )

    def resolve(self) -> Tuple[Program, GpuDevice, Dict[str, int]]:
        """Build the concrete pipeline inputs.

        App requests merge the request's sizes over the app's defaults;
        IR requests use the request's sizes as the full binding set.
        Raises :class:`~repro.errors.RuntimeConfigError` (or a typed
        :class:`~repro.errors.IRError` for malformed IR) on bad input.
        """
        device = self.resolve_device()
        if self.app is not None:
            from ..apps import merge_params, resolve_app

            app = resolve_app(self.app)
            program = app.build()
            sizes = merge_params(app, self.sizes)
        else:
            program = program_from_dict(self.program_ir)
            sizes = dict(self.sizes)
        return program, device, sizes

    def digest(self) -> str:
        """The content address of this request (see
        :func:`~repro.ir.serialize.compile_digest`), memoized on the
        request content.  Resolution errors are never cached.

        The deadline and trace context are excluded from the memo key:
        budgets and trace ids vary call to call while the digest — a
        pure function of *what* to compile — does not, and a
        per-deadline (or per-trace) key would defeat the memo on the
        warm path it exists for."""
        content = self.to_dict()
        content.pop("deadline_s", None)
        content.pop("trace_id", None)
        content.pop("parent_span_id", None)
        key = json.dumps(content, sort_keys=True)
        with _DIGEST_MEMO_LOCK:
            cached = _DIGEST_MEMO.get(key)
            if cached is not None:
                _DIGEST_MEMO.move_to_end(key)
                return cached
        program, device, sizes = self.resolve()
        digest = compile_digest(
            program,
            device=device,
            flags=self.flags,
            strategy=self.strategy,
            sizes=sizes,
        )
        with _DIGEST_MEMO_LOCK:
            _DIGEST_MEMO[key] = digest
            _DIGEST_MEMO.move_to_end(key)
            while len(_DIGEST_MEMO) > _DIGEST_MEMO_CAPACITY:
                _DIGEST_MEMO.popitem(last=False)
        return digest


def request_for_program(
    program: Program,
    sizes: Optional[Dict[str, int]] = None,
    strategy: str = "multidim",
    device: Optional[str] = None,
    flags: Optional[OptimizationFlags] = None,
) -> CompileRequest:
    """Convenience: wrap an in-memory program as a serialized request."""
    return CompileRequest(
        program_ir=program_to_dict(program),
        sizes=dict(sizes or {}),
        strategy=strategy,
        device=device,
        flags=flags if flags is not None else OptimizationFlags.default(),
    )


@dataclass
class CompileError:
    """A typed pipeline failure, serializable across the wire."""

    error_type: str
    message: str
    exit_code: int
    failure_report: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "error_type": self.error_type,
            "message": self.message,
            "exit_code": self.exit_code,
        }
        if self.failure_report is not None:
            data["failure_report"] = self.failure_report
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CompileError":
        return cls(
            error_type=data.get("error_type", "ReproError"),
            message=data.get("message", ""),
            exit_code=int(data.get("exit_code", 70)),
            failure_report=data.get("failure_report"),
        )


@dataclass
class CompileOutcome:
    """What the service hands back for one request."""

    digest: str
    status: str
    artifact: Optional[Dict[str, Any]] = None
    error: Optional[CompileError] = None
    #: Wall time from admission to completion, as observed server-side.
    latency_ms: float = 0.0
    #: Which fleet backend produced this outcome (``None`` when it was
    #: served by a single-process service or a router cache tier).
    served_by: Optional[str] = None
    #: The distributed trace this request was recorded under; feed it to
    #: ``repro fleet trace <trace_id>`` for the stitched timeline.
    trace_id: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status != STATUS_ERROR

    @property
    def cached(self) -> bool:
        return self.status == STATUS_HIT

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "digest": self.digest,
            "status": self.status,
            "latency_ms": self.latency_ms,
        }
        if self.artifact is not None:
            data["artifact"] = self.artifact
        if self.error is not None:
            data["error"] = self.error.to_dict()
        if self.served_by is not None:
            data["served_by"] = self.served_by
        if self.trace_id is not None:
            data["trace_id"] = self.trace_id
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CompileOutcome":
        error = data.get("error")
        return cls(
            digest=data.get("digest", ""),
            status=data.get("status", STATUS_ERROR),
            artifact=data.get("artifact"),
            error=None if error is None else CompileError.from_dict(error),
            latency_ms=float(data.get("latency_ms", 0.0)),
            served_by=data.get("served_by"),
            trace_id=data.get("trace_id"),
        )
