"""The compile fleet: a digest-sharded front-end router over N backends.

PR 5 made one process amortize compilation across requests; this layer
amortizes it across a *fleet*.  The paper's premise makes compile
requests ideal shard keys: the locality-aware mapping search is
deterministic given the canonical IR digest, so any backend produces a
byte-identical artifact for a digest and requests can be placed purely
by content address.

Request lifecycle::

    submit(request) / submit_many(requests)
      resolve + digest                  (typed config errors surface here)
      hot LRU tier          ── hit ──►  outcome served synchronously
      shared disk store     ── hit ──►  outcome served + LRU fill
      fleet single-flight   ── dup ──►  join the in-flight dispatch
      enqueue                           dispatcher pool drains FIFO
    dispatcher:
      walk the ring's preference order for the digest
        backend dead / unreachable  →  mark dead, reroute to next node
        backend saturated (503)     →  jittered backoff, next node
        typed pipeline failure      →  final (retrying cannot fix it)
      success: stamp served_by, fill LRU (+ write-through to the
      router's store), resolve every joined waiter

Single-flight is *fleet-wide* by construction: the router's in-flight
table coalesces identical concurrent submissions before any backend
sees them, and consistent hashing sends the survivors of distinct
router processes for one digest to the same backend, whose own
single-flight table collapses them again.  Either layer alone bounds
the pipeline runs per digest to one per process; together they bound it
to one per fleet.

Backends come in two shapes: :class:`LocalBackend` wraps an in-process
:class:`~repro.service.service.CompileService` (tests, ``repro fleet
serve``), :class:`HttpBackend` wraps a :class:`ServiceClient` against a
separately running server (the deployment shape; ``spawn_http_fleet``
boots those as subprocesses).  The router only sees the one-method
contract ``compile(request) -> CompileOutcome``.

Failure semantics: transport errors mark a backend dead and reroute;
503 saturation backs off (PR-3 deterministic full jitter, seeded by the
digest so concurrent routers don't herd) and tries the next ring node
without declaring death; typed pipeline errors are answers, not
failures — they resolve the waiters unchanged.  A request is only
answered with a :class:`~repro.errors.ServiceError` outcome after every
preference-order attempt is exhausted, and every reroute is counted
(internal stats + the PR-4 ``fleet.reroutes`` metric).

Self-healing (the fleet-resilience layer on top of the above):

* **Health-checked membership** — a background prober hits every
  backend's ``/v1/health`` each ``probe_interval_s`` and feeds a
  per-backend :class:`~repro.resilience.breaker.CircuitBreaker`
  (closed → open on consecutive failures → half-open probe → readmit).
  Death is no longer one-way: a restarted backend is readmitted within
  a few probe intervals, without operator action.
* **Deadline propagation** — ``CompileRequest.deadline_s`` travels on
  the wire; the router sheds expired jobs with a typed 504-style
  outcome, caps every backoff sleep at the remaining budget, and
  forwards the *remaining* budget to each backend, whose admission
  queue sheds expired work before it can reach a worker.
* **Hedged requests** — for warm digests (previously completed, so any
  backend serves them from the shared store without pipeline work) a
  still-pending dispatch is re-issued to the next ring node after a
  configurable delay; first success wins.  The warm-digest gate plus
  both single-flight layers mean hedges never duplicate a pipeline run.
"""

from __future__ import annotations

import os
import queue
import subprocess
import sys
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import config as _config
from ..errors import (
    DeadlineExceededError,
    QueueFullError,
    ReproError,
    ServiceError,
)
from ..observability import (
    emit_event,
    get_metrics,
    get_tracer,
    make_fragment,
    merge_snapshots,
    new_trace_id,
    stitch_fragments,
)
from ..resilience.breaker import (
    BREAKER_OPEN,
    BREAKER_STATE_CODES,
    CircuitBreaker,
)
from ..resilience.retry import backoff_delays
from .api import (
    STATUS_COALESCED,
    STATUS_ERROR,
    STATUS_HIT,
    STATUS_MISS,
    CompileOutcome,
    CompileRequest,
)
from .client import ServiceClient
from .router import HashRing, LRUCache
from .service import (
    CompileService,
    ServiceConfig,
    error_outcome,
    latency_summary,
    percentile,
)
from .store import ArtifactStore, CompileArtifact

#: ``served_by`` stamps for outcomes the router answered itself.
SERVED_BY_LRU = "router:lru"
SERVED_BY_STORE = "router:store"


# -- backends ------------------------------------------------------------


class Backend:
    """One fleet member, as the router sees it."""

    name: str
    #: Whether this member has its own registry/tracer to scrape over
    #: the wire.  ``False`` (a :class:`LocalBackend`) means its metrics
    #: and trace events already live in the router's process-wide
    #: registry — the aggregator must neither scrape it nor report it
    #: as an unreachable source.
    scrapes_metrics = False

    def compile(self, request: CompileRequest) -> CompileOutcome:
        raise NotImplementedError

    def alive(self) -> bool:
        raise NotImplementedError

    def mark_dead(self) -> None:
        raise NotImplementedError

    def mark_alive(self) -> None:
        """Readmit a backend the prober found healthy again.  The
        default is a no-op for backends whose liveness is intrinsic
        (:class:`LocalBackend` tracks its service's closed flag)."""

    def probe(self) -> Dict[str, Any]:
        """One health check; raises :class:`~repro.errors.ServiceError`
        when the backend is not serving.  The default consults the local
        liveness flag only — real backends ask the server itself, which
        is what makes readmission after a restart possible."""
        if not self.alive():
            raise ServiceError(f"backend {self.name} is not alive")
        return {"ok": True}

    def metrics_snapshot(self) -> Optional[Dict[str, Any]]:
        """This backend's metrics-registry snapshot, or ``None`` when it
        has none of its *own* (a :class:`LocalBackend` shares the
        router's process-wide registry — returning it again would
        double-count every metric in the fleet aggregate)."""
        return None

    def trace_fragment(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """This backend's share of a distributed trace, or ``None`` (no
        events for the id, tracing off, or — for a
        :class:`LocalBackend` — the events already live in the router
        process's own fragment)."""
        return None

    def close(self) -> None:
        raise NotImplementedError


class LocalBackend(Backend):
    """An in-process :class:`CompileService` as a fleet member."""

    def __init__(self, name: str, service: CompileService) -> None:
        self.name = name
        self.service = service

    def compile(self, request: CompileRequest) -> CompileOutcome:
        return self.service.compile(request)

    def alive(self) -> bool:
        return not self.service.closed

    def mark_dead(self) -> None:
        # Liveness already tracks the service's closed flag; nothing to
        # record separately.
        pass

    def probe(self) -> Dict[str, Any]:
        if self.service.closed:
            raise ServiceError(f"backend {self.name} is closed")
        return self.service.health()

    def close(self) -> None:
        self.service.close()

    def kill(self) -> None:
        """Abrupt death for failover tests: no memo snapshot."""
        self.service.close(save=False)


class HttpBackend(Backend):
    """A remote compile server as a fleet member.

    The client runs with zero transport retries: the *router* owns the
    retry policy, and it retries on a different node.
    """

    scrapes_metrics = True

    def __init__(
        self,
        name: str,
        url: str,
        timeout: float = 120.0,
        process: Optional[subprocess.Popen] = None,
        probe_timeout: float = _config.DEFAULT_FLEET_PROBE_TIMEOUT_S,
    ) -> None:
        self.name = name
        self.url = url
        # Dispatcher threads hammer one backend with many small
        # requests; per-request TCP handshakes would make the router the
        # bottleneck, so reuse connections (one per dispatcher thread).
        self.client = ServiceClient(
            url, timeout=timeout, retries=0, keep_alive=True
        )
        # Separate probe client with a short timeout: a hung backend
        # must cost the prober ``probe_timeout``, not the full request
        # timeout, or one wedged node stalls the whole probe round.
        self._probe_client = ServiceClient(
            url, timeout=probe_timeout, retries=0, keep_alive=True
        )
        self.process = process
        self._dead = False

    def compile(self, request: CompileRequest) -> CompileOutcome:
        return self.client.compile(request)

    def alive(self) -> bool:
        return not self._dead

    def mark_dead(self) -> None:
        self._dead = True

    def revive(self) -> None:
        self._dead = False

    def mark_alive(self) -> None:
        self.revive()

    def probe(self) -> Dict[str, Any]:
        # Deliberately ignores the local ``_dead`` flag: the probe asks
        # the *server*, so a backend that was killed and restarted on
        # the same address passes and gets readmitted.
        return self._probe_client.health_detail()

    def metrics_snapshot(self) -> Optional[Dict[str, Any]]:
        # Scrapes are best-effort: an unreachable backend degrades the
        # aggregate (it shows up in ``missing``), never fails it.
        try:
            payload = self._probe_client.metrics()
        except ReproError:
            return None
        if not payload.get("enabled"):
            return None
        return payload.get("metrics")

    def trace_fragment(self, trace_id: str) -> Optional[Dict[str, Any]]:
        try:
            fragment = self._probe_client.trace(trace_id, raw=True)
        except ReproError:
            return None
        if not fragment or not fragment.get("events"):
            return None
        # The server names its fragment generically; the router knows
        # which fleet member it is talking to.
        fragment["process"] = self.name
        return fragment

    def close(self) -> None:
        if self.process is not None and self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10)

    def kill(self) -> None:
        """SIGKILL the server process (failover tests)."""
        self._dead = True
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10)


# -- router --------------------------------------------------------------


@dataclass
class FleetConfig:
    """Tunables for one :class:`FleetRouter`."""

    #: Hot in-memory artifact entries; 0 disables the tier.
    lru_capacity: int = _config.DEFAULT_FLEET_LRU_CAPACITY
    #: Reroute attempts beyond the first (a request touches at most
    #: ``retries + 1`` backends before it is answered with an error).
    retries: int = _config.DEFAULT_FLEET_RETRIES
    backoff_base_s: float = 0.05
    backoff_max_s: float = 1.0
    #: Router-side threads walking the dispatch queue.
    dispatchers: int = _config.DEFAULT_FLEET_DISPATCHERS
    #: Bounded router admission, mirroring the per-backend queues.
    queue_limit: int = _config.DEFAULT_FLEET_QUEUE_LIMIT
    #: Root of the shared content-addressed store the router reads
    #: before dispatching (and writes through after a backend miss);
    #: ``None`` skips the disk tier router-side.
    cache_dir: Optional[str] = None
    #: Background health-probe cadence; <= 0 disables the prober (tests
    #: drive :meth:`FleetRouter.probe_backends` directly instead).
    probe_interval_s: float = _config.DEFAULT_FLEET_PROBE_INTERVAL_S
    #: Consecutive failures that trip a backend's breaker open, and how
    #: long an open breaker cools down before its half-open probe.
    breaker_failure_threshold: int = (
        _config.DEFAULT_BREAKER_FAILURE_THRESHOLD
    )
    breaker_reset_timeout_s: float = _config.DEFAULT_BREAKER_RESET_TIMEOUT_S
    #: Fixed hedge delay for warm-digest requests; ``None`` disables
    #: hedging unless ``hedge_p99`` derives a delay from observation.
    hedge_delay_s: Optional[float] = None
    #: Derive the hedge delay from the router's observed p99 latency
    #: (floored at ``hedge_min_delay_s``; needs ``hedge_min_samples``
    #: observations before it trusts the estimate).
    hedge_p99: bool = False
    hedge_min_delay_s: float = _config.DEFAULT_HEDGE_MIN_DELAY_S
    hedge_min_samples: int = _config.DEFAULT_HEDGE_MIN_SAMPLES
    #: Bound on the warm-digest set hedging consults (an LRU of digests
    #: known to be servable from cache by any backend).
    hedge_tracking_capacity: int = _config.DEFAULT_HEDGE_TRACKING_CAPACITY
    #: Clock the circuit breakers read; injectable so breaker state
    #: transitions are testable with a fake clock and zero sleeps.
    clock: Callable[[], float] = time.monotonic


@dataclass
class FleetTicket:
    """One requester's non-blocking handle on a fleet outcome."""

    digest: str
    role: str
    #: The distributed trace this submission was recorded under (``None``
    #: when tracing is off); feed it to ``repro fleet trace``.
    trace_id: Optional[str] = None
    _future: Future = field(repr=False, default_factory=Future)

    def poll(self) -> Optional[CompileOutcome]:
        """The outcome if ready, else ``None`` (never blocks)."""
        if not self._future.done():
            return None
        return self._future.result(timeout=0)

    def wait(self, timeout: Optional[float] = None) -> CompileOutcome:
        return self._future.result(timeout=timeout)

    def done(self) -> bool:
        return self._future.done()


class _FleetJob:
    __slots__ = (
        "digest", "request", "future", "submitted_at", "waiters", "deadline",
        "trace_id", "parent_span_id", "failover_causes",
    )

    def __init__(self, digest: str, request: CompileRequest) -> None:
        self.digest = digest
        self.request = request
        self.future: Future = Future()
        self.submitted_at = time.perf_counter()
        self.waiters = 1
        #: Absolute ``perf_counter`` instant the caller's budget expires.
        self.deadline: Optional[float] = (
            None
            if request.deadline_s is None
            else self.submitted_at + request.deadline_s
        )
        #: Distributed trace context the dispatcher re-activates; the
        #: admission-side ``fleet.request`` span parents the dispatch.
        self.trace_id: Optional[str] = request.trace_id
        self.parent_span_id: Optional[str] = request.parent_span_id
        #: Why each failed attempt failed ("saturation" | "transport"),
        #: in attempt order — classifies the reroute in ``_finish``.
        self.failover_causes: List[str] = []

    def expired(self) -> bool:
        return (
            self.deadline is not None
            and time.perf_counter() >= self.deadline
        )

    def remaining(self) -> Optional[float]:
        """Seconds of budget left (``None`` = unbounded; may be <= 0)."""
        if self.deadline is None:
            return None
        return self.deadline - time.perf_counter()


def _offer(future: Future, outcome: CompileOutcome) -> bool:
    """Resolve ``future`` if still pending; the hedge race's arbiter."""
    try:
        future.set_result(outcome)
        return True
    except InvalidStateError:
        return False


_STOP = object()


class FleetRouter:
    """Front-end router: shard by digest, coalesce fleet-wide, fail over.

    ``owns_backends=True`` makes :meth:`close` also close every backend
    (the helpers that build whole fleets set it).
    """

    def __init__(
        self,
        backends: Sequence[Backend],
        config: Optional[FleetConfig] = None,
        owns_backends: bool = False,
    ) -> None:
        if not backends:
            raise ServiceError("a fleet needs at least one backend")
        names = [backend.name for backend in backends]
        if len(set(names)) != len(names):
            raise ServiceError(f"backend names must be unique: {names}")
        self.config = config or FleetConfig()
        if self.config.dispatchers < 1:
            raise ServiceError("fleet needs at least one dispatcher")
        if self.config.queue_limit < 1:
            raise ServiceError("fleet needs a queue limit of at least 1")
        self.backends: Dict[str, Backend] = {b.name: b for b in backends}
        self.ring = HashRing(names)
        self.lru = LRUCache(self.config.lru_capacity)
        self.store: Optional[ArtifactStore] = (
            ArtifactStore(self.config.cache_dir)
            if self.config.cache_dir
            else None
        )
        self._owns_backends = owns_backends
        self._lock = threading.Lock()
        self._inflight: Dict[str, _FleetJob] = {}
        self._pending = 0
        self._closed = False
        self._started_at = time.time()
        self._queue: "queue.SimpleQueue[Any]" = queue.SimpleQueue()
        self._latencies_ms: "deque[float]" = deque(maxlen=8192)
        self._counts = {
            "requests": 0,
            "lru_hits": 0,
            "store_hits": 0,
            "misses": 0,
            "coalesced": 0,
            "reroutes": 0,
            #: Reroutes split by what pushed the request off its primary:
            #: ``saturation`` (503s/shedding — the node is alive, just
            #: busy) vs ``transport`` (unreachable/dead).  The totals
            #: column alone made a saturated fleet look like a broken
            #: one; the split tells an operator which knob to turn.
            "reroutes_saturation": 0,
            "reroutes_transport": 0,
            "errors": 0,
            "completed": 0,
            #: Jobs answered with the typed 504-style shed outcome
            #: because the caller's deadline budget ran out router-side.
            "deadline_shed": 0,
            #: Hedged dispatches issued / hedges that answered first.
            "hedges": 0,
            "hedge_wins": 0,
            #: Health probes issued, breaker trips, and backends
            #: readmitted (dead -> alive or breaker reclosed).
            "probes": 0,
            "breaker_opened": 0,
            "readmissions": 0,
        }
        self._per_backend: Dict[str, Dict[str, int]] = {
            name: {
                "served": 0,
                "failures": 0,
                "failures_saturation": 0,
                "failures_transport": 0,
                "reroutes_from": 0,
            }
            for name in names
        }
        #: Last successful health-probe payload per backend (queue
        #: depth, saturation) — the prober already fetches it; stashing
        #: it lets ``stats()``/``fleet top`` show per-backend load
        #: without issuing extra RPCs.
        self._last_health: Dict[str, Optional[Dict[str, Any]]] = {
            name: None for name in names
        }
        #: Per-backend circuit breakers: the self-healing replacement
        #: for one-way mark_dead.  Dispatch outcomes and health probes
        #: both record here; the prober readmits via half-open probes.
        self._breakers: Dict[str, CircuitBreaker] = {
            name: CircuitBreaker(
                failure_threshold=self.config.breaker_failure_threshold,
                reset_timeout_s=self.config.breaker_reset_timeout_s,
                clock=self.config.clock,
            )
            for name in names
        }
        #: Digests any backend can serve without pipeline work (they
        #: completed once, so the shared store has the artifact): the
        #: only requests hedging is allowed to duplicate on the wire.
        self._hedgeable = LRUCache(self.config.hedge_tracking_capacity)
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch_loop,
                name=f"fleet-dispatch-{i}",
                daemon=True,
            )
            for i in range(self.config.dispatchers)
        ]
        for thread in self._dispatchers:
            thread.start()
        self._probe_stop = threading.Event()
        self._prober: Optional[threading.Thread] = None
        if self.config.probe_interval_s and self.config.probe_interval_s > 0:
            self._prober = threading.Thread(
                target=self._probe_loop, name="fleet-prober", daemon=True
            )
            self._prober.start()

    # -- public API ------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, request: CompileRequest) -> FleetTicket:
        """Admit one request; returns immediately with a handle.

        Raises the same typed errors as
        :meth:`~repro.service.service.CompileService.submit`:
        ``RuntimeConfigError``/``IRError`` for bad requests,
        :class:`~repro.errors.QueueFullError` when the router's own
        admission bound is hit, :class:`~repro.errors.ServiceError`
        after :meth:`close`.
        """
        if self._closed:
            raise ServiceError("fleet router is shut down")
        t0 = time.perf_counter()
        metrics = get_metrics()
        tracer = get_tracer()
        # Root a distributed trace (or join the caller's) whenever the
        # router's tracer is live; disabled tracing stays id-free.
        trace_id = request.trace_id or (
            new_trace_id() if tracer.enabled else None
        )
        request_span_id: Optional[str] = None
        if trace_id is not None:
            with tracer.trace_context(trace_id, request.parent_span_id):
                with tracer.span(
                    "fleet.request", app=request.app or "<ir>"
                ) as sp:
                    digest = request.digest()
                    request_span_id = getattr(sp, "span_id", None)
        else:
            with tracer.span("fleet.request", app=request.app or "<ir>"):
                digest = request.digest()
        self._count("requests", metrics, "fleet.requests")

        if request.deadline_s is not None and request.deadline_s <= 0:
            # The budget was spent before the request reached us: shed
            # at admission — cache tiers are instant, but serving an
            # answer nobody waits for helps no one.
            return self._shed_ticket(
                digest,
                "deadline budget already spent at fleet admission "
                f"({request.deadline_s:.3f}s remaining)",
                metrics,
                trace_id=trace_id,
            )

        artifact = self.lru.get(digest)
        if artifact is not None:
            self._count("lru_hits", metrics, "fleet.lru.hits")
            return self._resolved_ticket(
                digest, artifact, SERVED_BY_LRU, t0, metrics, trace_id
            )
        metrics.counter("fleet.lru.misses").inc()

        if self.store is not None:
            stored = self.store.get(digest)
            if stored is not None:
                payload = stored.to_dict()
                self.lru.put(digest, payload)
                self._count("store_hits", metrics, "fleet.store.hits")
                return self._resolved_ticket(
                    digest, payload, SERVED_BY_STORE, t0, metrics, trace_id
                )

        with self._lock:
            if self._closed:
                raise ServiceError("fleet router is shut down")
            job = self._inflight.get(digest)
            if job is not None:
                job.waiters += 1
                # Honor the most permissive joined waiter's budget.
                if job.deadline is not None:
                    joined = (
                        None
                        if request.deadline_s is None
                        else time.perf_counter() + request.deadline_s
                    )
                    if joined is None:
                        job.deadline = None
                    elif joined > job.deadline:
                        job.deadline = joined
                self._counts["coalesced"] += 1
                metrics.counter("fleet.coalesced").inc()
                # A coalesced waiter shares the winning dispatch's
                # outcome, so it shares that dispatch's trace too.
                return FleetTicket(
                    digest=digest,
                    role=STATUS_COALESCED,
                    trace_id=job.trace_id,
                    _future=job.future,
                )
            if self._pending >= self.config.queue_limit:
                metrics.counter("fleet.queue.rejections").inc()
                emit_event(
                    "queue_rejected",
                    digest=digest,
                    queue_depth=self._pending,
                    queue_limit=self.config.queue_limit,
                    where="fleet",
                    trace_id=trace_id,
                )
                raise QueueFullError(
                    f"fleet dispatch queue is full "
                    f"({self._pending}/{self.config.queue_limit}); "
                    "retry shortly"
                )
            job = _FleetJob(digest, request)
            job.trace_id = trace_id
            if request_span_id is not None:
                job.parent_span_id = request_span_id
            self._inflight[digest] = job
            self._pending += 1
            self._counts["misses"] += 1
            metrics.gauge("fleet.queue.depth").set(self._pending)
            self._queue.put(job)
        metrics.counter("fleet.misses").inc()
        return FleetTicket(
            digest=digest,
            role=STATUS_MISS,
            trace_id=trace_id,
            _future=job.future,
        )

    def submit_many(
        self, requests: Sequence[CompileRequest]
    ) -> List[FleetTicket]:
        """Batch admission: one ticket per request, in order.

        Never raises per-request errors mid-batch — a request the
        router cannot admit (bad app, malformed IR, admission bound)
        gets a ticket already resolved with the typed error outcome, so
        a campaign always gets exactly ``len(requests)`` answers.
        """
        tickets: List[FleetTicket] = []
        for request in requests:
            try:
                tickets.append(self.submit(request))
            except ReproError as exc:
                ticket = FleetTicket(digest="", role=STATUS_ERROR)
                ticket._future.set_result(error_outcome("", exc))
                self._count(
                    "errors", get_metrics(), "fleet.errors"
                )
                tickets.append(ticket)
        return tickets

    def compile(
        self, request: CompileRequest, timeout: Optional[float] = None
    ) -> CompileOutcome:
        """Submit and wait (the fleet HTTP front end calls this).

        Deadline-carrying requests never wait unboundedly: absent an
        explicit ``timeout`` the wait is capped at the budget plus a
        small grace, resolving to the typed shed outcome on expiry (the
        dispatch itself keeps running for any coalesced waiters)."""
        ticket = self.submit(request)
        if timeout is None and request.deadline_s is not None:
            bounded = (
                max(0.0, request.deadline_s) + _config.DEADLINE_WAIT_GRACE_S
            )
            try:
                return ticket.wait(timeout=bounded)
            except FutureTimeoutError:
                self._count(
                    "deadline_shed", get_metrics(), "fleet.deadline.shed"
                )
                emit_event(
                    "deadline_shed",
                    digest=ticket.digest,
                    deadline_s=request.deadline_s,
                    where="fleet-wait",
                    trace_id=ticket.trace_id,
                )
                outcome = error_outcome(
                    ticket.digest,
                    DeadlineExceededError(
                        f"fleet request still pending {bounded:.3f}s after "
                        f"its {request.deadline_s:.3f}s deadline; shed"
                    ),
                )
                outcome.trace_id = ticket.trace_id
                return outcome
        return ticket.wait(timeout=timeout)

    def clear_cache(self) -> int:
        """Drop the LRU tier and every stored artifact (router + any
        backend store sharing the directory); returns disk artifacts
        removed."""
        self.lru.clear()
        return self.store.clear() if self.store is not None else 0

    def health(self) -> Dict[str, Any]:
        """The ``/v1/health`` payload for the fleet front-end: the same
        shape a single server answers with, so probers cannot tell the
        difference, plus per-backend liveness and breaker state.  The
        fleet is ``ok`` while it can still serve — at least one backend
        alive with a non-open breaker."""
        with self._lock:
            pending = self._pending
        limit = self.config.queue_limit
        backends = {
            name: {
                "alive": backend.alive(),
                "breaker": self._breakers[name].state,
            }
            for name, backend in self.backends.items()
        }
        servable = any(
            b["alive"] and b["breaker"] != BREAKER_OPEN
            for b in backends.values()
        )
        return {
            "ok": not self._closed and servable,
            "closed": self._closed,
            "queue_depth": pending,
            "queue_limit": limit,
            "saturation": pending / limit if limit else 0.0,
            "workers": self.config.dispatchers,
            "uptime_s": time.time() - self._started_at,
            "backends": backends,
        }

    def stats(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot of fleet health."""
        with self._lock:
            counts = dict(self._counts)
            pending = self._pending
            per_backend = {
                name: dict(stats)
                for name, stats in self._per_backend.items()
            }
            last_health = dict(self._last_health)
            latencies = sorted(self._latencies_ms)
        backends = {
            name: {
                **per_backend[name],
                "alive": backend.alive(),
                "breaker": self._breakers[name].describe(),
                "last_health": (
                    {
                        key: last_health[name].get(key)
                        for key in (
                            "queue_depth", "queue_limit", "saturation"
                        )
                    }
                    if last_health.get(name)
                    else None
                ),
            }
            for name, backend in self.backends.items()
        }
        snapshot: Dict[str, Any] = {
            "backends": backends,
            "ring": self.ring.nodes(),
            "queue_depth": pending,
            "queue_limit": self.config.queue_limit,
            "dispatchers": self.config.dispatchers,
            "uptime_s": time.time() - self._started_at,
            "lru": self.lru.stats(),
            **counts,
        }
        snapshot["latency_ms"] = latency_summary(latencies)
        if self.store is not None:
            snapshot["store"] = self.store.stats()
        return snapshot

    # -- fleet observability ---------------------------------------------

    def aggregated_metrics(self) -> Dict[str, Any]:
        """The fleet-wide metrics snapshot: the router's own registry
        merged with a live ``/v1/metrics`` scrape of every backend.

        Local backends share the router's process-wide registry, so only
        the router snapshot is merged for them (no double counting);
        HTTP backends are scraped over the wire, and an unreachable one
        degrades the aggregate (listed in ``missing``), never fails it.
        """
        registry = get_metrics()
        snapshots: Dict[str, Optional[Dict[str, Any]]] = {
            "router": registry.to_dict() if registry.enabled else None
        }
        for name, backend in self.backends.items():
            # Local backends share the router snapshot already counted
            # above; scraping them would double-count, and passing None
            # would wrongly report them as unreachable sources.
            if backend.scrapes_metrics:
                snapshots[name] = backend.metrics_snapshot()
        merged = merge_snapshots(snapshots)
        return {
            "enabled": registry.enabled or bool(merged["sources"]),
            "fleet": merged,
        }

    def trace_fragment(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """The router process's share of a distributed trace."""
        tracer = get_tracer()
        if not tracer.enabled:
            return None
        events = tracer.events_for_trace(trace_id)
        if not events:
            return None
        return make_fragment(
            "router", events, getattr(tracer, "epoch_unix_us", None)
        )

    def trace_document(self, trace_id: str) -> Dict[str, Any]:
        """The stitched Perfetto-loadable trace for one request: the
        router's fragment plus every backend's, merged with
        cross-process parent links (:mod:`repro.observability.stitch`).
        """
        fragments: List[Dict[str, Any]] = []
        own = self.trace_fragment(trace_id)
        if own is not None:
            fragments.append(own)
        for name in self.ring.nodes():
            fragment = self.backends[name].trace_fragment(trace_id)
            if fragment is not None:
                fragments.append(fragment)
        return stitch_fragments(fragments, trace_id)

    def close(self, close_backends: Optional[bool] = None) -> None:
        """Drain dispatchers; resolve every admitted job.

        Jobs queued ahead of the stop sentinels are dispatched; anything
        stranded afterwards is rejected with a typed ServiceError
        outcome so no waiter blocks forever.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for _ in self._dispatchers:
                self._queue.put(_STOP)
        self._probe_stop.set()
        if self._prober is not None:
            self._prober.join(timeout=30)
        for thread in self._dispatchers:
            thread.join(timeout=120)
        self._reject_queued_jobs()
        should_close = (
            self._owns_backends if close_backends is None else close_backends
        )
        if should_close:
            for backend in self.backends.values():
                try:
                    backend.close()
                except ReproError:
                    pass

    def __enter__(self) -> "FleetRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch --------------------------------------------------------

    def _resolved_ticket(
        self,
        digest: str,
        artifact: Dict[str, Any],
        served_by: str,
        t0: float,
        metrics,
        trace_id: Optional[str] = None,
    ) -> FleetTicket:
        latency_ms = (time.perf_counter() - t0) * 1e3
        self._observe_latency(latency_ms, metrics, trace_id)
        # A cache-tier hit proves the artifact exists fleet-wide: the
        # digest is warm, so a future dispatch of it may hedge safely.
        self._hedgeable.put(digest, True)
        ticket = FleetTicket(
            digest=digest, role=STATUS_HIT, trace_id=trace_id
        )
        ticket._future.set_result(
            CompileOutcome(
                digest=digest,
                status=STATUS_HIT,
                artifact=artifact,
                latency_ms=latency_ms,
                served_by=served_by,
                trace_id=trace_id,
            )
        )
        return ticket

    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            self._dispatch(item)

    def _route_order(self, order: List[str]) -> List[str]:
        """Preference order with unhealthy nodes demoted to last resort.

        A node is healthy when its liveness flag says alive AND its
        breaker admits traffic (closed, half-open, or open past its
        cooldown).  Unhealthy nodes stay reachable as a last resort —
        when the whole fleet looks down, trying a dead node beats
        answering with an error untried.
        """
        healthy = [
            n for n in order
            if self.backends[n].alive() and self._breakers[n].available()
        ]
        rest = [n for n in order if n not in healthy]
        return healthy + rest

    def _shed_ticket(
        self, digest: str, detail: str, metrics,
        trace_id: Optional[str] = None,
    ) -> FleetTicket:
        """A ticket pre-resolved with the typed deadline-shed outcome."""
        self._count("deadline_shed", metrics, "fleet.deadline.shed")
        self._count("errors", metrics, "fleet.errors")
        emit_event(
            "deadline_shed",
            digest=digest,
            where="fleet-admission",
            trace_id=trace_id,
        )
        ticket = FleetTicket(
            digest=digest, role=STATUS_ERROR, trace_id=trace_id
        )
        outcome = error_outcome(digest, DeadlineExceededError(detail))
        outcome.trace_id = trace_id
        ticket._future.set_result(outcome)
        return ticket

    def _shed_outcome(
        self, job: _FleetJob, detail: str, metrics
    ) -> CompileOutcome:
        self._count("deadline_shed", metrics, "fleet.deadline.shed")
        emit_event(
            "deadline_shed",
            digest=job.digest,
            where="fleet-dispatch",
            trace_id=job.trace_id,
        )
        outcome = error_outcome(job.digest, DeadlineExceededError(detail))
        outcome.trace_id = job.trace_id
        return outcome

    def _dispatch(self, job: _FleetJob) -> None:
        """Drive one job to an outcome, hedging when eligible.

        Without hedging this is just ``_failover_walk``.  With it, the
        primary walk runs in a helper thread while the dispatcher waits
        ``hedge_delay``; if the primary is still pending, one hedge goes
        to the next ring node and the first result to land wins the
        job's future (losers resolve a throwaway).  ``_finish`` runs
        exactly once, here, with whichever outcome won.
        """
        metrics = get_metrics()
        order = self.ring.preference(job.digest)
        primary = order[0]
        hedge_delay = self._hedge_delay(job, order)
        if hedge_delay is None:
            outcome = self._failover_walk(job, order, metrics)
            self._finish(job, outcome, primary, metrics)
            return
        winner: Future = Future()
        threading.Thread(
            target=lambda: _offer(
                winner, self._failover_walk(job, order, metrics)
            ),
            name="fleet-hedge-primary",
            daemon=True,
        ).start()
        try:
            outcome = winner.result(timeout=hedge_delay)
        except FutureTimeoutError:
            self._count("hedges", metrics, "fleet.hedges")
            emit_event(
                "hedge_fired",
                digest=job.digest,
                primary=primary,
                delay_s=hedge_delay,
                trace_id=job.trace_id,
            )
            hedged = self._hedge_attempt(job, order, metrics)
            if hedged is not None and _offer(winner, hedged):
                self._count("hedge_wins", metrics, "fleet.hedge.wins")
                emit_event(
                    "hedge_won",
                    digest=job.digest,
                    served_by=hedged.served_by,
                    trace_id=job.trace_id,
                )
            remaining = job.remaining()
            final_wait = (
                None
                if remaining is None
                else max(0.0, remaining) + _config.DEADLINE_WAIT_GRACE_S
            )
            try:
                outcome = winner.result(timeout=final_wait)
            except FutureTimeoutError:
                outcome = self._shed_outcome(
                    job,
                    "deadline expired with both the primary dispatch and "
                    "its hedge still pending; shed",
                    metrics,
                )
        self._finish(job, outcome, primary, metrics)

    def _failover_walk(
        self, job: _FleetJob, order: List[str], metrics
    ) -> CompileOutcome:
        """Walk the preference order until someone answers.

        Deadline-aware at every step: an expired job is shed before the
        next attempt, each forwarded request carries only the remaining
        budget, and backoff sleeps never exceed what is left of it.
        """
        # The walk may run on a dispatcher thread or a hedge-primary
        # helper thread; either way the job's trace context is
        # re-activated here so dispatch spans join the request's trace.
        if job.trace_id is not None:
            with get_tracer().trace_context(
                job.trace_id, job.parent_span_id
            ):
                return self._failover_walk_traced(job, order, metrics)
        return self._failover_walk_traced(job, order, metrics)

    def _failover_walk_traced(
        self, job: _FleetJob, order: List[str], metrics
    ) -> CompileOutcome:
        # Per-digest jitter seed: concurrent routers backing off for the
        # same saturated node spread out instead of herding in lockstep.
        delays = backoff_delays(
            self.config.retries,
            base_delay=self.config.backoff_base_s,
            max_delay=self.config.backoff_max_s,
            seed=int(job.digest[:8], 16),
        )
        last_exc: Optional[BaseException] = None
        attempted: List[str] = []

        def _sleep(attempt: int) -> None:
            delay = delays[attempt]
            remaining = job.remaining()
            if remaining is not None:
                delay = min(delay, max(0.0, remaining))
            if delay > 0:
                time.sleep(delay)

        for attempt in range(self.config.retries + 1):
            if job.expired():
                return self._shed_outcome(
                    job,
                    "deadline expired during fleet dispatch "
                    f"(tried {', '.join(attempted) or 'no backend yet'}); "
                    "shed without further attempts",
                    metrics,
                )
            candidates = self._route_order(order)
            # Most-preferred healthy node not yet tried; once every node
            # has been, cycle (a saturated node may have drained).
            name = next(
                (n for n in candidates if n not in attempted),
                candidates[attempt % len(candidates)],
            )
            backend = self.backends[name]
            attempted.append(backend.name)
            remaining = job.remaining()
            request = (
                job.request
                if remaining is None
                else job.request.with_deadline(remaining)
            )
            try:
                with get_tracer().span(
                    "fleet.dispatch", backend=backend.name
                ) as sp:
                    # The next hop's spans parent onto this dispatch
                    # span — the cross-process link the stitcher draws.
                    span_id = getattr(sp, "span_id", None)
                    if job.trace_id is not None:
                        request = request.with_trace(
                            job.trace_id, span_id or job.parent_span_id
                        )
                    result = backend.compile(request)
            except QueueFullError as exc:
                # Saturation is transient: jittered backoff, next node,
                # backend stays in the ring and its breaker is NOT fed —
                # a saturated backend is alive, just busy.
                last_exc = exc
                self._record_failure(
                    backend.name, metrics, "saturation", job
                )
                if attempt < self.config.retries:
                    _sleep(attempt)
                continue
            except ServiceError as exc:
                # Unreachable / shut down: dead until the prober (or a
                # later success) readmits it; the breaker accumulates
                # the failure so half-open probing is rate-limited.
                last_exc = exc
                backend.mark_dead()
                self._breaker_failure(backend.name, metrics)
                self._record_failure(
                    backend.name, metrics, "transport", job
                )
                metrics.counter("fleet.backend.deaths").inc()
                if attempt < self.config.retries:
                    _sleep(attempt)
                continue
            except ReproError as exc:
                # Typed request/pipeline error: an answer, not a routing
                # failure — retrying elsewhere cannot change it.
                outcome = error_outcome(job.digest, exc)
                outcome.served_by = backend.name
                return outcome
            if result.status == STATUS_ERROR and result.error is not None:
                if result.error.error_type == "DeadlineExceededError":
                    # The backend shed on the propagated deadline: the
                    # budget is spent everywhere, so this is final.
                    self._count(
                        "deadline_shed", metrics, "fleet.deadline.shed"
                    )
                    result.served_by = backend.name
                    return result
                if result.error.error_type in (
                    "ServiceError", "QueueFullError"
                ):
                    # The backend answered, but with its own
                    # availability failure (e.g. it shut down before the
                    # job ran) — retryable on another node, not a
                    # pipeline verdict.
                    last_exc = ServiceError(result.error.message)
                    cause = (
                        "saturation"
                        if result.error.error_type == "QueueFullError"
                        else "transport"
                    )
                    self._record_failure(backend.name, metrics, cause, job)
                    if attempt < self.config.retries:
                        _sleep(attempt)
                    continue
            self._record_success(backend.name, metrics)
            result.served_by = backend.name
            return result
        return error_outcome(
            job.digest,
            ServiceError(
                f"all fleet attempts failed for digest "
                f"{job.digest[:16]}… (tried {', '.join(attempted)}): "
                f"{last_exc}"
            ),
        )

    # -- hedging ---------------------------------------------------------

    def _hedge_delay(
        self, job: _FleetJob, order: List[str]
    ) -> Optional[float]:
        """How long to wait before hedging; ``None`` = never hedge.

        Only warm digests are eligible — ones a previous dispatch
        completed, so the shared store serves them from any backend
        without pipeline work.  That gate is what makes "hedges never
        duplicate a pipeline run" structural rather than probabilistic.
        """
        if len(order) < 2:
            return None
        if self._hedgeable.get(job.digest) is None:
            return None
        if self.config.hedge_delay_s is not None:
            return max(0.0, self.config.hedge_delay_s)
        if not self.config.hedge_p99:
            return None
        with self._lock:
            latencies = sorted(self._latencies_ms)
        if len(latencies) < self.config.hedge_min_samples:
            return None
        p99_s = percentile(latencies, 0.99) / 1e3
        return max(self.config.hedge_min_delay_s, p99_s)

    def _hedge_attempt(
        self, job: _FleetJob, order: List[str], metrics
    ) -> Optional[CompileOutcome]:
        """One extra dispatch to the next healthy non-primary ring node.

        Returns ``None`` when there is no eligible node or the hedge
        itself failed in a retryable way — the primary walk is still
        running and remains the job's answer of record.
        """
        name = next(
            (
                n for n in order[1:]
                if self.backends[n].alive()
                and self._breakers[n].available()
            ),
            None,
        )
        if name is None:
            return None
        backend = self.backends[name]
        remaining = job.remaining()
        request = (
            job.request
            if remaining is None
            else job.request.with_deadline(remaining)
        )
        tracer = get_tracer()
        try:
            if job.trace_id is not None:
                with tracer.trace_context(job.trace_id, job.parent_span_id):
                    with tracer.span(
                        "fleet.hedge", backend=backend.name
                    ) as sp:
                        span_id = getattr(sp, "span_id", None)
                        request = request.with_trace(
                            job.trace_id, span_id or job.parent_span_id
                        )
                        result = backend.compile(request)
            else:
                with tracer.span("fleet.hedge", backend=backend.name):
                    result = backend.compile(request)
        except QueueFullError:
            self._record_failure(backend.name, metrics, "saturation")
            return None
        except ServiceError:
            backend.mark_dead()
            self._breaker_failure(backend.name, metrics)
            self._record_failure(backend.name, metrics, "transport")
            metrics.counter("fleet.backend.deaths").inc()
            return None
        except ReproError as exc:
            # A typed verdict is final no matter which dispatch got it.
            outcome = error_outcome(job.digest, exc)
            outcome.served_by = backend.name
            return outcome
        if (
            result.status == STATUS_ERROR
            and result.error is not None
            and result.error.error_type
            in ("ServiceError", "QueueFullError")
        ):
            cause = (
                "saturation"
                if result.error.error_type == "QueueFullError"
                else "transport"
            )
            self._record_failure(backend.name, metrics, cause)
            return None
        self._record_success(backend.name, metrics)
        result.served_by = backend.name
        return result

    # -- health probing --------------------------------------------------

    def probe_backends(self) -> Dict[str, bool]:
        """One probe round; returns per-backend health as observed.

        Open breakers are probed at most once per cooldown (the
        half-open slot); a backend cooling down is reported unhealthy
        without being contacted.  A passing probe readmits the backend:
        breaker reclosed, liveness flag restored — the self-healing
        counterpart to dispatch-time ``mark_dead``.
        """
        results: Dict[str, bool] = {}
        metrics = get_metrics()
        for name, backend in self.backends.items():
            breaker = self._breakers[name]
            if breaker.state == BREAKER_OPEN:
                if not breaker.begin_probe():
                    results[name] = False  # cooling down; skip this round
                    continue
                emit_event("breaker_half_open", backend=name)
            self._count("probes", metrics, "fleet.probes")
            try:
                with get_tracer().span("fleet.probe", backend=name):
                    health = backend.probe()
                with self._lock:
                    self._last_health[name] = health
            except ReproError:
                if breaker.record_failure():
                    self._count(
                        "breaker_opened", metrics, "fleet.breaker.opened"
                    )
                    emit_event(
                        "breaker_open", backend=name, via="probe"
                    )
                    backend.mark_dead()
                self._set_breaker_gauge(name, metrics)
                results[name] = False
                continue
            self._record_success(name, metrics)
            results[name] = True
        return results

    def _probe_loop(self) -> None:
        while not self._probe_stop.wait(self.config.probe_interval_s):
            if self._closed:
                return
            try:
                self.probe_backends()
            except Exception:  # pragma: no cover - prober must survive
                pass

    # -- breaker bookkeeping ---------------------------------------------

    def _record_success(self, name: str, metrics) -> None:
        """A backend served traffic (or passed a probe): readmit it."""
        readmitted = self._breakers[name].record_success()
        backend = self.backends[name]
        revived = not backend.alive()
        if revived:
            backend.mark_alive()
        if readmitted:
            emit_event("breaker_closed", backend=name)
        if readmitted or revived:
            self._count("readmissions", metrics, "fleet.breaker.readmitted")
            emit_event("backend_readmitted", backend=name)
        self._set_breaker_gauge(name, metrics)

    def _breaker_failure(self, name: str, metrics) -> None:
        """Feed one transport failure to a backend's breaker."""
        if self._breakers[name].record_failure():
            self._count("breaker_opened", metrics, "fleet.breaker.opened")
            emit_event("breaker_open", backend=name, via="dispatch")
        self._set_breaker_gauge(name, metrics)

    def _set_breaker_gauge(self, name: str, metrics) -> None:
        metrics.gauge(f"fleet.breaker.{name}.state").set(
            BREAKER_STATE_CODES[self._breakers[name].state]
        )

    def _finish(
        self,
        job: _FleetJob,
        outcome: CompileOutcome,
        primary: str,
        metrics,
    ) -> None:
        served = outcome.served_by
        # Why the request left its primary: any transport failure along
        # the walk outranks saturation (it is the more actionable fact).
        reroute_cause = (
            "transport"
            if "transport" in job.failover_causes
            else "saturation"
        )
        with self._lock:
            if outcome.status == STATUS_ERROR:
                self._counts["errors"] += 1
            else:
                self._counts["completed"] += 1
            if served in self._per_backend:
                self._per_backend[served]["served"] += 1
                if served != primary:
                    self._counts["reroutes"] += 1
                    self._counts[f"reroutes_{reroute_cause}"] += 1
                    self._per_backend[primary]["reroutes_from"] += 1
        if outcome.status == STATUS_ERROR:
            metrics.counter("fleet.errors").inc()
        elif served in self._per_backend:
            metrics.counter(f"fleet.shard.{served}.served").inc()
            if served != primary:
                metrics.counter("fleet.reroutes").inc()
                metrics.counter(f"fleet.reroutes.{reroute_cause}").inc()
                emit_event(
                    "reroute",
                    digest=job.digest,
                    cause=reroute_cause,
                    primary=primary,
                    served_by=served,
                    trace_id=job.trace_id,
                )
        if outcome.ok:
            # Completed once -> any backend can serve it from the shared
            # store: the digest becomes hedge-eligible.
            self._hedgeable.put(job.digest, True)
        if outcome.ok and outcome.artifact is not None:
            self.lru.put(job.digest, outcome.artifact)
            if self.store is not None and outcome.status == STATUS_MISS:
                # Write-through: a freshly compiled artifact from a
                # backend with its own store root still lands in the
                # router's disk tier (idempotent for a shared root).
                try:
                    self.store.put(
                        CompileArtifact.from_dict(outcome.artifact)
                    )
                except (ValueError, KeyError, TypeError, OSError):
                    pass  # the disk tier is an optimization, never a gate
        latency_ms = (time.perf_counter() - job.submitted_at) * 1e3
        outcome.latency_ms = latency_ms
        if outcome.trace_id is None:
            outcome.trace_id = job.trace_id
        self._observe_latency(latency_ms, metrics, job.trace_id)
        with self._lock:
            self._inflight.pop(job.digest, None)
            self._pending -= 1
            metrics.gauge("fleet.queue.depth").set(self._pending)
        job.future.set_result(outcome)

    def _reject_queued_jobs(self) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                continue
            outcome = error_outcome(
                item.digest,
                ServiceError("fleet router shut down before dispatch"),
            )
            with self._lock:
                self._inflight.pop(item.digest, None)
                self._pending -= 1
                self._counts["errors"] += 1
            item.future.set_result(outcome)

    def _record_failure(
        self,
        name: str,
        metrics,
        cause: str = "transport",
        job: Optional[_FleetJob] = None,
    ) -> None:
        """One failed attempt against a backend, split by cause.

        ``cause`` is ``"saturation"`` (503 / shed — the node is alive,
        just busy) or ``"transport"`` (unreachable / dead).  When the
        attempt belongs to a failover walk, the cause is also recorded
        on the job so the eventual reroute is classified the same way.
        """
        with self._lock:
            self._per_backend[name]["failures"] += 1
            self._per_backend[name][f"failures_{cause}"] += 1
        if job is not None:
            job.failover_causes.append(cause)
        metrics.counter("fleet.backend.failures").inc()
        metrics.counter(f"fleet.backend.failures.{cause}").inc()

    def _count(self, key: str, metrics, metric_name: str) -> None:
        with self._lock:
            self._counts[key] += 1
        metrics.counter(metric_name).inc()

    def _observe_latency(
        self, latency_ms: float, metrics, trace_id: Optional[str] = None
    ) -> None:
        with self._lock:
            self._latencies_ms.append(latency_ms)
        # The trace id is the bucket's exemplar: a p99 outlier in the
        # aggregated snapshot resolves to its stitched trace.
        metrics.histogram("fleet.request_ms").observe(
            latency_ms, exemplar=trace_id
        )


# -- fleet builders ------------------------------------------------------


def local_fleet(
    backends: int,
    cache_dir: Optional[str],
    fleet_config: Optional[FleetConfig] = None,
    compile_fn: Optional[
        Callable[[CompileRequest, str], CompileArtifact]
    ] = None,
    **service_kwargs: Any,
) -> FleetRouter:
    """A router over ``backends`` in-process services sharing one store.

    Only the first backend persists/restores the sweep memo — the memo
    caches are process-global, so one restore covers every backend and
    concurrent snapshot writes on shutdown would be redundant.
    """
    if backends < 1:
        raise ServiceError("a fleet needs at least one backend")
    members: List[Backend] = []
    for index in range(backends):
        config = ServiceConfig(
            cache_dir=cache_dir,
            memo_persistence=(index == 0),
            **service_kwargs,
        )
        members.append(
            LocalBackend(
                f"backend-{index}",
                CompileService(config, compile_fn=compile_fn),
            )
        )
    fleet_config = fleet_config or FleetConfig()
    if fleet_config.cache_dir is None and cache_dir is not None:
        fleet_config.cache_dir = cache_dir
    return FleetRouter(members, fleet_config, owns_backends=True)


def spawn_server_process(
    cache_dir: str,
    log_path: str,
    workers: int = 1,
    port: int = 0,
    extra_args: Sequence[str] = (),
    startup_timeout_s: float = 60.0,
) -> Tuple[subprocess.Popen, str]:
    """Boot one ``python -m repro serve`` subprocess; returns (proc, url).

    The server prints ``listening on <url>`` once bound (``--port 0``
    picks an ephemeral port); this helper tails the log until it does.
    """
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    log_file = open(log_path, "w")
    try:
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", str(port),
                "--workers", str(workers),
                "--cache-dir", cache_dir,
                *extra_args,
            ],
            stdout=log_file,
            stderr=subprocess.STDOUT,
            env=env,
        )
    finally:
        log_file.close()
    deadline = time.time() + startup_timeout_s
    while time.time() < deadline:
        try:
            text = Path(log_path).read_text()
        except OSError:
            text = ""
        if "listening on " in text:
            url = text.split("listening on ", 1)[1].split()[0]
            return proc, url
        if proc.poll() is not None:
            raise ServiceError(
                f"compile server exited during startup "
                f"(code {proc.returncode}): {text[-500:]}"
            )
        time.sleep(0.1)
    proc.kill()
    raise ServiceError(
        f"compile server did not come up within {startup_timeout_s}s"
    )


def spawn_http_fleet(
    backends: int,
    cache_dir: str,
    log_dir: str,
    fleet_config: Optional[FleetConfig] = None,
    workers: int = 1,
    timeout: float = 120.0,
    extra_args: Sequence[str] = (),
) -> FleetRouter:
    """A router over ``backends`` subprocess servers sharing one store.

    This is the real deployment shape (independent processes, real
    sockets, real process parallelism); ``close()`` terminates the
    server processes.
    """
    members: List[Backend] = []
    os.makedirs(log_dir, exist_ok=True)
    try:
        for index in range(backends):
            proc, url = spawn_server_process(
                cache_dir,
                os.path.join(log_dir, f"backend-{index}.log"),
                workers=workers,
                extra_args=extra_args,
            )
            members.append(
                HttpBackend(
                    f"backend-{index}", url, timeout=timeout, process=proc
                )
            )
    except BaseException:
        for member in members:
            member.close()
        raise
    fleet_config = fleet_config or FleetConfig()
    if fleet_config.cache_dir is None:
        fleet_config.cache_dir = cache_dir
    return FleetRouter(members, fleet_config, owns_backends=True)


__all__ = [
    "Backend",
    "FleetConfig",
    "FleetRouter",
    "FleetTicket",
    "HttpBackend",
    "LocalBackend",
    "SERVED_BY_LRU",
    "SERVED_BY_STORE",
    "local_fleet",
    "spawn_http_fleet",
    "spawn_server_process",
]
