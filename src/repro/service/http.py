"""JSON-over-HTTP front end for the compile service (stdlib only).

The handler speaks to anything satisfying the *service contract* —
``compile(request) -> CompileOutcome``, ``stats() -> dict``,
``health() -> dict``, ``clear_cache() -> int``, and a ``store``
attribute (an
:class:`~repro.service.store.ArtifactStore` or ``None``) — so one server
implementation fronts both a single-process
:class:`~repro.service.service.CompileService` (``repro serve``) and a
:class:`~repro.service.fleet.FleetRouter` (``repro fleet serve``).

Endpoints (all under ``/v1``):

=======================  ======  ==========================================
``/v1/healthz``          GET     liveness + version stamps
``/v1/health``           GET     liveness + load: queue depth/limit,
                                 saturation — the fleet prober's endpoint
``/v1/stats``            GET     service counters, latency percentiles,
                                 store stats, and the metrics-registry
                                 snapshot when metrics are enabled
``/v1/metrics``          GET     the metrics-registry snapshot alone (the
                                 dashboard/aggregator scrape target); a
                                 fleet front-end answers with the merged
                                 fleet-wide aggregate
``/v1/trace/<id>``       GET     the stitched Perfetto trace for one
                                 ``trace_id`` (``?raw=1`` returns this
                                 process's unstitched fragment — what the
                                 fleet stitcher scrapes)
``/v1/events``           GET     the structured control-plane event log
                                 (``?since=N`` returns events newer than
                                 sequence number N)
``/v1/compile``          POST    body: :class:`~repro.service.api.CompileRequest`
                                 JSON; blocks until the outcome is ready
``/v1/artifacts/<d>``    GET     one stored artifact by digest
``/v1/cache/clear``      POST    drop every stored artifact
=======================  ======  ==========================================

Status mapping: 200 success (hit or miss), 400 malformed request
(``RuntimeConfigError``/``IRError``), 422 typed pipeline failure (the
body carries the error and its replayable failure report), 503 +
``Retry-After`` when the admission queue sheds load, 504 when the
request's propagated deadline expired before it could be served (the
body is the typed shed outcome), 404 unknown path/digest.  Every error
body includes ``error_type`` and the CLI ``exit_code`` for that failure
class, so a thin client can exit the way a local run would.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from ..errors import (
    EXIT_CONFIG,
    QueueFullError,
    ReproError,
    exit_code_for,
)
from ..ir.serialize import FORMAT_VERSION, PIPELINE_VERSION
from ..observability import (
    get_event_log,
    get_metrics,
    get_tracer,
    is_valid_trace_id,
    make_fragment,
    stitch_fragments,
)
from .api import STATUS_ERROR, CompileRequest
from .store import is_valid_digest

#: Maximum accepted request-body size (serialized IR programs are small;
#: anything bigger is a client bug or abuse).
MAX_BODY_BYTES = 16 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """One handler thread per connection; workers bound the real work."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: Any) -> None:
        # ``service`` is anything satisfying the module-docstring
        # contract: a CompileService or a FleetRouter.
        super().__init__(address, _Handler)
        self.service = service

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"


def make_server(
    service: Any, host: str, port: int
) -> ServiceHTTPServer:
    """Bind (``port=0`` picks an ephemeral port) but do not serve yet."""
    return ServiceHTTPServer((host, port), service)


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    #: HTTP/1.1 keeps connections alive between requests (every response
    #: sets Content-Length, which 1.1 keep-alive requires) — the fleet
    #: router's dispatcher threads reuse one connection per backend
    #: instead of paying a TCP handshake per request.
    protocol_version = "HTTP/1.1"
    #: TCP_NODELAY: headers and body go out as separate writes; with a
    #: kept-alive connection Nagle would hold the body ~40ms waiting on
    #: the client's delayed ACK of the header packet.
    disable_nagle_algorithm = True
    #: Keep the default noisy per-request stderr logging off; the
    #: service's own metrics/tracing are the observability surface.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # -- plumbing --------------------------------------------------------

    def _send(
        self,
        status: int,
        payload: Dict[str, Any],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up

    def _error(
        self,
        status: int,
        exc: BaseException,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._send(
            status,
            {
                "error_type": type(exc).__name__,
                "message": str(exc),
                "exit_code": exit_code_for(exc),
            },
            extra_headers,
        )

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            raise ValueError(
                f"request body must be 1..{MAX_BODY_BYTES} bytes, "
                f"got {length}"
            )
        return json.loads(self.rfile.read(length).decode("utf-8"))

    def _query(self) -> Dict[str, str]:
        """Last-wins query parameters (``?raw=1``, ``?since=N``)."""
        parts = self.path.split("?", 1)
        if len(parts) < 2 or not parts[1]:
            return {}
        from urllib.parse import parse_qsl

        return dict(parse_qsl(parts[1], keep_blank_values=True))

    def _local_fragment(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """This process's unstitched trace fragment, or ``None``.

        A fleet router carries its own ``trace_fragment``; a plain
        :class:`~repro.service.service.CompileService` has none, so the
        fragment is built straight from the process tracer.
        """
        fragment_fn = getattr(self.server.service, "trace_fragment", None)
        if fragment_fn is not None:
            return fragment_fn(trace_id)
        tracer = get_tracer()
        if not tracer.enabled:
            return None
        events = tracer.events_for_trace(trace_id)
        if not events:
            return None
        return make_fragment(
            "service", events, getattr(tracer, "epoch_unix_us", None)
        )

    # -- routes ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/v1/healthz":
            import repro

            self._send(200, {
                "ok": True,
                "version": repro.__version__,
                "format_version": FORMAT_VERSION,
                "pipeline_version": PIPELINE_VERSION,
            })
            return
        if path == "/v1/health":
            # The prober's endpoint: liveness plus load.  A reachable
            # server always answers 200; ``ok: false`` (draining after
            # close()) tells the prober to trip the breaker without
            # waiting for a connection error.
            self._send(200, self.server.service.health())
            return
        if path == "/v1/stats":
            payload: Dict[str, Any] = {
                "service": self.server.service.stats(),
            }
            metrics = get_metrics()
            if metrics.enabled:
                payload["metrics"] = metrics.to_dict()
            self._send(200, payload)
            return
        if path == "/v1/metrics":
            # The scrape target.  A fleet front-end answers with the
            # merged fleet-wide aggregate (its own registry plus every
            # reachable backend's); a plain server answers with its own
            # registry snapshot.
            aggregate_fn = getattr(
                self.server.service, "aggregated_metrics", None
            )
            if aggregate_fn is not None:
                self._send(200, aggregate_fn())
                return
            metrics = get_metrics()
            self._send(200, {
                "enabled": metrics.enabled,
                "metrics": metrics.to_dict() if metrics.enabled else None,
            })
            return
        if path.startswith("/v1/trace/"):
            trace_id = path[len("/v1/trace/"):]
            if not is_valid_trace_id(trace_id):
                self._send(404, {
                    "error_type": "NotFound",
                    "message": f"malformed trace id {trace_id!r}",
                })
                return
            raw = self._query().get("raw") in ("1", "true")
            if raw:
                fragment = self._local_fragment(trace_id)
                if fragment is None:
                    self._send(404, {
                        "error_type": "NotFound",
                        "message": f"no events for trace {trace_id!r}",
                    })
                    return
                self._send(200, fragment)
                return
            document_fn = getattr(self.server.service, "trace_document", None)
            if document_fn is not None:
                document = document_fn(trace_id)
            else:
                fragment = self._local_fragment(trace_id)
                document = (
                    stitch_fragments([fragment], trace_id=trace_id)
                    if fragment is not None
                    else None
                )
            if document is None or not document.get("traceEvents"):
                self._send(404, {
                    "error_type": "NotFound",
                    "message": f"no events for trace {trace_id!r}",
                })
                return
            self._send(200, document)
            return
        if path == "/v1/events":
            since: Optional[int] = None
            raw_since = self._query().get("since")
            if raw_since is not None:
                try:
                    since = int(raw_since)
                except ValueError:
                    self._send(400, {
                        "error_type": "BadRequest",
                        "message": f"malformed since {raw_since!r}",
                        "exit_code": EXIT_CONFIG,
                    })
                    return
            self._send(200, get_event_log().snapshot(since=since))
            return
        if path.startswith("/v1/artifacts/"):
            digest = path[len("/v1/artifacts/"):]
            # The digest is attacker-controlled URL text; only a
            # well-formed content address may reach the filesystem.
            if not is_valid_digest(digest):
                self._send(404, {
                    "error_type": "NotFound",
                    "message": f"malformed artifact digest {digest!r}",
                })
                return
            store = self.server.service.store
            artifact = store.get(digest) if store is not None else None
            if artifact is not None:
                self._send(200, artifact.to_dict())
                return
            # Recipes are content-addressed in the same namespace: a
            # digest that names no compile artifact may name the
            # transformation recipe one of them recorded.
            recipe = store.get_recipe(digest) if store is not None else None
            if recipe is not None:
                self._send(200, recipe)
                return
            self._send(404, {
                "error_type": "NotFound",
                "message": f"no artifact for digest {digest!r}",
            })
            return
        self._send(404, {
            "error_type": "NotFound",
            "message": f"unknown path {path!r}",
        })

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/v1/cache/clear":
            # clear_cache also drops any in-memory tier (the fleet
            # router's LRU), which a bare store.clear() would leave
            # serving stale hits.
            self._send(200, {"cleared": self.server.service.clear_cache()})
            return
        if path != "/v1/compile":
            self._send(404, {
                "error_type": "NotFound",
                "message": f"unknown path {path!r}",
            })
            return
        try:
            data = self._read_json()
        except (ValueError, UnicodeDecodeError) as exc:
            # The body may be partly (or not at all) consumed; a
            # keep-alive connection would misparse the leftover bytes
            # as the next request, so drop the connection instead.
            self.close_connection = True
            self._send(400, {
                "error_type": "BadRequest",
                "message": f"malformed JSON body: {exc}",
                "exit_code": EXIT_CONFIG,
            })
            return
        try:
            request = CompileRequest.from_dict(data)
            outcome = self.server.service.compile(request)
        except QueueFullError as exc:
            self._error(503, exc, {"Retry-After": "1"})
            return
        except ReproError as exc:
            # Resolution errors (unknown app/device, malformed IR) are
            # the client's fault: 400, same typed payload as the CLI.
            self._error(400, exc)
            return
        if outcome.status == STATUS_ERROR:
            # Deadline sheds get their own status (504): the router must
            # treat them as final — the caller's budget is spent, so
            # rerouting to another backend would be pure waste — while
            # 422 pipeline failures stay final for a different reason
            # (they are deterministic) and everything 5xx is retryable.
            shed = (
                outcome.error is not None
                and outcome.error.error_type == "DeadlineExceededError"
            )
            self._send(504 if shed else 422, outcome.to_dict())
            return
        self._send(200, outcome.to_dict())


def serve_forever(server: ServiceHTTPServer) -> None:
    """Block serving requests until ``server.shutdown()`` or interrupt."""
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()


__all__ = [
    "MAX_BODY_BYTES",
    "ServiceHTTPServer",
    "make_server",
    "serve_forever",
]
