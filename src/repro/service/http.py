"""JSON-over-HTTP front end for the compile service (stdlib only).

The handler speaks to anything satisfying the *service contract* —
``compile(request) -> CompileOutcome``, ``stats() -> dict``,
``health() -> dict``, ``clear_cache() -> int``, and a ``store``
attribute (an
:class:`~repro.service.store.ArtifactStore` or ``None``) — so one server
implementation fronts both a single-process
:class:`~repro.service.service.CompileService` (``repro serve``) and a
:class:`~repro.service.fleet.FleetRouter` (``repro fleet serve``).

Endpoints (all under ``/v1``):

=======================  ======  ==========================================
``/v1/healthz``          GET     liveness + version stamps
``/v1/health``           GET     liveness + load: queue depth/limit,
                                 saturation — the fleet prober's endpoint
``/v1/stats``            GET     service counters, latency percentiles,
                                 store stats, and the metrics-registry
                                 snapshot when metrics are enabled
``/v1/compile``          POST    body: :class:`~repro.service.api.CompileRequest`
                                 JSON; blocks until the outcome is ready
``/v1/artifacts/<d>``    GET     one stored artifact by digest
``/v1/cache/clear``      POST    drop every stored artifact
=======================  ======  ==========================================

Status mapping: 200 success (hit or miss), 400 malformed request
(``RuntimeConfigError``/``IRError``), 422 typed pipeline failure (the
body carries the error and its replayable failure report), 503 +
``Retry-After`` when the admission queue sheds load, 504 when the
request's propagated deadline expired before it could be served (the
body is the typed shed outcome), 404 unknown path/digest.  Every error
body includes ``error_type`` and the CLI ``exit_code`` for that failure
class, so a thin client can exit the way a local run would.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from ..errors import (
    EXIT_CONFIG,
    QueueFullError,
    ReproError,
    exit_code_for,
)
from ..ir.serialize import FORMAT_VERSION, PIPELINE_VERSION
from ..observability import get_metrics
from .api import STATUS_ERROR, CompileRequest
from .store import is_valid_digest

#: Maximum accepted request-body size (serialized IR programs are small;
#: anything bigger is a client bug or abuse).
MAX_BODY_BYTES = 16 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """One handler thread per connection; workers bound the real work."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: Any) -> None:
        # ``service`` is anything satisfying the module-docstring
        # contract: a CompileService or a FleetRouter.
        super().__init__(address, _Handler)
        self.service = service

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"


def make_server(
    service: Any, host: str, port: int
) -> ServiceHTTPServer:
    """Bind (``port=0`` picks an ephemeral port) but do not serve yet."""
    return ServiceHTTPServer((host, port), service)


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    #: HTTP/1.1 keeps connections alive between requests (every response
    #: sets Content-Length, which 1.1 keep-alive requires) — the fleet
    #: router's dispatcher threads reuse one connection per backend
    #: instead of paying a TCP handshake per request.
    protocol_version = "HTTP/1.1"
    #: TCP_NODELAY: headers and body go out as separate writes; with a
    #: kept-alive connection Nagle would hold the body ~40ms waiting on
    #: the client's delayed ACK of the header packet.
    disable_nagle_algorithm = True
    #: Keep the default noisy per-request stderr logging off; the
    #: service's own metrics/tracing are the observability surface.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # -- plumbing --------------------------------------------------------

    def _send(
        self,
        status: int,
        payload: Dict[str, Any],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up

    def _error(
        self,
        status: int,
        exc: BaseException,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._send(
            status,
            {
                "error_type": type(exc).__name__,
                "message": str(exc),
                "exit_code": exit_code_for(exc),
            },
            extra_headers,
        )

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            raise ValueError(
                f"request body must be 1..{MAX_BODY_BYTES} bytes, "
                f"got {length}"
            )
        return json.loads(self.rfile.read(length).decode("utf-8"))

    # -- routes ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/v1/healthz":
            import repro

            self._send(200, {
                "ok": True,
                "version": repro.__version__,
                "format_version": FORMAT_VERSION,
                "pipeline_version": PIPELINE_VERSION,
            })
            return
        if path == "/v1/health":
            # The prober's endpoint: liveness plus load.  A reachable
            # server always answers 200; ``ok: false`` (draining after
            # close()) tells the prober to trip the breaker without
            # waiting for a connection error.
            self._send(200, self.server.service.health())
            return
        if path == "/v1/stats":
            payload: Dict[str, Any] = {
                "service": self.server.service.stats(),
            }
            metrics = get_metrics()
            if metrics.enabled:
                payload["metrics"] = metrics.to_dict()
            self._send(200, payload)
            return
        if path.startswith("/v1/artifacts/"):
            digest = path[len("/v1/artifacts/"):]
            # The digest is attacker-controlled URL text; only a
            # well-formed content address may reach the filesystem.
            if not is_valid_digest(digest):
                self._send(404, {
                    "error_type": "NotFound",
                    "message": f"malformed artifact digest {digest!r}",
                })
                return
            store = self.server.service.store
            artifact = store.get(digest) if store is not None else None
            if artifact is None:
                self._send(404, {
                    "error_type": "NotFound",
                    "message": f"no artifact for digest {digest!r}",
                })
                return
            self._send(200, artifact.to_dict())
            return
        self._send(404, {
            "error_type": "NotFound",
            "message": f"unknown path {path!r}",
        })

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/v1/cache/clear":
            # clear_cache also drops any in-memory tier (the fleet
            # router's LRU), which a bare store.clear() would leave
            # serving stale hits.
            self._send(200, {"cleared": self.server.service.clear_cache()})
            return
        if path != "/v1/compile":
            self._send(404, {
                "error_type": "NotFound",
                "message": f"unknown path {path!r}",
            })
            return
        try:
            data = self._read_json()
        except (ValueError, UnicodeDecodeError) as exc:
            # The body may be partly (or not at all) consumed; a
            # keep-alive connection would misparse the leftover bytes
            # as the next request, so drop the connection instead.
            self.close_connection = True
            self._send(400, {
                "error_type": "BadRequest",
                "message": f"malformed JSON body: {exc}",
                "exit_code": EXIT_CONFIG,
            })
            return
        try:
            request = CompileRequest.from_dict(data)
            outcome = self.server.service.compile(request)
        except QueueFullError as exc:
            self._error(503, exc, {"Retry-After": "1"})
            return
        except ReproError as exc:
            # Resolution errors (unknown app/device, malformed IR) are
            # the client's fault: 400, same typed payload as the CLI.
            self._error(400, exc)
            return
        if outcome.status == STATUS_ERROR:
            # Deadline sheds get their own status (504): the router must
            # treat them as final — the caller's budget is spent, so
            # rerouting to another backend would be pure waste — while
            # 422 pipeline failures stay final for a different reason
            # (they are deterministic) and everything 5xx is retryable.
            shed = (
                outcome.error is not None
                and outcome.error.error_type == "DeadlineExceededError"
            )
            self._send(504 if shed else 422, outcome.to_dict())
            return
        self._send(200, outcome.to_dict())


def serve_forever(server: ServiceHTTPServer) -> None:
    """Block serving requests until ``server.shutdown()`` or interrupt."""
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()


__all__ = [
    "MAX_BODY_BYTES",
    "ServiceHTTPServer",
    "make_server",
    "serve_forever",
]
