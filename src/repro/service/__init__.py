"""Compile-as-a-service: a long-lived compilation layer.

Every other entry point (CLI, benchmarks, tests) pays the full
build → analyze → search → optimize → codegen pipeline per process; this
package amortizes it across requests *and* restarts:

* :mod:`.api` — wire types (:class:`CompileRequest`,
  :class:`CompileOutcome`);
* :mod:`.store` — persistent content-addressed artifact store keyed by
  :func:`repro.ir.serialize.compile_digest`;
* :mod:`.memo` — snapshot/load persistence for the in-memory sweep memo;
* :mod:`.service` — the worker pool with bounded admission and
  single-flight dedup;
* :mod:`.http` / :mod:`.client` — stdlib JSON-over-HTTP server and
  client (``repro serve`` / ``repro submit``).

See ``docs/service.md`` for the design: cache layering, digest
versioning/invalidation, backpressure, and failure semantics.
"""

from .api import (  # noqa: F401
    STATUS_COALESCED,
    STATUS_ERROR,
    STATUS_HIT,
    STATUS_MISS,
    CompileError,
    CompileOutcome,
    CompileRequest,
    request_for_program,
)
from .client import ServiceClient  # noqa: F401
from .memo import load_memo, save_memo  # noqa: F401
from .service import CompileService, ServiceConfig, Ticket  # noqa: F401
from .store import (  # noqa: F401
    ARTIFACT_VERSION,
    ArtifactStore,
    CompileArtifact,
    build_artifact,
)

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactStore",
    "CompileArtifact",
    "CompileError",
    "CompileOutcome",
    "CompileRequest",
    "CompileService",
    "ServiceClient",
    "ServiceConfig",
    "STATUS_COALESCED",
    "STATUS_ERROR",
    "STATUS_HIT",
    "STATUS_MISS",
    "Ticket",
    "build_artifact",
    "load_memo",
    "request_for_program",
    "save_memo",
]
