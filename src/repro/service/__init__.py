"""Compile-as-a-service: a long-lived compilation layer.

Every other entry point (CLI, benchmarks, tests) pays the full
build → analyze → search → optimize → codegen pipeline per process; this
package amortizes it across requests *and* restarts:

* :mod:`.api` — wire types (:class:`CompileRequest`,
  :class:`CompileOutcome`);
* :mod:`.store` — persistent content-addressed artifact store keyed by
  :func:`repro.ir.serialize.compile_digest`;
* :mod:`.memo` — snapshot/load persistence for the in-memory sweep memo;
* :mod:`.service` — the worker pool with bounded admission and
  single-flight dedup;
* :mod:`.http` / :mod:`.client` — stdlib JSON-over-HTTP server and
  client (``repro serve`` / ``repro submit``);
* :mod:`.router` — consistent-hash ring + hot in-memory LRU artifact
  tier;
* :mod:`.fleet` — the digest-sharded front-end router over N backends
  with fleet-wide single-flight and failover (``repro fleet``);
* :mod:`.dashboard` — the live fleet terminal dashboard renderer
  (``repro fleet top``) over the ``/v1/stats`` + ``/v1/metrics``
  scrape payloads.

See ``docs/service.md`` for the design: cache layering, digest
versioning/invalidation, backpressure, sharding, and failure semantics.
"""

from .api import (  # noqa: F401
    STATUS_COALESCED,
    STATUS_ERROR,
    STATUS_HIT,
    STATUS_MISS,
    CompileError,
    CompileOutcome,
    CompileRequest,
    clear_digest_memo,
    request_for_program,
)
from .client import ServiceClient  # noqa: F401
from .dashboard import render_fleet_top, run_fleet_top  # noqa: F401
from .fleet import (  # noqa: F401
    FleetConfig,
    FleetRouter,
    FleetTicket,
    HttpBackend,
    LocalBackend,
    local_fleet,
    spawn_http_fleet,
)
from .memo import load_memo, save_memo  # noqa: F401
from .router import HashRing, LRUCache  # noqa: F401
from .service import CompileService, ServiceConfig, Ticket  # noqa: F401
from .store import (  # noqa: F401
    ARTIFACT_VERSION,
    ArtifactStore,
    CompileArtifact,
    artifact_fingerprint,
    build_artifact,
)

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactStore",
    "CompileArtifact",
    "CompileError",
    "CompileOutcome",
    "CompileRequest",
    "CompileService",
    "FleetConfig",
    "FleetRouter",
    "FleetTicket",
    "HashRing",
    "HttpBackend",
    "LRUCache",
    "LocalBackend",
    "ServiceClient",
    "ServiceConfig",
    "STATUS_COALESCED",
    "STATUS_ERROR",
    "STATUS_HIT",
    "STATUS_MISS",
    "Ticket",
    "artifact_fingerprint",
    "build_artifact",
    "clear_digest_memo",
    "load_memo",
    "local_fleet",
    "render_fleet_top",
    "request_for_program",
    "run_fleet_top",
    "save_memo",
    "spawn_http_fleet",
]
