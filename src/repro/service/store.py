"""Persistent content-addressed artifact store.

Artifacts live under ``<root>/objects/<digest[:2]>/<digest>.json``, one
self-contained JSON file per compilation, keyed by the canonical digest
of (IR, device, flags, strategy, sizes, pipeline version) from
:func:`repro.ir.serialize.compile_digest`.  Because the key covers the
pipeline version, a behavior-changing release invalidates every stale
artifact by construction — no sweep needed — and because each object is
written atomically (``os.replace`` of a same-directory temp file), a
crashed writer can never leave a half-written artifact that a reader
would trust.

Reads are defensive: a corrupt, truncated, version-skewed, or
digest-mismatched object is treated as a miss and quarantined (deleted),
so one bad file costs a recompile, not an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from ..ir.serialize import PIPELINE_VERSION

#: Bumped on any incompatible artifact-layout change; loaders check it.
ARTIFACT_VERSION = 1

#: The only shape a content address can take: a lowercase hex SHA-256.
#: Everything the store touches on disk derives from a digest, so this
#: is also the path-safety boundary — a digest that matches cannot name
#: anything outside ``<root>/objects``.
_DIGEST_RE = re.compile(r"[0-9a-f]{64}")


def is_valid_digest(digest: Any) -> bool:
    """Whether ``digest`` is a well-formed content address."""
    return isinstance(digest, str) and _DIGEST_RE.fullmatch(digest) is not None


@dataclass
class CompileArtifact:
    """Everything worth keeping from one pipeline run."""

    digest: str
    program: str
    strategy: str
    device: str
    sizes: Dict[str, int] = field(default_factory=dict)
    flags: Dict[str, bool] = field(default_factory=dict)
    pipeline_version: int = PIPELINE_VERSION
    #: ``str(mapping)`` per kernel — the chosen mapping decisions.
    mappings: List[str] = field(default_factory=list)
    cuda_source: str = ""
    #: ``{"total_us": ..., "kernels": [{"total_us": ..., <components>}]}``
    cost: Dict[str, Any] = field(default_factory=dict)
    degradations: List[str] = field(default_factory=list)
    #: The mapping-provenance record (``repro explain`` renders it).
    provenance: Optional[Dict[str, Any]] = None
    #: The transformation recipe (``Recipe.to_json()`` form) that built
    #: the plans, and its content digest.  ``None`` for fully degraded
    #: compiles where no pipeline ran.
    recipe: Optional[Dict[str, Any]] = None
    recipe_digest: Optional[str] = None
    compile_ms: float = 0.0
    created_at: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": ARTIFACT_VERSION,
            "digest": self.digest,
            "program": self.program,
            "strategy": self.strategy,
            "device": self.device,
            "sizes": {k: int(v) for k, v in self.sizes.items()},
            "flags": dict(self.flags),
            "pipeline_version": self.pipeline_version,
            "mappings": list(self.mappings),
            "cuda_source": self.cuda_source,
            "cost": self.cost,
            "degradations": list(self.degradations),
            "provenance": self.provenance,
            "recipe": self.recipe,
            "recipe_digest": self.recipe_digest,
            "compile_ms": self.compile_ms,
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CompileArtifact":
        version = data.get("version")
        if version != ARTIFACT_VERSION:
            raise ValueError(
                f"artifact version {version!r} is not supported "
                f"(expected {ARTIFACT_VERSION})"
            )
        return cls(
            digest=data["digest"],
            program=data.get("program", ""),
            strategy=data.get("strategy", ""),
            device=data.get("device", ""),
            sizes={k: int(v) for k, v in (data.get("sizes") or {}).items()},
            flags=dict(data.get("flags") or {}),
            pipeline_version=int(data.get("pipeline_version", 0)),
            mappings=list(data.get("mappings") or []),
            cuda_source=data.get("cuda_source", ""),
            cost=dict(data.get("cost") or {}),
            degradations=list(data.get("degradations") or []),
            provenance=data.get("provenance"),
            recipe=data.get("recipe"),
            recipe_digest=data.get("recipe_digest"),
            compile_ms=float(data.get("compile_ms", 0.0)),
            created_at=float(data.get("created_at", 0.0)),
        )


#: Artifact fields excluded from :func:`artifact_fingerprint`: wall-clock
#: stamps differ run to run, and provenance is best-effort diagnostics
#: that embeds elapsed search time.  Everything else — mappings, CUDA
#: source, cost, flags, versions — must be identical for one digest no
#: matter which process, backend, or fleet member compiled it.
FINGERPRINT_VOLATILE_KEYS = ("compile_ms", "created_at", "provenance")


def _recipe_content_digest(data: Dict[str, Any]) -> str:
    """The recipe's content address (mirrors ``Recipe.content_digest``)."""
    from ..ir.serialize import canonical_json

    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


def artifact_fingerprint(artifact: Any) -> str:
    """SHA-256 over an artifact's deterministic payload.

    Accepts a :class:`CompileArtifact` or its ``to_dict`` form.  Two
    artifacts for the same compile digest must fingerprint identically
    regardless of who compiled them — the byte-identity contract the
    fleet failover tests pin.
    """
    data = (
        artifact.to_dict()
        if isinstance(artifact, CompileArtifact)
        else dict(artifact)
    )
    for key in FINGERPRINT_VOLATILE_KEYS:
        data.pop(key, None)
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def build_artifact(
    digest: str,
    compiled,
    compile_ms: float,
    with_provenance: bool = True,
) -> CompileArtifact:
    """Extract the storable artifact from a
    :class:`~repro.runtime.session.CompiledProgram`."""
    cost = compiled.estimate_cost()
    cost_dict = {
        "total_us": cost.total_us,
        "kernels": [
            {"total_us": k.total_us, **k.components()} for k in cost.kernels
        ],
    }
    provenance = None
    if with_provenance:
        from ..errors import ReproError

        try:
            provenance = compiled.provenance().to_dict()
        except ReproError:
            provenance = None  # best-effort diagnostics, as in the session
    recipe_dict = None
    recipe_digest = None
    try:
        recipe = compiled.recipe()
    except Exception:
        recipe = None  # a storable artifact beats a perfect recipe
    if recipe is not None:
        recipe_dict = recipe.to_json()
        recipe_digest = recipe.content_digest()
    return CompileArtifact(
        digest=digest,
        program=compiled.program.name,
        strategy=str(compiled.strategy),
        device=compiled.device.name,
        sizes=dict(compiled.size_hints),
        flags={
            "prealloc": compiled.flags.prealloc,
            "layout_opt": compiled.flags.layout_opt,
            "shared_memory": compiled.flags.shared_memory,
        },
        mappings=[str(d.mapping) for d in compiled.decisions],
        cuda_source=compiled.cuda_source,
        cost=cost_dict,
        degradations=list(compiled.degradations),
        provenance=provenance,
        recipe=recipe_dict,
        recipe_digest=recipe_digest,
        compile_ms=compile_ms,
        created_at=time.time(),
    )


class ArtifactStore:
    """On-disk content-addressed store; safe for concurrent processes."""

    def __init__(self, root: str) -> None:
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.objects.mkdir(parents=True, exist_ok=True)
        # Recipes live in their own content-addressed subtree: ``get()``
        # quarantines anything under objects/ that does not parse as a
        # CompileArtifact, so recipe JSON must never share that tree.
        self.recipes = self.root / "recipes"
        self.recipes.mkdir(parents=True, exist_ok=True)

    def _path(self, digest: str) -> Path:
        if not is_valid_digest(digest):
            raise ValueError(f"malformed artifact digest {digest!r}")
        return self.objects / digest[:2] / f"{digest}.json"

    def _recipe_path(self, digest: str) -> Path:
        if not is_valid_digest(digest):
            raise ValueError(f"malformed recipe digest {digest!r}")
        return self.recipes / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> Optional[CompileArtifact]:
        """The stored artifact, or ``None`` (missing / corrupt / stale).

        A malformed digest (wire input is untrusted) is a miss, never a
        filesystem access.
        """
        if not is_valid_digest(digest):
            return None
        path = self._path(digest)
        try:
            with open(path) as handle:
                data = json.load(handle)
            artifact = CompileArtifact.from_dict(data)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self._quarantine(path)
            return None
        if artifact.digest != digest:
            self._quarantine(path)
            return None
        return artifact

    def put(self, artifact: CompileArtifact) -> Path:
        """Atomically persist one artifact; returns its path.

        Raises :class:`ValueError` on a malformed digest rather than
        writing outside the objects tree.
        """
        path = self._path(artifact.digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(artifact.to_dict(), handle, indent=2)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def delete(self, digest: str) -> bool:
        if not is_valid_digest(digest):
            return False
        try:
            os.unlink(self._path(digest))
            return True
        except OSError:
            return False

    def put_recipe(self, recipe) -> Path:
        """Atomically persist one transformation recipe; returns its path.

        Accepts a :class:`~repro.optim.passes.recipe.Recipe` or its
        ``to_json`` dict; the on-disk name is the recipe's own content
        digest, so identical pipelines share one object.
        """
        data = recipe if isinstance(recipe, dict) else recipe.to_json()
        digest = _recipe_content_digest(data)
        path = self._recipe_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(data, handle, indent=2)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def get_recipe(self, digest: str) -> Optional[Dict[str, Any]]:
        """The stored recipe JSON, or ``None`` (missing / corrupt).

        Defensive like :meth:`get`: a recipe that does not parse or whose
        content hash no longer matches its name is quarantined.
        """
        if not is_valid_digest(digest):
            return None
        path = self._recipe_path(digest)
        try:
            with open(path) as handle:
                data = json.load(handle)
            if _recipe_content_digest(data) != digest:
                raise ValueError("recipe content digest mismatch")
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self._quarantine(path, self.recipes)
            return None
        return data

    def recipe_digests(self) -> Iterator[str]:
        """Every stored recipe digest (no parse)."""
        if not self.recipes.is_dir():
            return
        for shard in sorted(self.recipes.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                if not entry.name.startswith(".tmp-"):
                    yield entry.stem

    def _quarantine(self, path: Path, root: Optional[Path] = None) -> None:
        # Only ever unlink inside the store's own trees, no matter what
        # path was computed upstream: quarantine deletes cache entries,
        # never arbitrary files the process happens to be able to write.
        from ..observability import emit_event

        emit_event("quarantine", artifact=path.name)
        try:
            resolved = path.resolve()
            tree_root = (root if root is not None else self.objects).resolve()
            if tree_root not in resolved.parents:
                return
            os.unlink(resolved)
        except OSError:
            pass

    def digests(self) -> Iterator[str]:
        """Every stored digest (no artifact parse)."""
        for shard in sorted(self.objects.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                if not entry.name.startswith(".tmp-"):
                    yield entry.stem

    def clear(self) -> int:
        """Drop every artifact; returns the number removed."""
        removed = 0
        for digest in list(self.digests()):
            if self.delete(digest):
                removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.digests())

    def stats(self) -> Dict[str, Any]:
        artifacts = 0
        total_bytes = 0
        for shard in self.objects.iterdir() if self.objects.is_dir() else ():
            if not shard.is_dir():
                continue
            for entry in shard.glob("*.json"):
                if entry.name.startswith(".tmp-"):
                    continue
                artifacts += 1
                try:
                    total_bytes += entry.stat().st_size
                except OSError:
                    pass
        return {
            "root": str(self.root),
            "artifacts": artifacts,
            "bytes": total_bytes,
            "recipes": sum(1 for _ in self.recipe_digests()),
        }
